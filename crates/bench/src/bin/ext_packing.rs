//! Extension study: statement-packing strategies. Greedy seed-order
//! packing (the paper's algorithm) against the global planner
//! (`--packing global`: DP over each seed-group chain plus a bounded
//! branch-and-bound) across the fig9 kernel suite × the four registry
//! targets, plus a local "greedy trap" kernel where seed order is
//! adversarial.
//!
//! Three measurements per (kernel, target) cell:
//!
//! 1. **Artifact cost** — [`lslp::function_cost`] of the committed IR
//!    under each strategy. The global planner carries a greedy floor, so
//!    `global > greedy` in any cell is a planner bug, not a trade-off.
//! 2. **Committed VFs** — the vector-factor multiset each strategy
//!    committed, so a win is attributable to a different pack set.
//! 3. **Compile time** — median wall-clock of the vectorizer pass per
//!    strategy; the global portfolio prices both strategies up front, so
//!    bounded overhead is the claim being checked.
//!
//! Results go to stdout as a table and to `BENCH_ext_packing.json`
//! (`--out` overrides). `--smoke` runs few reps and exits non-zero if
//! any cell has `global` costlier than `greedy`, if the geomean
//! compile-time overhead exceeds 5×, or if no cell is a strict win —
//! the CI regression gate. `--target NAME` restricts the matrix to one
//! target.

use std::time::Instant;

use lslp::{function_cost, try_vectorize_function, PackingStrategy, VectorizerConfig};
use lslp_bench::{format_table, geomean};
use lslp_ir::Function;
use lslp_kernels::suite;
use lslp_target::{TargetSpec, TARGET_NAMES};

/// Kernels where greedy's seed-order commit is adversarial: the first
/// pair it prices drags in a gather and locks out the clean pair behind
/// it. Local to this bench on purpose — the shared suite stays the
/// paper's table, and these rows exist to exhibit a strict global win.
const TRAP_KERNELS: &[(&str, &str)] = &[(
    "greedy_trap",
    "kernel greedy_trap(i64* A, i64* B, i64* C, i64 x, i64 y, i64 i) {
         A[i+0] = B[i+0] + x;
         A[i+1] = B[i+1] + C[i+1];
         A[i+2] = B[i+2] + C[i+2];
         A[i+3] = y;
     }",
)];

fn compile_slc(name: &str, src: &str) -> Function {
    let m = lslp_frontend::compile(src)
        .unwrap_or_else(|e| panic!("trap kernel {name} does not compile: {e}"));
    m.functions.into_iter().next().expect("one kernel per source")
}

/// One strategy's leg of a cell: committed artifact cost, committed VF
/// multiset, and median compile microseconds.
struct Leg {
    cost: i64,
    vfs: String,
    micros: f64,
}

fn run_leg(proto: &Function, strategy: PackingStrategy, tm: &TargetSpec, reps: usize) -> Leg {
    let cfg = VectorizerConfig { packing: strategy, ..VectorizerConfig::lslp() };
    const BATCH: usize = 4;
    let mut samples = Vec::with_capacity(reps);
    let mut committed = (0, String::new());
    for rep in 0..=reps {
        let start = Instant::now();
        for _ in 0..BATCH {
            let mut f = proto.clone();
            let rep_v = try_vectorize_function(&mut f, &cfg, tm).expect("bench kernels compile");
            std::hint::black_box(&f);
            let mut vfs: Vec<usize> =
                rep_v.attempts.iter().filter(|a| a.vectorized).map(|a| a.vf).collect();
            vfs.sort_unstable_by(|a, b| b.cmp(a));
            let joined = vfs.iter().map(ToString::to_string).collect::<Vec<_>>().join("+");
            committed =
                (function_cost(&f, tm), if joined.is_empty() { "-".into() } else { joined });
        }
        let per = start.elapsed().as_nanos() as f64 / BATCH as f64 / 1000.0;
        if rep > 0 {
            samples.push(per);
        }
    }
    samples.sort_by(f64::total_cmp);
    Leg { cost: committed.0, vfs: committed.1, micros: samples[samples.len() / 2] }
}

struct Cell {
    kernel: String,
    target: String,
    greedy: Leg,
    global: Leg,
}

impl Cell {
    /// `<` = global strictly cheaper, `>` = costlier (a bug), `=` = tie.
    fn verdict(&self) -> &'static str {
        match self.global.cost.cmp(&self.greedy.cost) {
            std::cmp::Ordering::Less => "<",
            std::cmp::Ordering::Greater => ">",
            std::cmp::Ordering::Equal => "=",
        }
    }

    fn overhead(&self) -> f64 {
        self.global.micros / self.greedy.micros
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn emit_json(cells: &[Cell], reps: usize, smoke: bool, wins: usize, overhead_gm: f64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"ext_packing\",\n");
    out.push_str(&format!("  \"reps\": {reps},\n  \"smoke\": {smoke},\n"));
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"target\": \"{}\", \
             \"greedy_cost\": {}, \"global_cost\": {}, \
             \"greedy_vfs\": \"{}\", \"global_vfs\": \"{}\", \
             \"greedy_us\": {:.1}, \"global_us\": {:.1}, \
             \"compile_overhead\": {:.3}, \"global_strictly_cheaper\": {}}}{}\n",
            json_escape(&c.kernel),
            json_escape(&c.target),
            c.greedy.cost,
            c.global.cost,
            json_escape(&c.greedy.vfs),
            json_escape(&c.global.vfs),
            c.greedy.micros,
            c.global.micros,
            c.overhead(),
            c.global.cost < c.greedy.cost,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"strict_wins\": {wins},\n"));
    out.push_str(&format!("  \"geomean_compile_overhead\": {overhead_gm:.3}\n"));
    out.push_str("}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut out_path = "BENCH_ext_packing.json".to_string();
    let mut reps = if smoke { 3 } else { 15 };
    let mut only_target: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => {}
            "--reps" => {
                reps = it.next().and_then(|v| v.parse().ok()).expect("--reps takes a number")
            }
            "--out" => out_path = it.next().expect("--out takes a path").clone(),
            "--target" => {
                only_target = Some(it.next().expect("--target takes a name").clone());
            }
            other => {
                eprintln!(
                    "usage: ext_packing [--smoke] [--reps N] [--out PATH] [--target NAME] \
                     (got `{other}`)"
                );
                std::process::exit(2);
            }
        }
    }

    let targets: Vec<TargetSpec> = TARGET_NAMES
        .iter()
        .filter(|n| only_target.as_deref().is_none_or(|o| o == **n))
        .map(|n| TargetSpec::lookup(n).expect("registry name resolves"))
        .collect();
    if targets.is_empty() {
        eprintln!(
            "unknown --target `{}` (known targets: {})",
            only_target.unwrap_or_default(),
            TARGET_NAMES.join(", ")
        );
        std::process::exit(2);
    }

    let mut protos: Vec<(String, Function)> =
        suite().iter().map(|k| (k.name.to_string(), k.compile())).collect();
    protos.extend(TRAP_KERNELS.iter().map(|(n, src)| ((*n).to_string(), compile_slc(n, src))));

    let mut cells = Vec::new();
    for (name, proto) in &protos {
        for tm in &targets {
            let greedy = run_leg(proto, PackingStrategy::Greedy, tm, reps);
            let global = run_leg(proto, PackingStrategy::Global, tm, reps);
            cells.push(Cell { kernel: name.clone(), target: tm.name.to_string(), greedy, global });
        }
    }

    let headers: Vec<String> =
        ["Kernel", "Target", "greedy $", "global $", "", "greedy VFs", "global VFs", "time ×"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    let table: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.kernel.clone(),
                c.target.clone(),
                c.greedy.cost.to_string(),
                c.global.cost.to_string(),
                c.verdict().to_string(),
                c.greedy.vfs.clone(),
                c.global.vfs.clone(),
                format!("{:.2}", c.overhead()),
            ]
        })
        .collect();
    print!("{}", format_table(&headers, &table));

    let wins = cells.iter().filter(|c| c.global.cost < c.greedy.cost).count();
    let regressions: Vec<&Cell> = cells.iter().filter(|c| c.global.cost > c.greedy.cost).collect();
    let overhead_gm = geomean(&cells.iter().map(Cell::overhead).collect::<Vec<_>>());
    println!(
        "cells: {} | strict global wins: {wins} | regressions: {} | \
         geomean compile overhead (global/greedy): {overhead_gm:.3}",
        cells.len(),
        regressions.len()
    );

    std::fs::write(&out_path, emit_json(&cells, reps, smoke, wins, overhead_gm))
        .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("wrote {out_path}");

    if smoke {
        for c in &regressions {
            eprintln!(
                "REGRESSION: global packing costlier than greedy on {}/{} ({} > {})",
                c.kernel, c.target, c.global.cost, c.greedy.cost
            );
        }
        let mut fail = !regressions.is_empty();
        if overhead_gm > 5.0 {
            eprintln!(
                "REGRESSION: global packing compile-time overhead {overhead_gm:.3} > 5.0 geomean"
            );
            fail = true;
        }
        if wins == 0 {
            eprintln!("REGRESSION: no cell shows a strict global win (trap kernel regressed)");
            fail = true;
        }
        if fail {
            std::process::exit(1);
        }
    }
}
