//! Regenerates Figure 11: whole-benchmark static cost normalized to SLP.
fn main() {
    print!("{}", lslp_bench::figures::fig11());
}
