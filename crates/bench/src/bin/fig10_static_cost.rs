//! Regenerates Figure 10: static vectorization cost per kernel.
fn main() {
    print!("{}", lslp_bench::figures::fig10());
}
