//! Regenerates Figure 13: look-ahead depth and multi-node size sensitivity.
fn main() {
    print!("{}", lslp_bench::figures::fig13());
}
