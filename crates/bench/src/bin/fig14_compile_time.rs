//! Regenerates Figure 14: compilation time normalized to O3.
fn main() {
    let reps = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(10);
    print!("{}", lslp_bench::figures::fig14(reps));
}
