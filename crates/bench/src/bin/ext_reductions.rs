//! Extension study: horizontal-reduction seeds (`lslp::reduce`).
//!
//! The paper lists reduction trees as a seed class (§2.2) but does not
//! evaluate them; this binary measures what enabling them adds on top of
//! each configuration, using dot-product / norm kernels written in SLC.

use lslp::{vectorize_function, VectorizerConfig};
use lslp_target::CostModel;

fn main() {
    let tm = CostModel::skylake_like();
    println!("Extension: horizontal-reduction seeds (cost; lower = better)\n");
    println!(
        "{:10} {:>14} {:>18} {:>20}",
        "Kernel", "LSLP", "LSLP+reductions", "reduction attempts"
    );
    for k in lslp_kernels::reduction_kernels() {
        let base = {
            let mut f = k.compile();
            vectorize_function(&mut f, &VectorizerConfig::lslp(), &tm).applied_cost
        };
        let mut f = k.compile();
        let cfg = VectorizerConfig { enable_reductions: true, ..VectorizerConfig::lslp() };
        let report = vectorize_function(&mut f, &cfg, &tm);
        lslp_ir::verify_function(&f).unwrap();

        // Correctness: compare against the scalar kernel on real data.
        let scalar = k.compile();
        let iters = 8;
        let mut m1 = k.setup_memory(&scalar, iters);
        k.run(&scalar, &mut m1, iters, &tm).unwrap();
        let mut m2 = k.setup_memory(&f, iters);
        k.run(&f, &mut m2, iters, &tm).unwrap();
        for name in m1.buffer_names() {
            let (a, b) = (m1.bytes(name).unwrap(), m2.bytes(name).unwrap());
            if a != b {
                for (ca, cb) in a.chunks(8).zip(b.chunks(8)) {
                    let x = f64::from_le_bytes(ca.try_into().unwrap());
                    let y = f64::from_le_bytes(cb.try_into().unwrap());
                    assert!(
                        (x - y).abs() <= 1e-9 * x.abs().max(1.0),
                        "{}: {name} diverged: {x} vs {y}",
                        k.name
                    );
                }
            }
        }

        let attempts: Vec<String> = report
            .reductions
            .iter()
            .map(|r| format!("{} (cost {})", if r.applied { "applied" } else { "skipped" }, r.cost))
            .collect();
        println!(
            "{:10} {:>14} {:>18} {:>20}",
            k.name,
            base,
            report.applied_cost,
            attempts.join("; ")
        );
    }
}
