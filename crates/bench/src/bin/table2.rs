//! Regenerates Table 2 (kernel inventory).
fn main() {
    print!("{}", lslp_bench::figures::table2());
}
