//! Regenerates Figure 9: kernel speedups over O3.
fn main() {
    print!("{}", lslp_bench::figures::fig09());
}
