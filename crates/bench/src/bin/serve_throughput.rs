//! Load generator for `lslpd`: replays the kernel suite (plus heavyweight
//! synthetic kernels) against the compile service at configurable
//! concurrency and reports a throughput/latency table.
//!
//! Two passes are driven over the same request mix: a **cold** pass that
//! populates the result cache and a **warm** pass that should be served
//! almost entirely from it. For every response the payload is checked
//! byte-for-byte against a locally computed expectation, so dropped *and*
//! corrupted responses are both counted (and fail the run).
//!
//! Clients drive the server through [`Client::compile_with_retry`]: a
//! wall-clock deadline, jittered exponential backoff on `overload`, and
//! reconnect-on-broken-pipe — so the table also reports attempts,
//! reconnects, and gave-up counts. That makes the generator usable
//! against a chaos-mode daemon (`--tolerate-faults`): injected drops and
//! worker panics must end in a retried success or a typed ERR, never a
//! hang or a corrupted payload.
//!
//! ```text
//! cargo run --release -p lslp-bench --bin serve_throughput -- [options]
//!   --addr HOST:PORT    drive an already-running lslpd (default: spawn an
//!                       in-process server on a free port)
//!   --concurrency N     client threads (default 8)
//!   --repeat N          how often each distinct request appears per pass
//!                       (default 3)
//!   --requests N        fixed request count per pass (overrides --repeat)
//!   --workers N         worker threads for the in-process server
//!   --cache-dir DIR     persistent cache dir for the in-process server
//!   --chaos SPEC        seeded fault injection for the in-process server
//!                       (implies --tolerate-faults)
//!   --restart           after the cold pass, drain + restart the
//!                       in-process server on the same --cache-dir and
//!                       measure the warm-restart hit rate
//!   --tolerate-faults   the target injects faults: typed ERR responses
//!                       are tolerated (counted, not fatal) and the
//!                       warm-faster-than-cold assertion is waived
//!   --expect-restarts   after the run, assert STATS shows at least one
//!                       watchdog worker respawn
//!   --no-shutdown       leave the target running on exit (for kill -9
//!                       crash tests driven from CI)
//!   --pipeline N        pipelined-vs-serial comparison: prime the cache,
//!                       drive one serial lockstep pass and one pooled
//!                       pipelined pass (N tagged requests in flight per
//!                       connection), print both and the speedup; with
//!                       depth >= 8, pool >= 4, and no fault injection the
//!                       pipelined pass must be >= 3x serial throughput
//!   --pool N            connection-pool size for --pipeline (default 4)
//!   --smoke             CI mode: fire N concurrent requests (default 32,
//!                       including one malformed and one timeout-inducing),
//!                       assert every one gets a response, then SHUTDOWN;
//!                       with --pipeline it also drives a pooled pipelined
//!                       burst and asserts every tagged request is answered
//!   --warm-check        probe mode: assert the target recovered warm
//!                       entries from its cache dir (persist warm > 0) and
//!                       serves a suite kernel; used after a kill -9
//!                       restart
//! ```
//!
//! Exit status is nonzero if any response is dropped, corrupted, or an
//! unexpected error, or (in the full run) if the warm pass is not faster
//! than the cold pass.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use lslp::{try_run_pipeline_with, VectorizerConfig};
use lslp_analysis::AnalysisManager;
use lslp_bench::format_table;
use lslp_server::chaos::ChaosConfig;
use lslp_server::metrics::percentiles;
use lslp_server::protocol::{CompileRequest, ErrorKind};
use lslp_server::{Client, Pool, PoolConfig, RetryOutcome, RetryPolicy, Server, ServerConfig};
use lslp_target::CostModel;

/// Generous per-request budget: large enough that the guard's deadline
/// never fires on a healthy run, so server output is byte-identical to the
/// local expectation.
const AMPLE_BUDGET_MS: u64 = 60_000;

fn main() {
    let opts = Opts::parse();
    let ok = if opts.warm_check {
        run_warm_check(&opts)
    } else if opts.smoke {
        run_smoke(&opts)
    } else if opts.pipeline.is_some() {
        run_pipeline_compare(&opts)
    } else {
        run_load(&opts)
    };
    std::process::exit(if ok { 0 } else { 1 });
}

struct Opts {
    addr: Option<String>,
    concurrency: usize,
    repeat: usize,
    requests: Option<usize>,
    workers: Option<usize>,
    cache_dir: Option<String>,
    chaos: Option<ChaosConfig>,
    restart: bool,
    tolerate_faults: bool,
    expect_restarts: bool,
    no_shutdown: bool,
    smoke: bool,
    warm_check: bool,
    pipeline: Option<usize>,
    pool: usize,
}

impl Opts {
    fn parse() -> Opts {
        let mut opts = Opts {
            addr: None,
            concurrency: 8,
            repeat: 3,
            requests: None,
            workers: None,
            cache_dir: None,
            chaos: None,
            restart: false,
            tolerate_faults: false,
            expect_restarts: false,
            no_shutdown: false,
            smoke: false,
            warm_check: false,
            pipeline: None,
            pool: 4,
        };
        fn num(argv: &mut impl Iterator<Item = String>, name: &str) -> usize {
            argv.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} requires a number"))
        }
        let mut argv = std::env::args().skip(1);
        while let Some(a) = argv.next() {
            match a.as_str() {
                "--addr" => opts.addr = Some(argv.next().expect("--addr requires HOST:PORT")),
                "--concurrency" => opts.concurrency = num(&mut argv, "--concurrency").max(1),
                "--repeat" => opts.repeat = num(&mut argv, "--repeat").max(1),
                "--requests" => opts.requests = Some(num(&mut argv, "--requests").max(1)),
                "--workers" => opts.workers = Some(num(&mut argv, "--workers").max(1)),
                "--cache-dir" => {
                    opts.cache_dir = Some(argv.next().expect("--cache-dir requires a path"))
                }
                "--chaos" => {
                    let spec = argv.next().expect("--chaos requires a spec");
                    match ChaosConfig::parse(&spec) {
                        Ok(c) => opts.chaos = Some(c),
                        Err(e) => {
                            eprintln!("serve_throughput: {e}");
                            std::process::exit(2);
                        }
                    }
                }
                "--restart" => opts.restart = true,
                "--tolerate-faults" => opts.tolerate_faults = true,
                "--expect-restarts" => opts.expect_restarts = true,
                "--no-shutdown" => opts.no_shutdown = true,
                "--smoke" => opts.smoke = true,
                "--warm-check" => opts.warm_check = true,
                "--pipeline" => opts.pipeline = Some(num(&mut argv, "--pipeline").max(1)),
                "--pool" => opts.pool = num(&mut argv, "--pool").max(1),
                other => {
                    eprintln!("serve_throughput: unknown option `{other}`");
                    std::process::exit(2);
                }
            }
        }
        if opts.chaos.is_some() {
            opts.tolerate_faults = true;
        }
        if opts.restart && opts.addr.is_some() {
            eprintln!("serve_throughput: --restart only works with an in-process server");
            std::process::exit(2);
        }
        opts
    }

    /// The retry behavior every driver thread uses: deterministic jitter
    /// (seeded per thread), a finite budget, and a generous deadline so a
    /// heavyweight cold compile under contention is never misread as a
    /// hang.
    fn policy(&self, thread: u64) -> RetryPolicy {
        RetryPolicy {
            max_retries: 10,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(200),
            deadline: Some(Duration::from_secs(120)),
            seed: 0x10ad_9e4e_u64.wrapping_add(thread),
        }
    }
}

fn server_config(opts: &Opts) -> ServerConfig {
    let mut cfg = ServerConfig::default();
    if let Some(w) = opts.workers {
        cfg.workers = w;
    }
    cfg.cache_dir = opts.cache_dir.clone();
    cfg.chaos = opts.chaos.clone();
    if let Some(depth) = opts.pipeline {
        // Size the in-process server for the offered load, exactly as an
        // operator would via --queue-cap/--pipeline-depth: a queue smaller
        // than pool x depth turns the whole pipelined pass into
        // overload-and-backoff.
        cfg.pipeline_depth = cfg.pipeline_depth.max(depth);
        cfg.queue_capacity = cfg.queue_capacity.max(2 * depth * opts.pool);
    }
    cfg
}

/// Connect to `--addr`, or spawn an in-process server and return its join
/// handle so a clean drain can be asserted.
fn connect_target(opts: &Opts) -> (String, Option<std::thread::JoinHandle<std::io::Result<()>>>) {
    match &opts.addr {
        Some(addr) => (addr.clone(), None),
        None => {
            let (addr, handle) =
                Server::spawn(server_config(opts)).expect("spawn in-process server");
            (addr.to_string(), Some(handle))
        }
    }
}

/// One distinct request plus the payload the server must return for it.
struct Expected {
    name: String,
    req: CompileRequest,
    payload: String,
}

/// A synthetic kernel with `groups` adjacent store groups of width 4 and a
/// deep commutative chain per lane — heavy enough that a cache hit is
/// measurably cheaper than a recompile.
fn big_kernel(name: &str, groups: usize) -> String {
    let mut src = format!("kernel {name}(f64* A, f64* B, i64 i) {{\n");
    for g in 0..groups {
        for l in 0..4 {
            let idx = g * 4 + l;
            src.push_str(&format!(
                "  A[i+{idx}] = (B[i+{idx}] * B[i+{idx}] + {g}.0) * B[i+{idx}] + B[i+{}];\n",
                (idx + 1) % (groups * 4)
            ));
        }
    }
    src.push('}');
    src
}

/// The request mix: every suite kernel plus four heavyweight synthetics,
/// each with its locally computed expected payload.
fn build_expected() -> Vec<Expected> {
    let mut sources: Vec<(String, String)> = lslp_kernels::suite()
        .into_iter()
        .map(|k| (k.name.to_string(), k.src.to_string()))
        .collect();
    for groups in [16usize, 32, 48, 64] {
        let name = format!("synth{groups}");
        sources.push((name.clone(), big_kernel(&name, groups)));
    }
    expected_for(sources)
}

/// Compact request mix for the pipelined-vs-serial comparison. Pipelining
/// amortizes per-request transport overhead (syscalls, scheduler
/// round-trips); the suite's synthetics move tens of kilobytes per
/// response, which turns either mode into a payload-bandwidth benchmark
/// and masks that effect entirely. The probe kernels are distinct (no
/// accidental coalescing) but small, so the comparison measures request
/// turnaround, not memcpy.
fn build_probe_expected(count: usize) -> Vec<Expected> {
    let sources = (0..count)
        .map(|i| {
            let name = format!("probe{i}");
            let mut src = format!("kernel {name}(f64* A, f64* B, i64 i) {{\n");
            for l in 0..4 {
                src.push_str(&format!("  A[i+{l}] = B[i+{l}] * B[i+{l}] + {i}.0;\n"));
            }
            src.push('}');
            (name, src)
        })
        .collect();
    expected_for(sources)
}

fn expected_for(sources: Vec<(String, String)>) -> Vec<Expected> {
    let tm = CostModel::skylake_like();
    let mut am = AnalysisManager::new();
    let mut cfg = VectorizerConfig::preset("LSLP").expect("LSLP preset");
    cfg.time_budget_ms = Some(AMPLE_BUDGET_MS);

    sources
        .into_iter()
        .map(|(name, src)| {
            let mut module = lslp_frontend::compile(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
            for f in &mut module.functions {
                try_run_pipeline_with(f, &cfg, &tm, &mut am)
                    .unwrap_or_else(|e| panic!("{name}: {e}"));
            }
            let req =
                CompileRequest { timeout_ms: Some(AMPLE_BUDGET_MS), ..CompileRequest::new(&src) };
            Expected { name, req, payload: lslp_ir::print_module(&module) }
        })
        .collect()
}

#[derive(Default)]
struct PassOutcome {
    ok: u64,
    /// Final responses that were typed errors (tolerated under chaos).
    errors: u64,
    /// Requests whose retry budget/deadline ran out with no final response.
    gave_up: u64,
    corrupted: u64,
    attempts: u64,
    reconnects: u64,
    latencies_us: Vec<u64>,
    elapsed: Duration,
}

/// Replay the request mix at `concurrency`, round-robin interleaved so
/// repeats of the same kernel are spread across the pass.
fn drive_pass(addr: &str, expected: &[Expected], total: usize, opts: &Opts) -> PassOutcome {
    let next = AtomicUsize::new(0);
    type Sample = (u64, RetryOutcome, bool); // (lat_us, outcome, corrupt)
    let (tx, rx) = mpsc::channel::<Sample>();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..opts.concurrency.min(total) {
            let tx = tx.clone();
            let next = &next;
            let policy = opts.policy(t as u64);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let exp = &expected[i % expected.len()];
                    let t0 = Instant::now();
                    let outcome = client.compile_with_retry(&exp.req, &policy);
                    let lat = t0.elapsed().as_micros() as u64;
                    let corrupt =
                        outcome.response.as_ref().is_some_and(|r| r.ok && r.payload != exp.payload);
                    if corrupt {
                        eprintln!("serve_throughput: corrupted payload for `{}`", exp.name);
                    }
                    tx.send((lat, outcome, corrupt)).expect("collector alive");
                }
            });
        }
        drop(tx);
        let mut out = PassOutcome::default();
        for (lat, outcome, corrupt) in rx {
            out.latencies_us.push(lat);
            out.attempts += outcome.attempts as u64;
            out.reconnects += outcome.reconnects as u64;
            if corrupt {
                out.corrupted += 1;
            }
            match &outcome.response {
                Some(r) if r.ok => out.ok += 1,
                Some(_) => out.errors += 1,
                None => out.gave_up += 1,
            }
        }
        out.elapsed = start.elapsed();
        out
    })
}

/// Fold one finished request into a pass outcome, checking the payload
/// against the local expectation.
fn record_outcome(out: &mut PassOutcome, exp: &Expected, outcome: &RetryOutcome) {
    out.latencies_us.push(outcome.elapsed.as_micros() as u64);
    out.attempts += outcome.attempts as u64;
    out.reconnects += outcome.reconnects as u64;
    if outcome.response.as_ref().is_some_and(|r| r.ok && r.payload != exp.payload) {
        eprintln!("serve_throughput: corrupted payload for `{}`", exp.name);
        out.corrupted += 1;
    }
    match &outcome.response {
        Some(r) if r.ok => out.ok += 1,
        Some(_) => out.errors += 1,
        None => out.gave_up += 1,
    }
}

/// `--pipeline N`: the serving-layer comparison the v4 protocol exists
/// for. The cache is primed first so both passes measure dispatch, not
/// compilation; the serial pass drives one connection in strict lockstep
/// (the v1–v3 client model); the pipelined pass drives a connection pool
/// with `N` tagged requests in flight per connection.
fn run_pipeline_compare(opts: &Opts) -> bool {
    let depth = opts.pipeline.expect("dispatched on --pipeline");
    let (addr, handle) = connect_target(opts);
    eprintln!(
        "serve_throughput: pipelined-vs-serial against {addr} (depth {depth}, pool {})",
        opts.pool
    );

    eprintln!("serve_throughput: computing expected payloads locally...");
    let expected = build_probe_expected(32);
    let total = opts.requests.unwrap_or(expected.len() * opts.repeat);
    let mut ok = true;

    // Prime: one sequential pass over the distinct kernels.
    {
        let mut client = Client::connect(&addr).expect("connect");
        for exp in &expected {
            let o = client.compile_with_retry(&exp.req, &opts.policy(0));
            if !o.is_ok() && !opts.tolerate_faults {
                eprintln!(
                    "serve_throughput: FAIL: priming `{}` failed: {:?}",
                    exp.name, o.response
                );
                ok = false;
            }
        }
    }

    let mix: Vec<&Expected> = (0..total).map(|i| &expected[i % expected.len()]).collect();

    // Three passes per mode, keeping the fastest of each: a single pass on
    // a busy host measures the scheduler as much as the server, and the
    // *best* pass is the one that reflects what each mode can sustain.
    const PASSES: usize = 3;

    // Serial passes: one connection, one request in flight, ever.
    let serial = (0..PASSES)
        .map(|_| {
            let mut client = Client::connect(&addr).expect("connect");
            let mut out = PassOutcome::default();
            let start = Instant::now();
            for exp in &mix {
                let outcome = client.compile_with_retry(&exp.req, &opts.policy(1));
                record_outcome(&mut out, exp, &outcome);
            }
            out.elapsed = start.elapsed();
            out
        })
        .min_by_key(|out| out.elapsed)
        .expect("at least one serial pass");

    // Pipelined passes: the pooled client, `depth` in flight per connection.
    let pipelined = (0..PASSES)
        .map(|_| {
            let pool =
                Pool::new(PoolConfig { max_size: opts.pool, ..PoolConfig::new(addr.clone()) });
            let reqs: Vec<CompileRequest> = mix.iter().map(|e| e.req.clone()).collect();
            let start = Instant::now();
            let outcomes = pool.compile_many(&reqs, depth, &opts.policy(2));
            let mut out = PassOutcome::default();
            for (exp, outcome) in mix.iter().zip(&outcomes) {
                record_outcome(&mut out, exp, outcome);
            }
            out.elapsed = start.elapsed();
            out
        })
        .min_by_key(|out| out.elapsed)
        .expect("at least one pipelined pass");

    let mut rows = Vec::new();
    for (mode, conns, d, out) in
        [("serial", 1, 1, &serial), ("pipelined", opts.pool, depth, &pipelined)]
    {
        let mut lat = out.latencies_us.clone();
        let summary = percentiles(&mut lat);
        let secs = out.elapsed.as_secs_f64();
        rows.push(vec![
            mode.to_string(),
            conns.to_string(),
            d.to_string(),
            total.to_string(),
            out.ok.to_string(),
            out.errors.to_string(),
            out.gave_up.to_string(),
            out.corrupted.to_string(),
            format!("{:.1}", secs * 1e3),
            format!("{:.1}", out.ok as f64 / secs),
            format!("{:.2}", summary.p50_us as f64 / 1e3),
            format!("{:.2}", summary.p99_us as f64 / 1e3),
        ]);
    }
    let headers: Vec<String> = [
        "mode",
        "conns",
        "depth",
        "requests",
        "ok",
        "errors",
        "gave-up",
        "corrupt",
        "elapsed-ms",
        "req/s",
        "p50-ms",
        "p99-ms",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    println!("{}", format_table(&headers, &rows));

    let serial_rps = serial.ok as f64 / serial.elapsed.as_secs_f64();
    let pipelined_rps = pipelined.ok as f64 / pipelined.elapsed.as_secs_f64();
    let speedup = pipelined_rps / serial_rps;
    println!("pipelined-over-serial throughput: {speedup:.2}x");

    for (mode, out) in [("serial", &serial), ("pipelined", &pipelined)] {
        if out.corrupted > 0 || out.gave_up > 0 {
            eprintln!(
                "serve_throughput: FAIL ({mode}): {} corrupted / {} gave up of {total}",
                out.corrupted, out.gave_up
            );
            ok = false;
        }
        if !opts.tolerate_faults && (out.errors > 0 || out.ok != total as u64) {
            eprintln!(
                "serve_throughput: FAIL ({mode}): {} ok / {} errors of {total}",
                out.ok, out.errors
            );
            ok = false;
        }
    }
    // The headline acceptance bar: with a meaningful depth and pool, on a
    // healthy target, pipelining must buy at least 3x.
    if depth >= 8 && opts.pool >= 4 && !opts.tolerate_faults && speedup < 3.0 {
        eprintln!("serve_throughput: FAIL: pipelined speedup {speedup:.2}x < 3.00x");
        ok = false;
    }

    if !opts.no_shutdown && handle.is_some() {
        let control = Client::connect(&addr).expect("connect control client");
        shutdown_always(control, handle, opts, &mut ok);
    }
    ok
}

/// Interesting gauges off a STATS payload.
#[derive(Default)]
struct StatsSnap {
    hits: u64,
    misses: u64,
    queue_max: u64,
    persist_warm: u64,
    persist_quarantined: u64,
    worker_restarts: u64,
}

fn parse_stats(payload: &str) -> StatsSnap {
    let field = |line: &str, key: &str| -> u64 {
        line.split_whitespace()
            .find_map(|tok| tok.strip_prefix(key))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    let mut s = StatsSnap::default();
    for line in payload.lines() {
        if let Some(rest) = line.strip_prefix("cache: ") {
            s.hits = field(rest, "hits=");
            s.misses = field(rest, "misses=");
        } else if let Some(rest) = line.strip_prefix("queue: ") {
            s.queue_max = field(rest, "max=");
        } else if let Some(rest) = line.strip_prefix("persist: ") {
            s.persist_warm = field(rest, "warm=");
            s.persist_quarantined = field(rest, "quarantined=");
        } else if let Some(rest) = line.strip_prefix("workers: ") {
            s.worker_restarts = field(rest, "restarts=");
        }
    }
    s
}

fn fetch_stats(addr: &str, opts: &Opts) -> StatsSnap {
    let mut control = Client::connect(addr).expect("connect stats client");
    let outcome = control.retry_line("STATS", &opts.policy(999));
    match outcome.response {
        Some(r) if r.ok => parse_stats(&r.payload),
        other => {
            eprintln!("serve_throughput: STATS failed: {other:?}");
            StatsSnap::default()
        }
    }
}

fn run_load(opts: &Opts) -> bool {
    let (addr, mut handle) = connect_target(opts);
    eprintln!("serve_throughput: target {addr}, concurrency {}", opts.concurrency);

    eprintln!("serve_throughput: computing expected payloads locally...");
    let expected = build_expected();
    let total = opts.requests.unwrap_or(expected.len() * opts.repeat);
    eprintln!("serve_throughput: {} distinct kernels, {} requests per pass", expected.len(), total);

    let mut addr = addr;
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut prev = (0u64, 0u64); // (hits, misses) before the pass
    let mut outcomes = Vec::new();
    let warm_label = if opts.restart { "warm-restart" } else { "warm" };
    let mut ok = true;
    for pass in ["cold", warm_label] {
        if pass == "warm-restart" {
            // Drain the server, then bring it back on the same cache dir:
            // the warm pass is served by the *recovered* disk tier.
            let control = Client::connect(&addr).expect("connect control client");
            shutdown_always(control, handle.take(), opts, &mut ok);
            let (new_addr, new_handle) =
                Server::spawn(server_config(opts)).expect("respawn in-process server");
            addr = new_addr.to_string();
            handle = new_handle.into();
            prev = (0, 0); // fresh process, fresh counters
            let snap = fetch_stats(&addr, opts);
            eprintln!(
                "serve_throughput: restarted on {addr}: persist warm={} quarantined={}",
                snap.persist_warm, snap.persist_quarantined
            );
            if snap.persist_warm == 0 {
                eprintln!("serve_throughput: FAIL: restart recovered no warm entries");
                ok = false;
            }
        }
        let out = drive_pass(&addr, &expected, total, opts);
        let snap = fetch_stats(&addr, opts);
        let (dh, dm) = (snap.hits - prev.0, snap.misses - prev.1);
        prev = (snap.hits, snap.misses);

        let mut lat = out.latencies_us.clone();
        let summary = percentiles(&mut lat);
        let secs = out.elapsed.as_secs_f64();
        rows.push(vec![
            pass.to_string(),
            total.to_string(),
            out.ok.to_string(),
            out.errors.to_string(),
            out.gave_up.to_string(),
            out.corrupted.to_string(),
            out.attempts.to_string(),
            out.reconnects.to_string(),
            format!("{:.1}", secs * 1e3),
            format!("{:.1}", out.ok as f64 / secs),
            format!("{:.2}", summary.p50_us as f64 / 1e3),
            format!("{:.2}", summary.p99_us as f64 / 1e3),
            format!("{:.1}", 100.0 * dh as f64 / (dh + dm).max(1) as f64),
            snap.queue_max.to_string(),
        ]);
        outcomes.push(out);
    }

    let headers: Vec<String> = [
        "pass",
        "requests",
        "ok",
        "errors",
        "gave-up",
        "corrupt",
        "attempts",
        "reconn",
        "elapsed-ms",
        "req/s",
        "p50-ms",
        "p99-ms",
        "hit-rate-%",
        "queue-max",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    println!("{}", format_table(&headers, &rows));

    let cold_rps = outcomes[0].ok as f64 / outcomes[0].elapsed.as_secs_f64();
    let warm_rps = outcomes[1].ok as f64 / outcomes[1].elapsed.as_secs_f64();
    println!("warm-over-cold throughput: {:.2}x", warm_rps / cold_rps);

    for (pass, out) in ["cold", warm_label].iter().zip(&outcomes) {
        // Corrupted payloads and hangs (gave-up) are never acceptable;
        // typed errors are tolerated only when the target injects faults.
        if out.corrupted > 0 || out.gave_up > 0 {
            eprintln!(
                "serve_throughput: FAIL ({pass}): {} corrupted / {} gave up of {total}",
                out.corrupted, out.gave_up
            );
            ok = false;
        }
        if !opts.tolerate_faults && (out.errors > 0 || out.ok != total as u64) {
            eprintln!(
                "serve_throughput: FAIL ({pass}): {} ok / {} errors of {total}",
                out.ok, out.errors
            );
            ok = false;
        }
    }
    if !opts.tolerate_faults && warm_rps <= cold_rps {
        eprintln!("serve_throughput: FAIL: warm pass not faster than cold pass");
        ok = false;
    }
    if opts.expect_restarts {
        let snap = fetch_stats(&addr, opts);
        if snap.worker_restarts == 0 {
            eprintln!("serve_throughput: FAIL: expected watchdog worker restarts, saw none");
            ok = false;
        } else {
            eprintln!("serve_throughput: watchdog respawned {} worker(s)", snap.worker_restarts);
        }
    }

    // An external --addr target is left running for further passes; only
    // an in-process server is drained here.
    if !opts.no_shutdown && handle.is_some() {
        let control = Client::connect(&addr).expect("connect control client");
        shutdown_always(control, handle, opts, &mut ok);
    }
    ok
}

/// CI smoke: N concurrent requests — one malformed line, one
/// timeout-inducing (tiny budget, heavy kernel), the rest normal — then a
/// SHUTDOWN (unless --no-shutdown). Every request must get a well-formed
/// response; under --tolerate-faults a typed ERR is tolerated.
fn run_smoke(opts: &Opts) -> bool {
    let n: usize = opts.requests.unwrap_or(32);
    const MALFORMED: usize = 5;
    const TIMEOUTY: usize = 9;

    let (addr, handle) = connect_target(opts);
    eprintln!("serve_throughput: smoke against {addr} ({n} concurrent requests)");

    let suite = lslp_kernels::suite();
    let heavy = big_kernel("pathological", 96);
    let (tx, rx) = mpsc::channel::<(usize, RetryOutcome)>();
    std::thread::scope(|scope| {
        for i in 0..n {
            let tx = tx.clone();
            let (addr, suite, heavy) = (&addr, &suite, &heavy);
            let policy = opts.policy(i as u64);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let outcome = match i {
                    MALFORMED => client.retry_line("COMPILE pipeline=maybe src=x", &policy),
                    TIMEOUTY => {
                        let req =
                            CompileRequest { timeout_ms: Some(0), ..CompileRequest::new(heavy) };
                        client.compile_with_retry(&req, &policy)
                    }
                    _ => {
                        let k = &suite[i % suite.len()];
                        let req = CompileRequest {
                            timeout_ms: Some(AMPLE_BUDGET_MS),
                            ..CompileRequest::new(k.src)
                        };
                        client.compile_with_retry(&req, &policy)
                    }
                };
                tx.send((i, outcome)).expect("collector alive");
            });
        }
    });
    drop(tx);

    let mut got = vec![false; n];
    let mut tolerated = 0u64;
    let mut ok = true;
    for (i, outcome) in rx {
        got[i] = true;
        match outcome.response {
            None => {
                eprintln!("smoke: request {i} got no response (gave_up={})", outcome.gave_up);
                ok = false;
            }
            Some(r) if i == MALFORMED => {
                if r.error != Some(ErrorKind::Proto) {
                    eprintln!("smoke: malformed request answered {r:?}, wanted kind=proto");
                    ok = false;
                }
            }
            Some(r) => {
                if !r.ok {
                    if opts.tolerate_faults {
                        // A typed error under injected faults is the
                        // contract working: no hang, no garbage.
                        tolerated += 1;
                    } else {
                        eprintln!("smoke: request {i} failed: {r:?}");
                        ok = false;
                    }
                }
            }
        }
    }
    if let Some(missing) = got.iter().position(|g| !g) {
        eprintln!("smoke: request {missing} never reported");
        ok = false;
    }

    // Pipelined leg: a pooled tagged burst through the same target. Every
    // request must settle — OK, or a typed ERR under injected faults.
    if let Some(depth) = opts.pipeline {
        let pool = Pool::new(PoolConfig { max_size: opts.pool, ..PoolConfig::new(addr.clone()) });
        let reqs: Vec<CompileRequest> = (0..depth * 2)
            .map(|i| CompileRequest {
                timeout_ms: Some(AMPLE_BUDGET_MS),
                ..CompileRequest::new(suite[i % suite.len()].src)
            })
            .collect();
        let outcomes = pool.compile_many(&reqs, depth, &opts.policy(777));
        let mut pipelined_tolerated = 0u64;
        for (i, o) in outcomes.iter().enumerate() {
            match &o.response {
                Some(r) if r.ok => {}
                Some(_) if opts.tolerate_faults => pipelined_tolerated += 1,
                other => {
                    eprintln!("smoke: pipelined request {i} failed: {other:?}");
                    ok = false;
                }
            }
        }
        eprintln!(
            "smoke: pipelined leg done ({} requests, depth {depth}, pool {}, {} typed errors tolerated)",
            reqs.len(),
            opts.pool,
            pipelined_tolerated
        );
        tolerated += pipelined_tolerated;
    }

    if ok {
        println!(
            "smoke: all {n} responses arrived (1 malformed rejected, {tolerated} typed errors tolerated)"
        );
    }

    if opts.expect_restarts {
        let snap = fetch_stats(&addr, opts);
        if snap.worker_restarts == 0 {
            eprintln!("smoke: FAIL: expected watchdog worker restarts, saw none");
            ok = false;
        } else {
            eprintln!("smoke: watchdog respawned {} worker(s)", snap.worker_restarts);
        }
    }

    if opts.no_shutdown {
        eprintln!("smoke: leaving target running (--no-shutdown)");
    } else {
        let control = Client::connect(&addr).expect("connect control client");
        shutdown_always(control, handle, opts, &mut ok);
    }
    ok
}

/// Post-crash probe: the target (freshly restarted on a populated
/// `--cache-dir`, typically after `kill -9`) must report recovered warm
/// entries and serve a suite kernel. Quarantined-entry counts are
/// reported; a quarantine is recovery working, not a failure.
fn run_warm_check(opts: &Opts) -> bool {
    let (addr, handle) = connect_target(opts);
    let mut ok = true;
    let snap = fetch_stats(&addr, opts);
    println!(
        "warm-check: persist warm={} quarantined={}",
        snap.persist_warm, snap.persist_quarantined
    );
    if snap.persist_warm == 0 {
        eprintln!("warm-check: FAIL: no warm entries recovered from the cache dir");
        ok = false;
    }

    let suite = lslp_kernels::suite();
    let req =
        CompileRequest { timeout_ms: Some(AMPLE_BUDGET_MS), ..CompileRequest::new(suite[0].src) };
    let mut client = Client::connect(&addr).expect("connect");
    let outcome = client.compile_with_retry(&req, &opts.policy(0));
    match &outcome.response {
        Some(r) if r.ok => {
            println!(
                "warm-check: `{}` served ok (cached={})",
                suite[0].name,
                r.field("cached").unwrap_or("?")
            );
        }
        other => {
            eprintln!("warm-check: FAIL: compile after restart failed: {other:?}");
            ok = false;
        }
    }

    if !opts.no_shutdown {
        let control = Client::connect(&addr).expect("connect control client");
        shutdown_always(control, handle, opts, &mut ok);
    }
    ok
}

/// Send SHUTDOWN and, for an in-process server, assert the clean drain.
/// Under injected faults the SHUTDOWN roundtrip itself may be severed; the
/// drain still happens (the flag is set server-side before the response is
/// dropped), so the join is the authoritative check there.
fn shutdown_always(
    mut control: Client,
    handle: Option<std::thread::JoinHandle<std::io::Result<()>>>,
    opts: &Opts,
    ok: &mut bool,
) {
    let outcome = control.retry_line("SHUTDOWN", &opts.policy(998));
    let responded = outcome.response.as_ref().is_some_and(|r| r.ok);
    if !responded && !opts.tolerate_faults {
        eprintln!("serve_throughput: SHUTDOWN failed: {:?}", outcome.response);
        *ok = false;
    }
    if let Some(h) = handle {
        match h.join() {
            Ok(Ok(())) => eprintln!("serve_throughput: server drained cleanly"),
            other => {
                eprintln!("serve_throughput: server did not drain cleanly: {other:?}");
                *ok = false;
            }
        }
    }
}
