//! Load generator for `lslpd`: replays the kernel suite (plus heavyweight
//! synthetic kernels) against the compile service at configurable
//! concurrency and reports a throughput/latency table.
//!
//! Two passes are driven over the same request mix: a **cold** pass that
//! populates the result cache and a **warm** pass that should be served
//! almost entirely from it. For every response the payload is checked
//! byte-for-byte against a locally computed expectation, so dropped *and*
//! corrupted responses are both counted (and fail the run).
//!
//! ```text
//! cargo run --release -p lslp-bench --bin serve_throughput -- [options]
//!   --addr HOST:PORT    drive an already-running lslpd (default: spawn an
//!                       in-process server on a free port)
//!   --concurrency N     client threads (default 8)
//!   --repeat N          how often each distinct request appears per pass
//!                       (default 3)
//!   --workers N         worker threads for the in-process server
//!   --smoke             CI mode: fire 32 concurrent requests (including
//!                       one malformed and one timeout-inducing), assert
//!                       every response arrives, then send SHUTDOWN
//! ```
//!
//! Exit status is nonzero if any response is dropped, corrupted, or an
//! unexpected error, or (in the full run) if the warm pass is not faster
//! than the cold pass.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use lslp::{try_run_pipeline_with, VectorizerConfig};
use lslp_analysis::AnalysisManager;
use lslp_bench::format_table;
use lslp_server::metrics::percentiles;
use lslp_server::protocol::{CompileRequest, ErrorKind, Response};
use lslp_server::{Client, Server, ServerConfig};
use lslp_target::CostModel;

/// Generous per-request budget: large enough that the guard's deadline
/// never fires on a healthy run, so server output is byte-identical to the
/// local expectation.
const AMPLE_BUDGET_MS: u64 = 60_000;

fn main() {
    let opts = Opts::parse();
    let ok = if opts.smoke { run_smoke(&opts) } else { run_load(&opts) };
    std::process::exit(if ok { 0 } else { 1 });
}

struct Opts {
    addr: Option<String>,
    concurrency: usize,
    repeat: usize,
    workers: Option<usize>,
    smoke: bool,
}

impl Opts {
    fn parse() -> Opts {
        let mut opts = Opts { addr: None, concurrency: 8, repeat: 3, workers: None, smoke: false };
        fn num(argv: &mut impl Iterator<Item = String>, name: &str) -> usize {
            argv.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} requires a number"))
        }
        let mut argv = std::env::args().skip(1);
        while let Some(a) = argv.next() {
            match a.as_str() {
                "--addr" => opts.addr = Some(argv.next().expect("--addr requires HOST:PORT")),
                "--concurrency" => opts.concurrency = num(&mut argv, "--concurrency").max(1),
                "--repeat" => opts.repeat = num(&mut argv, "--repeat").max(1),
                "--workers" => opts.workers = Some(num(&mut argv, "--workers").max(1)),
                "--smoke" => opts.smoke = true,
                other => {
                    eprintln!("serve_throughput: unknown option `{other}`");
                    std::process::exit(2);
                }
            }
        }
        opts
    }
}

/// Connect to `--addr`, or spawn an in-process server and return its join
/// handle so a clean drain can be asserted.
fn connect_target(opts: &Opts) -> (String, Option<std::thread::JoinHandle<std::io::Result<()>>>) {
    match &opts.addr {
        Some(addr) => (addr.clone(), None),
        None => {
            let mut cfg = ServerConfig::default();
            if let Some(w) = opts.workers {
                cfg.workers = w;
            }
            let (addr, handle) = Server::spawn(cfg).expect("spawn in-process server");
            (addr.to_string(), Some(handle))
        }
    }
}

/// One distinct request plus the payload the server must return for it.
struct Expected {
    name: String,
    req: CompileRequest,
    payload: String,
}

/// A synthetic kernel with `groups` adjacent store groups of width 4 and a
/// deep commutative chain per lane — heavy enough that a cache hit is
/// measurably cheaper than a recompile.
fn big_kernel(name: &str, groups: usize) -> String {
    let mut src = format!("kernel {name}(f64* A, f64* B, i64 i) {{\n");
    for g in 0..groups {
        for l in 0..4 {
            let idx = g * 4 + l;
            src.push_str(&format!(
                "  A[i+{idx}] = (B[i+{idx}] * B[i+{idx}] + {g}.0) * B[i+{idx}] + B[i+{}];\n",
                (idx + 1) % (groups * 4)
            ));
        }
    }
    src.push('}');
    src
}

/// The request mix: every suite kernel plus four heavyweight synthetics,
/// each with its locally computed expected payload.
fn build_expected() -> Vec<Expected> {
    let mut sources: Vec<(String, String)> = lslp_kernels::suite()
        .into_iter()
        .map(|k| (k.name.to_string(), k.src.to_string()))
        .collect();
    for groups in [16usize, 32, 48, 64] {
        let name = format!("synth{groups}");
        sources.push((name.clone(), big_kernel(&name, groups)));
    }

    let tm = CostModel::skylake_like();
    let mut am = AnalysisManager::new();
    let mut cfg = VectorizerConfig::preset("LSLP").expect("LSLP preset");
    cfg.time_budget_ms = Some(AMPLE_BUDGET_MS);

    sources
        .into_iter()
        .map(|(name, src)| {
            let mut module = lslp_frontend::compile(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
            for f in &mut module.functions {
                try_run_pipeline_with(f, &cfg, &tm, &mut am)
                    .unwrap_or_else(|e| panic!("{name}: {e}"));
            }
            let req =
                CompileRequest { timeout_ms: Some(AMPLE_BUDGET_MS), ..CompileRequest::new(&src) };
            Expected { name, req, payload: lslp_ir::print_module(&module) }
        })
        .collect()
}

#[derive(Default)]
struct PassOutcome {
    ok: u64,
    errors: u64,
    corrupted: u64,
    retries: u64,
    latencies_us: Vec<u64>,
    elapsed: Duration,
}

/// Replay `repeat` rounds of the request mix at `concurrency`, round-robin
/// interleaved so repeats of the same kernel are spread across the pass.
fn drive_pass(addr: &str, expected: &[Expected], opts: &Opts) -> PassOutcome {
    let total = expected.len() * opts.repeat;
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(u64, bool, bool, u64)>(); // (lat_us, ok, corrupt, retries)
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..opts.concurrency.min(total) {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let exp = &expected[i % expected.len()];
                    let t0 = Instant::now();
                    let (resp, retries) = compile_with_retry(&mut client, &exp.req);
                    let lat = t0.elapsed().as_micros() as u64;
                    let (ok, corrupt) = match resp {
                        Some(r) if r.ok => (true, r.payload != exp.payload),
                        _ => (false, false),
                    };
                    if corrupt {
                        eprintln!("serve_throughput: corrupted payload for `{}`", exp.name);
                    }
                    tx.send((lat, ok, corrupt, retries)).expect("collector alive");
                }
            });
        }
        drop(tx);
        let mut out = PassOutcome::default();
        for (lat, ok, corrupt, retries) in rx {
            out.latencies_us.push(lat);
            out.retries += retries;
            if corrupt {
                out.corrupted += 1;
            }
            if ok {
                out.ok += 1;
            } else {
                out.errors += 1;
            }
        }
        out.elapsed = start.elapsed();
        out
    })
}

/// Overload rejections are backpressure, not failures: retry with a little
/// backoff until the queue admits the request. Anything else is final.
fn compile_with_retry(client: &mut Client, req: &CompileRequest) -> (Option<Response>, u64) {
    let mut retries = 0u64;
    loop {
        match client.compile(req) {
            Ok(r) if r.error == Some(ErrorKind::Overload) => {
                retries += 1;
                std::thread::sleep(Duration::from_millis((retries * 2).min(20)));
            }
            Ok(r) => return (Some(r), retries),
            Err(_) => return (None, retries),
        }
    }
}

/// Pull `hits=`/`misses=` off the STATS `cache:` gauge line and `max=` off
/// the `queue:` line.
fn parse_stats(payload: &str) -> (u64, u64, u64) {
    let field = |line: &str, key: &str| -> u64 {
        line.split_whitespace()
            .find_map(|tok| tok.strip_prefix(key))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    let (mut hits, mut misses, mut qmax) = (0, 0, 0);
    for line in payload.lines() {
        if let Some(rest) = line.strip_prefix("cache: ") {
            hits = field(rest, "hits=");
            misses = field(rest, "misses=");
        } else if let Some(rest) = line.strip_prefix("queue: ") {
            qmax = field(rest, "max=");
        }
    }
    (hits, misses, qmax)
}

fn run_load(opts: &Opts) -> bool {
    let (addr, handle) = connect_target(opts);
    eprintln!("serve_throughput: target {addr}, concurrency {}", opts.concurrency);

    eprintln!("serve_throughput: computing expected payloads locally...");
    let expected = build_expected();
    let total = expected.len() * opts.repeat;
    eprintln!(
        "serve_throughput: {} distinct kernels x {} = {} requests per pass",
        expected.len(),
        opts.repeat,
        total
    );

    let mut control = Client::connect(&addr).expect("connect control client");
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut prev = (0u64, 0u64); // (hits, misses) before the pass
    let mut outcomes = Vec::new();
    for pass in ["cold", "warm"] {
        let out = drive_pass(&addr, &expected, opts);
        let stats = control.stats().expect("STATS");
        let (hits, misses, qmax) = parse_stats(&stats.payload);
        let (dh, dm) = (hits - prev.0, misses - prev.1);
        prev = (hits, misses);

        let mut lat = out.latencies_us.clone();
        let summary = percentiles(&mut lat);
        let secs = out.elapsed.as_secs_f64();
        rows.push(vec![
            pass.to_string(),
            total.to_string(),
            out.ok.to_string(),
            out.errors.to_string(),
            out.corrupted.to_string(),
            out.retries.to_string(),
            format!("{:.1}", secs * 1e3),
            format!("{:.1}", out.ok as f64 / secs),
            format!("{:.2}", summary.p50_us as f64 / 1e3),
            format!("{:.2}", summary.p99_us as f64 / 1e3),
            format!("{:.1}", 100.0 * dh as f64 / (dh + dm).max(1) as f64),
            qmax.to_string(),
        ]);
        outcomes.push(out);
    }

    let headers: Vec<String> = [
        "pass",
        "requests",
        "ok",
        "errors",
        "corrupt",
        "retries",
        "elapsed-ms",
        "req/s",
        "p50-ms",
        "p99-ms",
        "hit-rate-%",
        "queue-max",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    println!("{}", format_table(&headers, &rows));

    let cold_rps = outcomes[0].ok as f64 / outcomes[0].elapsed.as_secs_f64();
    let warm_rps = outcomes[1].ok as f64 / outcomes[1].elapsed.as_secs_f64();
    println!("warm-over-cold throughput: {:.2}x", warm_rps / cold_rps);

    let mut ok = true;
    for (pass, out) in ["cold", "warm"].iter().zip(&outcomes) {
        if out.errors > 0 || out.corrupted > 0 || out.ok != total as u64 {
            eprintln!(
                "serve_throughput: FAIL ({pass}): {} ok / {} errors / {} corrupted of {total}",
                out.ok, out.errors, out.corrupted
            );
            ok = false;
        }
    }
    if warm_rps <= cold_rps {
        eprintln!("serve_throughput: FAIL: warm pass not faster than cold pass");
        ok = false;
    }

    shutdown_if_owned(control, handle, &mut ok);
    ok
}

/// CI smoke: 32 concurrent requests — one malformed line, one
/// timeout-inducing (tiny budget, heavy kernel), the rest normal — then a
/// SHUTDOWN. Every request must get a well-formed response.
fn run_smoke(opts: &Opts) -> bool {
    const N: usize = 32;
    const MALFORMED: usize = 5;
    const TIMEOUTY: usize = 9;

    let (addr, handle) = connect_target(opts);
    eprintln!("serve_throughput: smoke against {addr} ({N} concurrent requests)");

    let suite = lslp_kernels::suite();
    let heavy = big_kernel("pathological", 96);
    let (tx, rx) = mpsc::channel::<(usize, Option<Response>)>();
    std::thread::scope(|scope| {
        for i in 0..N {
            let tx = tx.clone();
            let (addr, suite, heavy) = (&addr, &suite, &heavy);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let resp = match i {
                    MALFORMED => client.roundtrip("COMPILE pipeline=maybe src=x").ok(),
                    TIMEOUTY => {
                        let req =
                            CompileRequest { timeout_ms: Some(0), ..CompileRequest::new(heavy) };
                        compile_with_retry(&mut client, &req).0
                    }
                    _ => {
                        let k = &suite[i % suite.len()];
                        let req = CompileRequest {
                            timeout_ms: Some(AMPLE_BUDGET_MS),
                            ..CompileRequest::new(k.src)
                        };
                        compile_with_retry(&mut client, &req).0
                    }
                };
                tx.send((i, resp)).expect("collector alive");
            });
        }
    });
    drop(tx);

    let mut got = [false; N];
    let mut ok = true;
    for (i, resp) in rx {
        got[i] = true;
        match resp {
            None => {
                eprintln!("smoke: request {i} got no response");
                ok = false;
            }
            Some(r) if i == MALFORMED => {
                if r.error != Some(ErrorKind::Proto) {
                    eprintln!("smoke: malformed request answered {r:?}, wanted kind=proto");
                    ok = false;
                }
            }
            Some(r) => {
                if !r.ok {
                    eprintln!("smoke: request {i} failed: {r:?}");
                    ok = false;
                }
            }
        }
    }
    if let Some(missing) = got.iter().position(|g| !g) {
        eprintln!("smoke: request {missing} never reported");
        ok = false;
    }
    if ok {
        println!("smoke: all {N} responses arrived (1 malformed rejected, 1 budget-limited ok)");
    }

    let control = Client::connect(&addr).expect("connect control client");
    shutdown_always(control, handle, &mut ok);
    ok
}

/// Full-run teardown: only stop the daemon we spawned ourselves; an
/// external `--addr` target is left running for further passes.
fn shutdown_if_owned(
    control: Client,
    handle: Option<std::thread::JoinHandle<std::io::Result<()>>>,
    ok: &mut bool,
) {
    if handle.is_some() {
        shutdown_always(control, handle, ok);
    }
}

/// Send SHUTDOWN and, for an in-process server, assert the clean drain.
fn shutdown_always(
    mut control: Client,
    handle: Option<std::thread::JoinHandle<std::io::Result<()>>>,
    ok: &mut bool,
) {
    match control.shutdown() {
        Ok(r) if r.ok => {}
        other => {
            eprintln!("serve_throughput: SHUTDOWN failed: {other:?}");
            *ok = false;
        }
    }
    if let Some(h) = handle {
        match h.join() {
            Ok(Ok(())) => eprintln!("serve_throughput: server drained cleanly"),
            other => {
                eprintln!("serve_throughput: server did not drain cleanly: {other:?}");
                *ok = false;
            }
        }
    }
}
