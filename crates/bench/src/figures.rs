//! Renderers for each table/figure of the paper's evaluation section.
//!
//! Every function returns the finished textual report so the per-figure
//! binaries and `all_experiments` share one implementation.

use lslp_kernels::{motivation_kernels, spec_kernels, suite, synthesize, Kernel, BENCHMARKS};
use lslp_target::CostModel;

use lslp_kernels::loop_kernels;

use crate::{
    format_table, geomean, measure_benchmark, measure_compile_phases, measure_compile_time,
    measure_kernel, measure_kernel_on, measure_loop_kernel, measure_loop_kernel_on,
    par_map_indexed, KernelRow, LoopKernelRow, TARGET_NAMES,
};

fn fmt_speedup(x: f64) -> String {
    format!("{x:.3}x")
}

/// Table 2: the kernel inventory.
pub fn table2() -> String {
    let headers = vec!["Kernel".to_string(), "Benchmark".into(), "Filename:Line".into()];
    let rows: Vec<Vec<String>> = suite()
        .iter()
        .map(|k| vec![k.name.to_string(), k.benchmark.to_string(), k.file_line.to_string()])
        .collect();
    format!("Table 2: kernels used for evaluation\n\n{}", format_table(&headers, &rows))
}

fn speedup_block(kernels: &[Kernel], iters_scale: usize, jobs: usize) -> (Vec<KernelRow>, String) {
    let configs = ["O3", "SLP-NR", "SLP", "LSLP"];
    let rows: Vec<KernelRow> = par_map_indexed(kernels.len(), jobs, |i| {
        let k = &kernels[i];
        measure_kernel(k, &configs, k.default_iters / iters_scale.max(1))
    });
    let headers: Vec<String> =
        ["Kernel", "SLP-NR", "SLP", "LSLP"].iter().map(|s| s.to_string()).collect();
    let mut table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                fmt_speedup(r.speedup[1]),
                fmt_speedup(r.speedup[2]),
                fmt_speedup(r.speedup[3]),
            ]
        })
        .collect();
    let gmean: Vec<String> = (1..4)
        .map(|c| {
            let xs: Vec<f64> = rows.iter().map(|r| r.speedup[c]).collect();
            fmt_speedup(geomean(&xs))
        })
        .collect();
    let mut grow = vec!["GMean".to_string()];
    grow.extend(gmean);
    table.push(grow);
    (rows, format_table(&headers, &table))
}

/// Figure 9: execution speedup over O3 for the kernel suite (simulated
/// cycles), SPEC kernels and motivation examples in separate clusters as
/// in the paper.
pub fn fig09() -> String {
    fig09_jobs(1)
}

/// [`fig09`] measured on up to `jobs` threads (`all_experiments --jobs`);
/// rows are byte-identical to the sequential run.
pub fn fig09_jobs(jobs: usize) -> String {
    let (_, spec_table) = speedup_block(&spec_kernels(), 1, jobs);
    let (_, motiv_table) = speedup_block(&motivation_kernels(), 1, jobs);
    format!(
        "Figure 9: speedup over O3 (cost-weighted simulated cycles)\n\n\
         SPEC-shaped kernels:\n{spec_table}\n\
         Motivation examples (paper right-hand cluster):\n{motiv_table}"
    )
}

/// Figure 10: static vectorization cost per kernel (the applied tree
/// costs; more negative = better, matching the paper's plot where the
/// bars extend downward).
pub fn fig10() -> String {
    fig10_jobs(1)
}

/// [`fig10`] measured on up to `jobs` threads; rows are byte-identical to
/// the sequential run.
pub fn fig10_jobs(jobs: usize) -> String {
    let configs = ["O3", "SLP-NR", "SLP", "LSLP"];
    let headers: Vec<String> =
        ["Kernel", "SLP-NR", "SLP", "LSLP"].iter().map(|s| s.to_string()).collect();
    let kernels = suite();
    let measured =
        par_map_indexed(kernels.len(), jobs, |i| measure_kernel(&kernels[i], &configs, 1));
    let mut rows = Vec::new();
    let mut sums = [0i64; 3];
    for r in &measured {
        for (c, sum) in sums.iter_mut().enumerate() {
            *sum += r.static_cost[c + 1];
        }
        rows.push(vec![
            r.name.clone(),
            r.static_cost[1].to_string(),
            r.static_cost[2].to_string(),
            r.static_cost[3].to_string(),
        ]);
    }
    let n = suite().len() as f64;
    rows.push(vec![
        "Mean".to_string(),
        format!("{:.1}", sums[0] as f64 / n),
        format!("{:.1}", sums[1] as f64 / n),
        format!("{:.1}", sums[2] as f64 / n),
    ]);
    format!(
        "Figure 10: static vectorization cost (lower = better vectorization)\n\n{}",
        format_table(&headers, &rows)
    )
}

/// Figure 11: whole-benchmark static cost normalized to SLP (percent;
/// >100% means more negative total cost than SLP, i.e. better).
pub fn fig11() -> String {
    let configs = ["O3", "SLP-NR", "SLP", "LSLP"];
    let headers: Vec<String> =
        ["Benchmark", "SLP-NR %", "SLP %", "LSLP %"].iter().map(|s| s.to_string()).collect();
    let mut rows = Vec::new();
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for &(name, ..) in BENCHMARKS {
        let wp = synthesize(name);
        let r = measure_benchmark(&wp, &configs);
        let slp = r.static_cost[2] as f64;
        assert!(slp < 0.0, "{name}: SLP must vectorize something");
        let pct: Vec<f64> = (1..4).map(|c| 100.0 * r.static_cost[c] as f64 / slp).collect();
        for (c, &p) in pct.iter().enumerate() {
            ratios[c].push(p);
        }
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", pct[0]),
            format!("{:.1}", pct[1]),
            format!("{:.1}", pct[2]),
        ]);
    }
    let gmeans: Vec<String> = ratios.iter().map(|xs| format!("{:.1}", geomean(xs))).collect();
    let mut grow = vec!["GMean".to_string()];
    grow.extend(gmeans);
    rows.push(grow);
    format!(
        "Figure 11: whole-benchmark static cost normalized to SLP (higher = better)\n\n{}",
        format_table(&headers, &rows)
    )
}

/// Figure 12: whole-benchmark speedup over O3 (hotness-weighted simulated
/// cycles).
pub fn fig12() -> String {
    let configs = ["O3", "SLP-NR", "SLP", "LSLP"];
    let headers: Vec<String> =
        ["Benchmark", "SLP-NR", "SLP", "LSLP"].iter().map(|s| s.to_string()).collect();
    let mut rows = Vec::new();
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for &(name, ..) in BENCHMARKS {
        let wp = synthesize(name);
        let r = measure_benchmark(&wp, &configs);
        for (c, col) in cols.iter_mut().enumerate() {
            col.push(r.speedup[c + 1]);
        }
        rows.push(vec![
            name.to_string(),
            fmt_speedup(r.speedup[1]),
            fmt_speedup(r.speedup[2]),
            fmt_speedup(r.speedup[3]),
        ]);
    }
    let mut grow = vec!["GMean".to_string()];
    grow.extend(cols.iter().map(|xs| fmt_speedup(geomean(xs))));
    rows.push(grow);
    format!(
        "Figure 12: whole-benchmark speedup over O3 (weighted simulated cycles)\n\n{}",
        format_table(&headers, &rows)
    )
}

/// Figure 13: sensitivity to look-ahead depth (LA0/1/2/4, multi-node
/// unbounded) and multi-node size (Multi1/2/3, LA=8), speedups over O3
/// normalized to full LSLP.
pub fn fig13() -> String {
    fig13_jobs(1)
}

/// [`fig13`] measured on up to `jobs` threads; rows are byte-identical to
/// the sequential run.
pub fn fig13_jobs(jobs: usize) -> String {
    let configs = [
        "O3",
        "SLP",
        "LSLP-LA0",
        "LSLP-LA1",
        "LSLP-LA2",
        "LSLP-LA4",
        "LSLP-Multi1",
        "LSLP-Multi2",
        "LSLP-Multi3",
        "LSLP",
    ];
    let mut headers: Vec<String> = vec!["Kernel".into()];
    headers.extend(configs[1..].iter().map(|s| s.to_string()));
    let mut rows = Vec::new();
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); configs.len() - 1];
    let kernels = suite();
    let measured = par_map_indexed(kernels.len(), jobs, |i| {
        measure_kernel(&kernels[i], &configs, kernels[i].default_iters / 8)
    });
    for r in measured {
        let lslp = *r.speedup.last().unwrap();
        let mut row = vec![r.name.clone()];
        for c in 1..configs.len() {
            let norm = r.speedup[c] / lslp;
            cols[c - 1].push(norm);
            row.push(format!("{norm:.3}"));
        }
        rows.push(row);
    }
    let mut grow = vec!["GMean".to_string()];
    grow.extend(cols.iter().map(|xs| format!("{:.3}", geomean(xs))));
    rows.push(grow);
    format!(
        "Figure 13: speedup breakdown normalized to LSLP (look-ahead depth and multi-node size)\n\n{}",
        format_table(&headers, &rows)
    )
}

/// Figure 14: compilation time (frontend + vectorizer wall-clock)
/// normalized to O3, with LA=8 for LSLP, averaged over `reps` runs after a
/// warm-up run (the paper uses 10 runs after skipping one). A second table
/// breaks the LSLP pipeline down per phase (scalar rounds vs vectorizer vs
/// analysis recomputation) using the per-pass timers of
/// [`lslp::PipelineReport`], so the vectorizer's share of the overhead —
/// and how much the analysis cache is saving — are separable.
pub fn fig14(reps: usize) -> String {
    let configs = ["O3", "SLP-NR", "SLP", "LSLP"];
    let headers: Vec<String> =
        ["Kernel", "SLP-NR", "SLP", "LSLP"].iter().map(|s| s.to_string()).collect();
    let mut rows = Vec::new();
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for k in suite() {
        let base = measure_compile_time(&k, configs[0], reps);
        let mut row = vec![k.name.to_string()];
        for (c, name) in configs[1..].iter().enumerate() {
            let t = measure_compile_time(&k, name, reps);
            let norm = t / base;
            cols[c].push(norm);
            row.push(format!("{norm:.3}"));
        }
        rows.push(row);
    }
    let mut grow = vec!["GMean".to_string()];
    grow.extend(cols.iter().map(|xs| format!("{:.3}", geomean(xs))));
    rows.push(grow);
    let phase_headers: Vec<String> =
        ["Kernel", "total µs", "scalar %", "vectorize %", "analysis %"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    let mut phase_rows = Vec::new();
    for k in suite() {
        let p = measure_compile_phases(&k, "LSLP", reps);
        phase_rows.push(vec![
            k.name.to_string(),
            format!("{:.1}", p.total * 1e6),
            format!("{:.1}", 100.0 * p.scalar / p.total),
            format!("{:.1}", 100.0 * p.vectorize / p.total),
            format!("{:.1}", 100.0 * p.analysis / p.total),
        ]);
    }
    format!(
        "Figure 14: compilation time normalized to O3 (LA=8, {reps} runs after warm-up)\n\n{}\n\
         LSLP pipeline phase breakdown (median over {reps} runs; analysis time is\n\
         cache-miss recomputation, a subset of the pass times):\n\n{}",
        format_table(&headers, &rows),
        format_table(&phase_headers, &phase_rows)
    )
}

/// Extension experiment: the target matrix. Every kernel runs under LSLP
/// on each named target of the registry; each cell reports the speedup
/// over the *same target's* O3 baseline and, in brackets, the vector
/// factors the VF exploration committed. The per-target decisions are the
/// point: the same kernel picks narrower VFs on `sse4.2` than on `avx512`.
pub fn target_matrix() -> String {
    target_matrix_jobs(1)
}

/// [`target_matrix`] measured on up to `jobs` threads; rows are
/// byte-identical to the sequential run.
pub fn target_matrix_jobs(jobs: usize) -> String {
    let (rows, table) = target_matrix_rows(&suite(), jobs);
    let divergent: Vec<&str> = rows
        .iter()
        .filter(|(_, cells)| cells.first().map(|c| &c.vfs) != cells.last().map(|c| &c.vfs))
        .map(|(name, _)| name.as_str())
        .collect();
    format!(
        "Extension: target matrix — LSLP speedup over the same target's O3\n\
         (committed vector factors in brackets)\n\n{table}\n\
         Kernels whose chosen VF differs between {} and {}: {}\n",
        TARGET_NAMES[0],
        TARGET_NAMES[TARGET_NAMES.len() - 1],
        if divergent.is_empty() { "none".to_string() } else { divergent.join(", ") }
    )
}

/// One matrix cell: LSLP's result on one kernel for one target.
struct MatrixCell {
    speedup: f64,
    vfs: Vec<usize>,
}

/// Measure the matrix and render its table. Returns the raw per-kernel
/// cells (in [`TARGET_NAMES`] order) alongside the rendered text so tests
/// can assert on the decisions rather than re-parse the table.
fn target_matrix_rows(kernels: &[Kernel], jobs: usize) -> (Vec<(String, Vec<MatrixCell>)>, String) {
    let targets: Vec<CostModel> =
        TARGET_NAMES.iter().map(|n| CostModel::parse(n).expect("registry names parse")).collect();
    let cells = par_map_indexed(kernels.len() * targets.len(), jobs, |i| {
        let k = &kernels[i / targets.len()];
        let tm = &targets[i % targets.len()];
        let r = measure_kernel_on(k, &["O3", "LSLP"], k.default_iters / 8, tm);
        MatrixCell { speedup: r.speedup[1], vfs: r.vfs[1].clone() }
    });
    let mut rows: Vec<(String, Vec<MatrixCell>)> = Vec::new();
    for (i, chunk) in cells.chunks(targets.len()).enumerate() {
        rows.push((
            kernels[i].name.to_string(),
            chunk.iter().map(|c| MatrixCell { speedup: c.speedup, vfs: c.vfs.clone() }).collect(),
        ));
    }
    let mut headers: Vec<String> = vec!["Kernel".into()];
    headers.extend(TARGET_NAMES.iter().map(|s| s.to_string()));
    let fmt_cell = |c: &MatrixCell| {
        let vfs = if c.vfs.is_empty() {
            "-".to_string()
        } else {
            c.vfs.iter().map(usize::to_string).collect::<Vec<_>>().join("/")
        };
        format!("{} [{vfs}]", fmt_speedup(c.speedup))
    };
    let mut table: Vec<Vec<String>> = rows
        .iter()
        .map(|(name, cells)| {
            let mut row = vec![name.clone()];
            row.extend(cells.iter().map(fmt_cell));
            row
        })
        .collect();
    let mut grow = vec!["GMean".to_string()];
    for t in 0..targets.len() {
        let xs: Vec<f64> = rows.iter().map(|(_, cells)| cells[t].speedup).collect();
        grow.push(fmt_speedup(geomean(&xs)));
    }
    table.push(grow);
    (rows, format_table(&headers, &table))
}

/// Extension experiment: the loop study. The counted-loop kernels compile
/// to small CFGs; the full pipeline flattens them (if-conversion turns
/// branch diamonds into `select`s, unroll-and-SLP peels the counted loop)
/// before the straight-line vectorizer runs. Every configuration —
/// including the `O3` baseline — runs the same scalar pipeline, so the
/// speedups isolate vectorization rather than loop-overhead removal.
pub fn loop_study() -> String {
    loop_study_jobs(1)
}

/// [`loop_study`] measured on up to `jobs` threads; rows are
/// byte-identical to the sequential run.
pub fn loop_study_jobs(jobs: usize) -> String {
    let (sky, table) = loop_study_sky_rows(jobs);
    let diamonds: Vec<String> = sky
        .iter()
        .filter(|r| *r.if_converted.last().unwrap() > 0)
        .map(|r| r.row.name.clone())
        .collect();
    let (_, matrix) = loop_study_matrix_rows(jobs);
    format!(
        "Extension: loop study — counted loops and branches through\n\
         if-conversion + unroll-and-SLP (full pipeline, Skylake-class target)\n\n{table}\n\
         Kernels whose branches were if-converted: {}\n\n\
         LSLP speedup per target over the same target's flattened scalar\n\
         pipeline (committed vector factors in brackets):\n\n{matrix}",
        if diamonds.is_empty() { "none".to_string() } else { diamonds.join(", ") }
    )
}

/// The Skylake-class per-configuration block of the loop study. Returns
/// the raw rows alongside the rendered table so tests can assert on the
/// pipeline's decisions rather than re-parse the text.
fn loop_study_sky_rows(jobs: usize) -> (Vec<LoopKernelRow>, String) {
    let configs = ["O3", "SLP-NR", "SLP", "LSLP"];
    let kernels = loop_kernels();
    let rows: Vec<LoopKernelRow> = par_map_indexed(kernels.len(), jobs, |i| {
        let k = &kernels[i];
        measure_loop_kernel(k, &configs, k.default_iters / 8)
    });
    let headers: Vec<String> =
        ["Kernel", "SLP-NR", "SLP", "LSLP", "if-conv", "unrolled", "LSLP VFs"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    let lslp = configs.len() - 1;
    let mut table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let vfs = if r.row.vfs[lslp].is_empty() {
                "-".to_string()
            } else {
                r.row.vfs[lslp].iter().map(usize::to_string).collect::<Vec<_>>().join("/")
            };
            vec![
                r.row.name.clone(),
                fmt_speedup(r.row.speedup[1]),
                fmt_speedup(r.row.speedup[2]),
                fmt_speedup(r.row.speedup[3]),
                r.if_converted[lslp].to_string(),
                r.unrolled[lslp].to_string(),
                vfs,
            ]
        })
        .collect();
    let mut grow = vec!["GMean".to_string()];
    for c in 1..=3 {
        let xs: Vec<f64> = rows.iter().map(|r| r.row.speedup[c]).collect();
        grow.push(fmt_speedup(geomean(&xs)));
    }
    grow.extend(["".to_string(), "".to_string(), "".to_string()]);
    table.push(grow);
    (rows, format_table(&headers, &table))
}

/// The per-target LSLP block of the loop study, in [`TARGET_NAMES`] order.
fn loop_study_matrix_rows(jobs: usize) -> (Vec<(String, Vec<MatrixCell>)>, String) {
    let targets: Vec<CostModel> =
        TARGET_NAMES.iter().map(|n| CostModel::parse(n).expect("registry names parse")).collect();
    let kernels = loop_kernels();
    let cells = par_map_indexed(kernels.len() * targets.len(), jobs, |i| {
        let k = &kernels[i / targets.len()];
        let tm = &targets[i % targets.len()];
        let r = measure_loop_kernel_on(k, &["O3", "LSLP"], k.default_iters / 8, tm);
        MatrixCell { speedup: r.row.speedup[1], vfs: r.row.vfs[1].clone() }
    });
    let mut rows: Vec<(String, Vec<MatrixCell>)> = Vec::new();
    for (i, chunk) in cells.chunks(targets.len()).enumerate() {
        rows.push((
            kernels[i].name.to_string(),
            chunk.iter().map(|c| MatrixCell { speedup: c.speedup, vfs: c.vfs.clone() }).collect(),
        ));
    }
    let mut headers: Vec<String> = vec!["Kernel".into()];
    headers.extend(TARGET_NAMES.iter().map(|s| s.to_string()));
    let fmt_cell = |c: &MatrixCell| {
        let vfs = if c.vfs.is_empty() {
            "-".to_string()
        } else {
            c.vfs.iter().map(usize::to_string).collect::<Vec<_>>().join("/")
        };
        format!("{} [{vfs}]", fmt_speedup(c.speedup))
    };
    let mut table: Vec<Vec<String>> = rows
        .iter()
        .map(|(name, cells)| {
            let mut row = vec![name.clone()];
            row.extend(cells.iter().map(fmt_cell));
            row
        })
        .collect();
    let mut grow = vec!["GMean".to_string()];
    for t in 0..targets.len() {
        let xs: Vec<f64> = rows.iter().map(|(_, cells)| cells[t].speedup).collect();
        grow.push(fmt_speedup(geomean(&xs)));
    }
    table.push(grow);
    (rows, format_table(&headers, &table))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_lists_all_kernels() {
        let t = table2();
        assert!(t.contains("453.povray"));
        assert!(t.contains("motivation_multi"));
        assert_eq!(t.lines().count(), 2 + 2 + 11);
    }

    #[test]
    fn fig10_contains_paper_values() {
        let t = fig10();
        assert!(t.contains("motivation_loads"), "{t}");
        // LSLP column of motivation_loads is −6 (Fig 2d).
        let line = t.lines().find(|l| l.starts_with("motivation_loads")).unwrap();
        assert!(line.trim_end().ends_with("-6"), "{line}");
    }

    #[test]
    fn fig10_is_byte_identical_under_jobs() {
        assert_eq!(fig10_jobs(1), fig10_jobs(4), "--jobs must not change the table");
    }

    #[test]
    fn fig13_normalizes_to_lslp() {
        let t = fig13();
        let line = t.lines().find(|l| l.starts_with("motivation_loads")).unwrap();
        assert!(line.trim_end().ends_with("1.000"), "LSLP column must be 1.0: {line}");
    }

    #[test]
    fn target_matrix_shows_divergent_vf_choices() {
        // The acceptance criterion of the multi-target extension: at least
        // one kernel whose committed VFs differ between the narrowest
        // (sse4.2) and widest (avx512) targets.
        let (rows, _) = target_matrix_rows(&suite(), 1);
        let divergent =
            rows.iter().any(|(_, cells)| cells[0].vfs != cells[TARGET_NAMES.len() - 1].vfs);
        assert!(divergent, "no kernel adapts its VF between sse4.2 and avx512");
        // Every target must at least break even against its own O3.
        for (name, cells) in &rows {
            for (t, c) in cells.iter().enumerate() {
                assert!(c.speedup >= 1.0, "{name} regresses on {}", TARGET_NAMES[t]);
            }
        }
    }

    #[test]
    fn loop_study_vectorizes_loop_and_branchy_kernels() {
        // The acceptance criterion of the control-flow extension: at least
        // one counted-loop kernel and one branchy kernel come out of the
        // pipeline with a committed VF > 1 and a real speedup.
        let (sky, _) = loop_study_sky_rows(1);
        let lslp = sky[0].row.speedup.len() - 1;
        let smin = sky.iter().find(|r| r.row.name == "smin_loop").unwrap();
        assert!(smin.unrolled[lslp] > 0, "smin_loop's counted loop must unroll");
        assert!(smin.if_converted[lslp] > 0, "smin_loop's diamond must if-convert");
        assert!(!smin.row.vfs[lslp].is_empty(), "smin_loop must vectorize under LSLP");
        assert!(smin.row.speedup[lslp] > 1.0, "smin_loop must beat the scalar pipeline");
        let saxpy = sky.iter().find(|r| r.row.name == "saxpy_loop").unwrap();
        assert!(!saxpy.row.vfs[lslp].is_empty(), "saxpy_loop must vectorize under LSLP");
        // No kernel may regress against the flattened scalar baseline, and
        // the pass guards must stay silent throughout.
        for r in &sky {
            assert!(r.row.speedup[lslp] >= 1.0, "{} regresses under LSLP", r.row.name);
            assert!(r.row.incidents.iter().all(|&i| i == 0), "{} tripped a guard", r.row.name);
        }
        // The vector-min idiom if-converts to a full-rate `select`, so it
        // keeps a committed VF on every registry target (the f64 kernels
        // legitimately break even on neon128's half-rate f64 SIMD).
        let (matrix, _) = loop_study_matrix_rows(1);
        let (_, cells) = matrix.iter().find(|(n, _)| n == "smin_loop").unwrap();
        for (t, c) in cells.iter().enumerate() {
            assert!(!c.vfs.is_empty(), "smin_loop lost its VF on {}", TARGET_NAMES[t]);
        }
    }

    #[test]
    fn loop_study_is_byte_identical_under_jobs() {
        assert_eq!(loop_study_jobs(1), loop_study_jobs(4), "--jobs must not change the table");
    }

    #[test]
    fn target_matrix_is_byte_identical_under_jobs() {
        let kernels = motivation_kernels();
        assert_eq!(target_matrix_rows(&kernels, 1).1, target_matrix_rows(&kernels, 4).1);
    }

    #[test]
    fn target_matrix_skylake_column_matches_the_default_harness() {
        // measure_kernel delegates to measure_kernel_on(skylake); the
        // matrix's skylake-avx2 column must agree with the Fig 9 numbers.
        let k = &suite()[0];
        let default_row = measure_kernel(k, &["O3", "LSLP"], k.default_iters / 8);
        let (rows, _) = target_matrix_rows(std::slice::from_ref(k), 1);
        let sky = TARGET_NAMES.iter().position(|&n| n == "skylake-avx2").unwrap();
        assert_eq!(rows[0].1[sky].speedup, default_row.speedup[1]);
        assert_eq!(rows[0].1[sky].vfs, default_row.vfs[1]);
    }
}
