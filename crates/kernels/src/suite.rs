//! The Table 2 kernel suite.
//!
//! Eight kernels mirroring the dataflow shape of the paper's SPEC CPU2006
//! extracts (453.povray and 433.milc) plus the three motivating examples of
//! §3. SPEC sources are licensed, so each kernel re-creates the *structure*
//! the paper's evaluation exploits — chains of commutative operations whose
//! operand order differs between the lanes of a store group — rather than
//! the literal SPEC code (the substitution is documented in DESIGN.md).

use lslp_interp::{measure_cycles, ExecError, Memory, Value};
use lslp_ir::Function;
use lslp_target::CostModel;

/// Element kind of a kernel's arrays.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ElemKind {
    /// 64-bit signed integers (`i64*` arrays).
    I64,
    /// 64-bit floats (`f64*` arrays).
    F64,
}

/// One evaluation kernel: SLC source plus the driver metadata needed to
/// allocate its arrays and sweep its index argument.
#[derive(Clone, Copy, Debug)]
pub struct Kernel {
    /// Kernel name (also the SLC kernel / IR function name).
    pub name: &'static str,
    /// Provenance: benchmark the paper extracted the kernel from.
    pub benchmark: &'static str,
    /// Provenance: the paper's Table 2 `Filename:Line` entry.
    pub file_line: &'static str,
    /// The SLC source.
    pub src: &'static str,
    /// How much the index argument `i` advances per invocation.
    pub i_step: i64,
    /// Maximum coefficient of `i` in any index expression.
    pub idx_scale: i64,
    /// Maximum constant offset in any index expression.
    pub idx_off: i64,
    /// Array element kind (uniform per kernel).
    pub elem: ElemKind,
    /// Default iteration count for performance simulation.
    pub default_iters: usize,
}

impl Kernel {
    /// Compile the kernel to an IR function.
    ///
    /// # Panics
    ///
    /// Panics if the embedded source does not compile — a bug caught by the
    /// suite's own tests.
    pub fn compile(&self) -> Function {
        let m = lslp_frontend::compile(self.src)
            .unwrap_or_else(|e| panic!("kernel {} does not compile: {e}", self.name));
        m.functions.into_iter().next().expect("one kernel per source")
    }

    /// Array length needed to run `iters` iterations safely.
    pub fn array_len(&self, iters: usize) -> usize {
        (self.idx_scale * self.i_step * iters as i64 + self.idx_off + 8) as usize
    }

    /// Allocate and deterministically initialize every array the kernel
    /// touches (all pointer parameters of the compiled function).
    pub fn setup_memory(&self, f: &Function, iters: usize) -> Memory {
        let mut mem = Memory::new();
        let len = self.array_len(iters);
        for (ai, &p) in f.params().iter().enumerate() {
            if f.ty(p) != lslp_ir::Type::PTR {
                continue;
            }
            let name = f.value_name(p).expect("named parameter");
            match self.elem {
                ElemKind::F64 => {
                    let init: Vec<f64> = (0..len)
                        .map(|k| 0.5 + (mix(ai as u64, k as u64) % 1024) as f64 / 1024.0)
                        .collect();
                    mem.alloc_f64(name, &init);
                }
                ElemKind::I64 => {
                    let init: Vec<i64> =
                        (0..len).map(|k| (mix(ai as u64, k as u64) % 4096) as i64 + 1).collect();
                    mem.alloc_i64(name, &init);
                }
            }
        }
        mem
    }

    /// Build the argument list for invocation index `i`.
    pub fn args(&self, f: &Function, mem: &Memory, i: i64) -> Vec<Value> {
        f.params()
            .iter()
            .map(|&p| {
                if f.ty(p) == lslp_ir::Type::PTR {
                    mem.ptr(f.value_name(p).expect("named parameter")).expect("array allocated")
                } else {
                    Value::Int(i)
                }
            })
            .collect()
    }

    /// Run `iters` invocations; returns total simulated cycles.
    ///
    /// # Errors
    ///
    /// Propagates interpreter failures (which indicate a miscompile).
    pub fn run(
        &self,
        f: &Function,
        mem: &mut Memory,
        iters: usize,
        tm: &CostModel,
    ) -> Result<i64, ExecError> {
        let mut cycles = 0;
        for t in 0..iters {
            let args = self.args(f, mem, t as i64 * self.i_step);
            cycles += measure_cycles(f, &args, mem, tm)?.cycles;
        }
        Ok(cycles)
    }
}

/// A small deterministic mixer for array initialization.
fn mix(a: u64, b: u64) -> u64 {
    let mut x = a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x
}

/// The three motivating examples of §3 (Figures 2–4).
pub fn motivation_kernels() -> Vec<Kernel> {
    vec![
        Kernel {
            name: "motivation_loads",
            benchmark: "Section 3.1",
            file_line: "Figure 2",
            src: "kernel motivation_loads(i64* A, i64* B, i64* C, i64 i) {
                      A[i+0] = (B[i+0] << 1) & (C[i+0] << 2);
                      A[i+1] = (C[i+1] << 3) & (B[i+1] << 4);
                  }",
            i_step: 2,
            idx_scale: 1,
            idx_off: 1,
            elem: ElemKind::I64,
            default_iters: 512,
        },
        Kernel {
            name: "motivation_opcodes",
            benchmark: "Section 3.2",
            file_line: "Figure 3",
            src: "kernel motivation_opcodes(i64* A, i64* B, i64* C, i64* D, i64* E, i64 i) {
                      A[i+0] = ((B[2*i] << 1) & 0x11) + ((C[2*i] + 2) & 0x12);
                      A[i+1] = ((D[2*i] + 3) & 0x13) + ((E[2*i] << 4) & 0x14);
                  }",
            i_step: 2,
            idx_scale: 2,
            idx_off: 1,
            elem: ElemKind::I64,
            default_iters: 512,
        },
        Kernel {
            name: "motivation_multi",
            benchmark: "Section 3.3",
            file_line: "Figure 4",
            src: "kernel motivation_multi(i64* A, i64* B, i64* C, i64* D, i64* E, i64 i) {
                      A[i+0] = A[i+0] & (B[i+0] + C[i+0]) & (D[i+0] + E[i+0]);
                      A[i+1] = (D[i+1] + E[i+1]) & (B[i+1] + C[i+1]) & A[i+1];
                  }",
            i_step: 2,
            idx_scale: 1,
            idx_off: 1,
            elem: ElemKind::I64,
            default_iters: 512,
        },
    ]
}

/// The eight SPEC-shaped kernels of Table 2.
pub fn spec_kernels() -> Vec<Kernel> {
    vec![
        Kernel {
            name: "boy_surface",
            benchmark: "SPEC2006 453.povray",
            file_line: "fnintern.cpp:355",
            // Boy-surface distance polynomial: a sum of scaled cubic terms
            // per lane, with the factor order permuted in lane 1 (the real
            // povray function sums scaled powers of intermediate values).
            src: "kernel boy_surface(f64* R, f64* X, f64* Y, f64* Z, f64* W, i64 i) {
                      let x0 = X[i+0]; let y0 = Y[i+0]; let z0 = Z[i+0]; let w0 = W[i+0];
                      R[i+0] = x0*x0*x0*64.0 + y0*y0*y0*48.0 + z0*z0*z0*12.0 + w0*w0*w0*2.0;
                      let x1 = X[i+1]; let y1 = Y[i+1]; let z1 = Z[i+1]; let w1 = W[i+1];
                      R[i+1] = x1*64.0*x1*x1 + 48.0*y1*y1*y1 + z1*12.0*z1*z1 + 2.0*w1*w1*w1;
                  }",
            i_step: 2,
            idx_scale: 1,
            idx_off: 1,
            elem: ElemKind::F64,
            default_iters: 256,
        },
        Kernel {
            name: "intersect_quadratic",
            benchmark: "SPEC2006 453.povray",
            file_line: "poly.cpp:813",
            // Quadratic-intersection discriminants with commuted products.
            src: "kernel intersect_quadratic(f64* T, f64* A, f64* B, f64* C, i64 i) {
                      T[i+0] = B[i+0]*B[i+0] - A[i+0]*C[i+0]*4.0;
                      T[i+1] = B[i+1]*B[i+1] - 4.0*C[i+1]*A[i+1];
                  }",
            i_step: 2,
            idx_scale: 1,
            idx_off: 1,
            elem: ElemKind::F64,
            default_iters: 512,
        },
        Kernel {
            name: "calc_z3",
            benchmark: "SPEC2006 453.povray",
            file_line: "quatern.cpp:433",
            // Quaternion z^3 component update: four adjacent stores, only
            // some lanes isomorphic (realistic partial vectorization).
            src: "kernel calc_z3(f64* R, f64* Q, i64 i) {
                      let w = Q[4*i+0]; let x = Q[4*i+1]; let y = Q[4*i+2]; let z = Q[4*i+3];
                      let n = x*x + y*y + z*z;
                      let a = w*w*3.0 - n;
                      R[4*i+0] = w * (w*w - n*3.0);
                      R[4*i+1] = x*a;
                      R[4*i+2] = a*y;
                      R[4*i+3] = z*a;
                  }",
            i_step: 1,
            idx_scale: 4,
            idx_off: 3,
            elem: ElemKind::F64,
            default_iters: 256,
        },
        Kernel {
            name: "vsumsqr",
            benchmark: "SPEC2006 453.povray",
            file_line: "vector.h:362",
            // Vector sum-of-squares over 3-component points; three loads
            // per lane, terms permuted in lane 1.
            src: "kernel vsumsqr(f64* R, f64* V, i64 i) {
                      R[i+0] = V[3*i+0]*V[3*i+0] + V[3*i+1]*V[3*i+1] + V[3*i+2]*V[3*i+2];
                      R[i+1] = V[3*i+4]*V[3*i+4] + V[3*i+3]*V[3*i+3] + V[3*i+5]*V[3*i+5];
                  }",
            i_step: 2,
            idx_scale: 3,
            idx_off: 5,
            elem: ElemKind::F64,
            default_iters: 256,
        },
        Kernel {
            name: "hreciprocal",
            benchmark: "SPEC2006 453.povray",
            file_line: "hcmplx.cpp:113",
            // Hypercomplex reciprocal: one shared norm factor broadcast
            // over four component stores with sign constants.
            src: "kernel hreciprocal(f64* R, f64* H, i64 i) {
                      let n = H[4*i+0]*H[4*i+0] + H[4*i+1]*H[4*i+1]
                            + H[4*i+2]*H[4*i+2] + H[4*i+3]*H[4*i+3];
                      R[4*i+0] = H[4*i+0] * n * 1.0;
                      R[4*i+1] = n * H[4*i+1] * -1.0;
                      R[4*i+2] = H[4*i+2] * -1.0 * n;
                      R[4*i+3] = -1.0 * H[4*i+3] * n;
                  }",
            i_step: 1,
            idx_scale: 4,
            idx_off: 3,
            elem: ElemKind::F64,
            default_iters: 256,
        },
        Kernel {
            name: "mesh1",
            benchmark: "SPEC2006 453.povray",
            file_line: "fnintern.cpp:759",
            // Mesh distance terms: squared deltas, terms permuted per lane.
            src: "kernel mesh1(f64* R, f64* PX, f64* PY, f64* QX, f64* QY, i64 i) {
                      let dx0 = PX[i+0] - QX[i+0];
                      let dy0 = PY[i+0] - QY[i+0];
                      R[i+0] = dx0*dx0 + dy0*dy0 + dx0*dy0*0.5;
                      let dx1 = PX[i+1] - QX[i+1];
                      let dy1 = PY[i+1] - QY[i+1];
                      R[i+1] = dy1*dy1 + dx1*dx1 + 0.5*dx1*dy1;
                  }",
            i_step: 2,
            idx_scale: 1,
            idx_off: 1,
            elem: ElemKind::F64,
            default_iters: 512,
        },
        Kernel {
            name: "mult_su2",
            benchmark: "SPEC2006 433.milc",
            file_line: "m_su2_mat_vec_a.c:23",
            // SU(2) matrix × complex 2-vector with conjugation signs folded
            // into the matrix arrays (UP/UM), interleaved complex vector.
            src: "kernel mult_su2(f64* D, f64* UP, f64* UM, f64* V, i64 i) {
                      D[2*i+0] = UP[4*i+0]*V[4*i+0] + UM[4*i+1]*V[4*i+1]
                               + UP[4*i+2]*V[4*i+2] + UM[4*i+3]*V[4*i+3];
                      D[2*i+1] = UP[4*i+1]*V[4*i+0] + UM[4*i+0]*V[4*i+1]
                               + UP[4*i+3]*V[4*i+2] + UM[4*i+2]*V[4*i+3];
                  }",
            i_step: 1,
            idx_scale: 4,
            idx_off: 3,
            elem: ElemKind::F64,
            default_iters: 256,
        },
        Kernel {
            name: "quartic_cylinder",
            benchmark: "SPEC2006 453.povray",
            file_line: "fnintern.cpp:924",
            // Quartic cylinder polynomial: degree-4 product chains with
            // factor order swapped between lanes.
            src: "kernel quartic_cylinder(f64* R, f64* X, f64* Y, i64 i) {
                      let x0 = X[i+0]; let y0 = Y[i+0];
                      R[i+0] = x0*x0*x0*x0 + y0*y0*2.0*x0*x0 + y0*y0*y0*y0 - 1.0;
                      let x1 = X[i+1]; let y1 = Y[i+1];
                      R[i+1] = y1*y1*y1*y1 + x1*x1*y1*y1*2.0 + x1*x1*x1*x1 - 1.0;
                  }",
            i_step: 2,
            idx_scale: 1,
            idx_off: 1,
            elem: ElemKind::F64,
            default_iters: 256,
        },
    ]
}

/// The full Table 2 suite: the eight SPEC-shaped kernels followed by the
/// three motivating examples, in the paper's order.
pub fn suite() -> Vec<Kernel> {
    let mut all = spec_kernels();
    all.extend(motivation_kernels());
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kernel_compiles_and_verifies() {
        for k in suite() {
            let f = k.compile();
            lslp_ir::verify_function(&f).unwrap_or_else(|e| panic!("{}: {e}", k.name));
            assert_eq!(f.name(), k.name);
        }
    }

    #[test]
    fn every_kernel_runs_scalar() {
        let tm = CostModel::default();
        for k in suite() {
            let f = k.compile();
            let mut mem = k.setup_memory(&f, 8);
            let cycles = k.run(&f, &mut mem, 8, &tm).unwrap_or_else(|e| panic!("{}: {e}", k.name));
            assert!(cycles > 0, "{} must execute work", k.name);
        }
    }

    #[test]
    fn suite_matches_table2_inventory() {
        let s = suite();
        assert_eq!(s.len(), 11);
        let names: Vec<&str> = s.iter().map(|k| k.name).collect();
        for expected in [
            "boy_surface",
            "intersect_quadratic",
            "calc_z3",
            "vsumsqr",
            "hreciprocal",
            "mesh1",
            "mult_su2",
            "quartic_cylinder",
            "motivation_loads",
            "motivation_opcodes",
            "motivation_multi",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn array_lengths_cover_all_accesses() {
        // Running at the default iteration count must not fault.
        let tm = CostModel::default();
        for k in suite() {
            let f = k.compile();
            let iters = 4.min(k.default_iters);
            let mut mem = k.setup_memory(&f, iters);
            k.run(&f, &mut mem, iters, &tm)
                .unwrap_or_else(|e| panic!("{} out of bounds: {e}", k.name));
        }
    }

    #[test]
    fn memory_init_is_deterministic() {
        let k = &suite()[0];
        let f = k.compile();
        let m1 = k.setup_memory(&f, 4);
        let m2 = k.setup_memory(&f, 4);
        for name in m1.buffer_names() {
            assert_eq!(m1.bytes(name), m2.bytes(name));
        }
    }
}
