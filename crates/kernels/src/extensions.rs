//! Extension-study workloads (beyond the paper's Table 2).
//!
//! * [`reduction_kernels`] — dot products, norms, and folds whose only
//!   vectorization opportunity is a horizontal reduction
//!   (`lslp::reduce`); store-seeded SLP/LSLP cannot touch them.
//! * [`narrow_kernels`] — `f32`/`i16` workloads demonstrating how the
//!   element width scales the vector factor on different targets
//!   (`ext_targets`).

use crate::suite::{ElemKind, Kernel};

/// Reduction-shaped kernels (single scalar output per iteration).
pub fn reduction_kernels() -> Vec<Kernel> {
    vec![
        Kernel {
            name: "dot4",
            benchmark: "extension",
            file_line: "reduction study",
            src: "kernel dot4(f64* R, f64* X, f64* Y, i64 i) {
                      R[i] = X[4*i+0]*Y[4*i+0] + X[4*i+1]*Y[4*i+1]
                           + X[4*i+2]*Y[4*i+2] + X[4*i+3]*Y[4*i+3];
                  }",
            i_step: 1,
            idx_scale: 4,
            idx_off: 3,
            elem: ElemKind::F64,
            default_iters: 256,
        },
        Kernel {
            name: "norm4",
            benchmark: "extension",
            file_line: "reduction study",
            src: "kernel norm4(f64* R, f64* H, i64 i) {
                      R[i] = H[4*i+0]*H[4*i+0] + H[4*i+1]*H[4*i+1]
                           + H[4*i+2]*H[4*i+2] + H[4*i+3]*H[4*i+3];
                  }",
            i_step: 1,
            idx_scale: 4,
            idx_off: 3,
            elem: ElemKind::F64,
            default_iters: 256,
        },
        Kernel {
            name: "sum8",
            benchmark: "extension",
            file_line: "reduction study",
            src: "kernel sum8(i64* R, i64* X, i64 i) {
                      R[i] = X[8*i+0] + X[8*i+1] + X[8*i+2] + X[8*i+3]
                           + X[8*i+4] + X[8*i+5] + X[8*i+6] + X[8*i+7];
                  }",
            i_step: 1,
            idx_scale: 8,
            idx_off: 7,
            elem: ElemKind::I64,
            default_iters: 256,
        },
        Kernel {
            name: "xor_fold",
            benchmark: "extension",
            file_line: "reduction study",
            src: "kernel xor_fold(i64* R, i64* X, i64 i) {
                      R[i] = (X[4*i+0] ^ X[4*i+1]) ^ (X[4*i+2] ^ X[4*i+3]);
                  }",
            i_step: 1,
            idx_scale: 4,
            idx_off: 3,
            elem: ElemKind::I64,
            default_iters: 256,
        },
    ]
}

/// Narrow-element kernels written with SLC `for`-loops (8 and 16 lanes on
/// a 256-bit target).
pub fn narrow_kernels() -> Vec<Kernel> {
    vec![Kernel {
        name: "f32_scale8",
        benchmark: "extension",
        file_line: "width study",
        src: "kernel f32_scale8(f32* A, f32* B, i64 i) {
                      for o in 0..8 {
                          A[i+o] = B[i+o] * B[i+o] + 1.0;
                      }
                  }",
        i_step: 8,
        idx_scale: 1,
        idx_off: 7,
        elem: ElemKind::F64, // array helpers unused for this kernel
        default_iters: 128,
    }]
}

/// Kernels written with *runtime* control flow: SLC `loop` statements
/// (lowered to the IR's `CountedLoop` region, fully unrolled by the
/// unroll-and-SLP pass) and `if` expressions (lowered to branch diamonds,
/// flattened by if-conversion). These exercise the CFG front of the
/// pipeline; the straight-line vectorizer only ever sees their flattened
/// form.
pub fn loop_kernels() -> Vec<Kernel> {
    vec![
        Kernel {
            name: "saxpy_loop",
            benchmark: "loop study",
            file_line: "counted-loop saxpy",
            src: "kernel saxpy_loop(f64* OUT, f64* X, f64* Y, i64 i) {
                      loop k in 0..8 {
                          OUT[i+k] = 2.5 * X[i+k] + Y[i+k];
                      }
                  }",
            i_step: 8,
            idx_scale: 1,
            idx_off: 7,
            elem: ElemKind::F64,
            default_iters: 128,
        },
        Kernel {
            name: "dot_loop",
            benchmark: "loop study",
            file_line: "loop-carried reduction",
            src: "kernel dot_loop(f64* OUT, f64* X, f64* Y, i64 i) {
                      let mut s: f64 = 0.0;
                      loop k in 0..8 {
                          s = s + X[8*i+k] * Y[8*i+k];
                      }
                      OUT[i] = s;
                  }",
            i_step: 1,
            idx_scale: 8,
            idx_off: 7,
            elem: ElemKind::F64,
            default_iters: 128,
        },
        Kernel {
            name: "smin_loop",
            benchmark: "loop study",
            file_line: "branchy integer loop",
            // Vector-min idiom: the diamond if-converts to `select`, which
            // every target prices at full rate — the one loop kernel whose
            // committed VF is > 1 on all four registry targets (the f64
            // kernels break even on neon128's half-rate f64 SIMD).
            src: "kernel smin_loop(i64* OUT, i64* X, i64* Y, i64 i) {
                      loop k in 0..4 {
                          let a = X[i+k];
                          let b = Y[i+k];
                          OUT[i+k] = if a < b { a } else { b };
                      }
                  }",
            i_step: 4,
            idx_scale: 1,
            idx_off: 3,
            elem: ElemKind::I64,
            default_iters: 256,
        },
        Kernel {
            name: "clamp_loop",
            benchmark: "loop study",
            file_line: "branchy loop body",
            // Threshold sits inside the initializer's value range
            // (0.5..1.5), so both branch arms are exercised.
            src: "kernel clamp_loop(f64* OUT, f64* X, i64 i) {
                      loop k in 0..4 {
                          let v = X[i+k];
                          let c = if v < 0.75 { 0.75 } else { v };
                          OUT[i+k] = c * c;
                      }
                  }",
            i_step: 4,
            idx_scale: 1,
            idx_off: 3,
            elem: ElemKind::F64,
            default_iters: 256,
        },
    ]
}

/// A broader set of SPEC-flavoured kernels exercising wider shapes than
/// Table 2: complex arithmetic, quaternion products, and stencils. Used by
/// the extended regression tests and the `ext_targets` sweep.
pub fn extended_kernels() -> Vec<Kernel> {
    vec![
        Kernel {
            name: "complex_mul",
            benchmark: "extended suite",
            file_line: "complex arrays",
            // Interleaved complex multiply: (a+bi)(c+di); the real/imag
            // lanes differ in sign structure, so only parts vectorize —
            // a realistic partial case.
            src: "kernel complex_mul(f64* R, f64* A, f64* B, i64 i) {
                      R[2*i+0] = A[2*i+0]*B[2*i+0] - A[2*i+1]*B[2*i+1];
                      R[2*i+1] = A[2*i+0]*B[2*i+1] + A[2*i+1]*B[2*i+0];
                  }",
            i_step: 1,
            idx_scale: 2,
            idx_off: 1,
            elem: ElemKind::F64,
            default_iters: 256,
        },
        Kernel {
            name: "quaternion_mul",
            benchmark: "extended suite",
            file_line: "quatern.cpp-like",
            // Hamilton product with per-lane sign constants folded into a
            // separate coefficient array so the four output lanes stay
            // isomorphic (the povray trick for vectorizable quaternions).
            src: "kernel quaternion_mul(f64* R, f64* P, f64* Q, f64* S, i64 i) {
                      for k in 0..4 {
                          R[4*i+k] = P[4*i+0]*Q[4*i+k]*S[16*i+4*k+0]
                                   + P[4*i+1]*Q[4*i+k]*S[16*i+4*k+1]
                                   + P[4*i+2]*Q[4*i+k]*S[16*i+4*k+2]
                                   + P[4*i+3]*Q[4*i+k]*S[16*i+4*k+3];
                      }
                  }",
            i_step: 1,
            idx_scale: 16,
            idx_off: 15,
            elem: ElemKind::F64,
            default_iters: 128,
        },
        Kernel {
            name: "su3_row",
            benchmark: "extended suite",
            file_line: "milc su3-like",
            // One row of an SU(3)-like real matrix times a 3-vector,
            // producing 4 padded outputs (lattice-QCD layouts pad to 4).
            src: "kernel su3_row(f64* D, f64* U, f64* V, i64 i) {
                      for r in 0..4 {
                          D[4*i+r] = U[12*i+3*r+0]*V[4*i+0]
                                   + U[12*i+3*r+1]*V[4*i+1]
                                   + U[12*i+3*r+2]*V[4*i+2];
                      }
                  }",
            i_step: 1,
            idx_scale: 12,
            idx_off: 11,
            elem: ElemKind::F64,
            default_iters: 128,
        },
        Kernel {
            name: "stencil3",
            benchmark: "extended suite",
            file_line: "1-D 3-point stencil",
            src: "kernel stencil3(f64* OUT, f64* IN, i64 i) {
                      for o in 0..4 {
                          OUT[i+o] = IN[i+o]*0.5 + IN[i+o+1]*0.25 + IN[i+o+2]*0.25;
                      }
                  }",
            i_step: 4,
            idx_scale: 1,
            idx_off: 6,
            elem: ElemKind::F64,
            default_iters: 256,
        },
        Kernel {
            name: "hash_mix",
            benchmark: "extended suite",
            file_line: "integer mixer",
            src: "kernel hash_mix(i64* H, i64* K, i64 i) {
                      for o in 0..4 {
                          let x = K[i+o] * 0x9E3779B9;
                          H[i+o] = (x ^ (x >>> 17)) * 5 + 0x52DCE729;
                      }
                  }",
            i_step: 4,
            idx_scale: 1,
            idx_off: 4,
            elem: ElemKind::I64,
            default_iters: 256,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extension_kernels_compile() {
        for k in reduction_kernels()
            .iter()
            .chain(&narrow_kernels())
            .chain(&extended_kernels())
            .chain(&loop_kernels())
        {
            let f = k.compile();
            lslp_ir::verify_function(&f).unwrap_or_else(|e| panic!("{}: {e}", k.name));
        }
    }

    #[test]
    fn loop_kernels_carry_a_cfg() {
        for k in loop_kernels() {
            let f = k.compile();
            assert!(f.cfg().is_some(), "{} should lower to a CFG", k.name);
        }
    }

    #[test]
    fn loop_kernels_run_scalar() {
        let tm = lslp_target::CostModel::default();
        for k in loop_kernels() {
            let f = k.compile();
            let mut mem = k.setup_memory(&f, 4);
            let cycles = k.run(&f, &mut mem, 4, &tm).unwrap_or_else(|e| panic!("{}: {e}", k.name));
            assert!(cycles > 0);
        }
    }

    #[test]
    fn reduction_kernels_run_scalar() {
        let tm = lslp_target::CostModel::default();
        for k in reduction_kernels() {
            let f = k.compile();
            let mut mem = k.setup_memory(&f, 4);
            let cycles = k.run(&f, &mut mem, 4, &tm).unwrap_or_else(|e| panic!("{}: {e}", k.name));
            assert!(cycles > 0);
        }
    }
}
