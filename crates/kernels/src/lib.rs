//! # lslp-kernels
//!
//! The evaluation workloads of the LSLP reproduction:
//!
//! * [`mod@suite`] — the eleven kernels of the paper's Table 2: eight kernels
//!   re-written in SLC with the dataflow shape of their SPEC CPU2006
//!   originals (povray / milc), plus the three motivating examples of §3
//!   (Figures 2–4). SPEC sources are licensed, so each kernel is a
//!   re-creation of the *structure* the paper exploits: chains of
//!   commutative operations whose operand order differs between lanes.
//! * [`generator`] — a seeded random straight-line program generator used
//!   by the property-based equivalence tests and the whole-program
//!   synthesizer.
//! * [`wholeprog`] — synthetic "full benchmark" modules standing in for the
//!   whole SPEC benchmarks of Figures 11–12 (many neutral functions, a few
//!   LSLP-sensitive ones, weighted by synthetic hotness).
//! * [`extensions`] — workloads for the studies beyond the paper's
//!   evaluation (horizontal reductions, narrow element widths).

#![warn(missing_docs)]

pub mod extensions;
pub mod generator;
pub mod suite;
pub mod wholeprog;

pub use extensions::{extended_kernels, loop_kernels, narrow_kernels, reduction_kernels};
pub use generator::{generate, GenConfig, GeneratedProgram};
pub use suite::{motivation_kernels, spec_kernels, suite, ElemKind, Kernel};
pub use wholeprog::{synthesize, WholeProgram, BENCHMARKS};
