//! Seeded random straight-line program generator.
//!
//! Generates kernels in the image of the evaluation workloads: groups of
//! adjacent stores whose lanes compute structurally identical expression
//! trees, with commutative operand order optionally shuffled per lane
//! (the exact non-isomorphism LSLP exists to repair). Used by the
//! property-based equivalence tests and by the whole-program synthesizer
//! of Figures 11–12.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lslp_ir::{Function, FunctionBuilder, Opcode, ScalarType, Type, ValueId};

/// Configuration of one generated function.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// RNG seed (same seed ⇒ identical function).
    pub seed: u64,
    /// Number of store groups.
    pub groups: usize,
    /// Lanes per store group (consecutive stores).
    pub lanes: usize,
    /// Expression tree depth.
    pub depth: u32,
    /// Generate integer (`i64`) code instead of `f64`.
    pub int: bool,
    /// Probability that a commutative node's operands are swapped in lanes
    /// beyond the first (0.0 ⇒ perfectly isomorphic code that vanilla SLP
    /// handles; higher values increasingly require look-ahead reordering).
    pub swap_prob: f64,
    /// Number of distinct input arrays.
    pub arrays: usize,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig { seed: 0, groups: 2, lanes: 2, depth: 3, int: true, swap_prob: 0.5, arrays: 3 }
    }
}

/// A generated function plus the array metadata needed to execute it.
#[derive(Clone, Debug)]
pub struct GeneratedProgram {
    /// The function; the first parameter is the output array `OUT`, the
    /// following `arrays` parameters are inputs `IN0..`, and the last
    /// parameter is the index `i`.
    pub function: Function,
    /// Element type of every array.
    pub elem: ScalarType,
    /// Number of input arrays.
    pub inputs: usize,
    /// Minimum element count for every array.
    pub min_len: usize,
}

/// A structural expression shape, instantiated once per lane.
enum Shape {
    /// Load from input array `arr` at `i + base + lane`.
    Load { arr: usize, base: i64 },
    /// A constant (same for all lanes).
    Const(i64),
    /// Binary node; `swap_lanes` marks the lanes whose operands are
    /// presented in reverse order.
    Bin { op: Opcode, lhs: Box<Shape>, rhs: Box<Shape>, swap_mask: u64 },
    /// `select(cmp(pred, a, b), t, e)` — exercises compare/select groups.
    Select { pred: u8, a: Box<Shape>, b: Box<Shape>, t: Box<Shape>, e: Box<Shape> },
    /// A narrowing/widening cast round-trip (`i64→i32→i64` or
    /// `f64→f32→f64`) — exercises conversion groups; lossy but
    /// deterministic.
    NarrowRoundtrip { inner: Box<Shape> },
}

fn gen_shape(rng: &mut StdRng, cfg: &GenConfig, depth: u32) -> Shape {
    if depth == 0 || rng.gen_bool(0.2) {
        return if rng.gen_bool(0.25) {
            Shape::Const(rng.gen_range(1..16))
        } else {
            Shape::Load { arr: rng.gen_range(0..cfg.arrays), base: rng.gen_range(0i64..4) * 4 }
        };
    }
    // Selects only in integer mode: under fast-math a reassociated float
    // compare can flip discontinuously, which would make tolerance-based
    // equivalence checking unsound.
    if cfg.int && rng.gen_bool(0.08) {
        return Shape::Select {
            pred: rng.gen_range(0..6),
            a: Box::new(gen_shape(rng, cfg, depth - 1)),
            b: Box::new(gen_shape(rng, cfg, depth - 1)),
            t: Box::new(gen_shape(rng, cfg, depth - 1)),
            e: Box::new(gen_shape(rng, cfg, depth - 1)),
        };
    }
    if rng.gen_bool(0.08) {
        return Shape::NarrowRoundtrip { inner: Box::new(gen_shape(rng, cfg, depth - 1)) };
    }
    let op = if cfg.int {
        *[Opcode::Add, Opcode::Mul, Opcode::And, Opcode::Or, Opcode::Xor, Opcode::Sub, Opcode::Shl]
            .get(rng.gen_range(0..7usize))
            .unwrap()
    } else {
        *[Opcode::FAdd, Opcode::FMul, Opcode::FSub].get(rng.gen_range(0..3usize)).unwrap()
    };
    let mut swap_mask = 0u64;
    if op.is_commutative() {
        for lane in 1..cfg.lanes.min(64) {
            if rng.gen_bool(cfg.swap_prob) {
                swap_mask |= 1 << lane;
            }
        }
    }
    let lhs = Box::new(gen_shape(rng, cfg, depth - 1));
    let rhs = if op == Opcode::Shl {
        // Bounded shift amounts keep integer semantics portable.
        Box::new(Shape::Const(rng.gen_range(1..8)))
    } else {
        Box::new(gen_shape(rng, cfg, depth - 1))
    };
    Shape::Bin { op, lhs, rhs, swap_mask }
}

fn max_load_index(shape: &Shape) -> i64 {
    match shape {
        Shape::Load { base, .. } => *base,
        Shape::Const(_) => 0,
        Shape::Bin { lhs, rhs, .. } => max_load_index(lhs).max(max_load_index(rhs)),
        Shape::Select { a, b, t, e, .. } => {
            max_load_index(a).max(max_load_index(b)).max(max_load_index(t)).max(max_load_index(e))
        }
        Shape::NarrowRoundtrip { inner } => max_load_index(inner),
    }
}

struct Emit<'f> {
    b: FunctionBuilder<'f>,
    inputs: Vec<ValueId>,
    idx: ValueId,
    elem: ScalarType,
}

impl Emit<'_> {
    fn shape(&mut self, s: &Shape, lane: i64) -> ValueId {
        match s {
            Shape::Load { arr, base } => {
                let off = self.b.func().const_i64(base + lane);
                let idx = self.b.add(self.idx, off);
                let p = self.b.gep(self.inputs[*arr], idx, self.elem.bytes());
                self.b.load(Type::Scalar(self.elem), p)
            }
            Shape::Const(c) => {
                if self.elem.is_float() {
                    self.b.func().const_float(self.elem, *c as f64)
                } else {
                    self.b.func().const_int(self.elem, *c)
                }
            }
            Shape::Bin { op, lhs, rhs, swap_mask } => {
                let l = self.shape(lhs, lane);
                let r = self.shape(rhs, lane);
                let swapped = lane < 64 && (swap_mask >> lane) & 1 == 1;
                if swapped {
                    self.b.binop(*op, r, l)
                } else {
                    self.b.binop(*op, l, r)
                }
            }
            Shape::Select { pred, a, b, t, e } => {
                let av = self.shape(a, lane);
                let bv = self.shape(b, lane);
                let tv = self.shape(t, lane);
                let ev = self.shape(e, lane);
                let cond = if self.elem.is_float() {
                    use lslp_ir::FloatPred::*;
                    let p = [Oeq, One, Olt, Ole, Ogt, Oge][*pred as usize % 6];
                    self.b.fcmp(p, av, bv)
                } else {
                    use lslp_ir::IntPred::*;
                    let p = [Eq, Ne, Slt, Sle, Sgt, Sge][*pred as usize % 6];
                    self.b.icmp(p, av, bv)
                };
                self.b.select(cond, tv, ev)
            }
            Shape::NarrowRoundtrip { inner } => {
                let v = self.shape(inner, lane);
                if self.elem.is_float() {
                    let narrow = self.b.cast(Opcode::Fptrunc, v, Type::Scalar(ScalarType::F32));
                    self.b.cast(Opcode::Fpext, narrow, Type::Scalar(ScalarType::F64))
                } else {
                    let narrow = self.b.cast(Opcode::Trunc, v, Type::Scalar(ScalarType::I32));
                    self.b.cast(Opcode::Sext, narrow, Type::Scalar(ScalarType::I64))
                }
            }
        }
    }
}

/// Generate one function from the configuration.
pub fn generate(cfg: &GenConfig) -> GeneratedProgram {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let elem = if cfg.int { ScalarType::I64 } else { ScalarType::F64 };
    let mut f = Function::new(format!("gen_{}", cfg.seed));
    let out = f.add_param("OUT", Type::PTR);
    let inputs: Vec<ValueId> =
        (0..cfg.arrays.max(1)).map(|k| f.add_param(format!("IN{k}"), Type::PTR)).collect();
    let idx = f.add_param("i", Type::I64);

    let mut max_idx = 0i64;
    for g in 0..cfg.groups {
        let shape = gen_shape(&mut rng, cfg, cfg.depth);
        max_idx = max_idx.max(max_load_index(&shape) + cfg.lanes as i64);
        // Occasionally emit the group's statements in reverse address
        // order: seed collection sorts lanes by address, so lane 0 then
        // sits *later* in the body — the shape that stresses hoist/sink
        // dominance in scheduling and codegen.
        let reversed = rng.gen_bool(0.25);
        let lane_order: Vec<i64> = if reversed {
            (0..cfg.lanes as i64).rev().collect()
        } else {
            (0..cfg.lanes as i64).collect()
        };
        for lane in lane_order {
            let mut e = Emit { b: FunctionBuilder::new(&mut f), inputs: inputs.clone(), idx, elem };
            let v = e.shape(&shape, lane);
            let out_off = e.b.func().const_i64(g as i64 * cfg.lanes as i64 + lane);
            let oi = e.b.add(idx, out_off);
            let p = e.b.gep(out, oi, elem.bytes());
            e.b.store(v, p);
        }
        max_idx = max_idx.max((g + 1) as i64 * cfg.lanes as i64);
    }

    debug_assert!(lslp_ir::verify_function(&f).is_ok());
    GeneratedProgram {
        function: f,
        elem,
        inputs: cfg.arrays.max(1),
        min_len: (max_idx + 16) as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig { seed: 42, ..GenConfig::default() };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(lslp_ir::print_function(&a.function), lslp_ir::print_function(&b.function));
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&GenConfig { seed: 1, ..GenConfig::default() });
        let b = generate(&GenConfig { seed: 2, ..GenConfig::default() });
        assert_ne!(lslp_ir::print_function(&a.function), lslp_ir::print_function(&b.function));
    }

    #[test]
    fn generated_programs_verify() {
        for seed in 0..50 {
            for int in [true, false] {
                let cfg = GenConfig { seed, int, depth: 4, ..GenConfig::default() };
                let p = generate(&cfg);
                lslp_ir::verify_function(&p.function)
                    .unwrap_or_else(|e| panic!("seed {seed} int {int}: {e}"));
            }
        }
    }

    #[test]
    fn lanes_form_store_groups() {
        let p = generate(&GenConfig { seed: 7, groups: 3, lanes: 4, ..GenConfig::default() });
        let stores = p.function.iter_body().filter(|(_, _, i)| i.op == Opcode::Store).count();
        assert_eq!(stores, 12);
    }

    #[test]
    fn zero_swap_prob_is_isomorphic_across_lanes() {
        // With no swapping, lane bodies must be structurally identical
        // (modulo lane offsets), which we approximate by opcode sequences.
        let p = generate(&GenConfig {
            seed: 3,
            groups: 1,
            lanes: 2,
            swap_prob: 0.0,
            ..GenConfig::default()
        });
        let ops: Vec<Opcode> = p.function.iter_body().map(|(_, _, i)| i.op).collect();
        let half = ops.len() / 2;
        assert_eq!(ops[..half], ops[half..]);
    }
}
