//! Synthetic whole-program benchmarks (substitute for Figures 11–12).
//!
//! The paper's Figures 11–12 run LSLP over entire SPEC CPU2006 benchmarks
//! and show that the whole-program effect is small (~1% on 453.povray and
//! 435.gromacs) because LSLP-sensitive regions are rarely hot. We cannot
//! ship SPEC, so each benchmark is modelled as a population of generated
//! straight-line functions: mostly *neutral* ones (isomorphic code that any
//! SLP handles, or unvectorizable code), plus a benchmark-specific fraction
//! of *LSLP-sensitive* ones (commutative operands shuffled across lanes),
//! weighted by a synthetic hotness distribution. This reproduces the
//! dilution effect the figures demonstrate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::generator::{generate, GenConfig, GeneratedProgram};

/// One synthetic whole-program benchmark.
pub struct WholeProgram {
    /// Benchmark name (matching the paper's Figure 11/12 labels).
    pub name: &'static str,
    /// The functions of the "program".
    pub functions: Vec<GeneratedProgram>,
    /// Synthetic hotness weight per function (how often it executes),
    /// Zipf-distributed.
    pub weights: Vec<f64>,
    /// Indices of the LSLP-sensitive functions.
    pub sensitive: Vec<usize>,
    /// How much *non-vectorizable* execution surrounds the straight-line
    /// regions, as a multiple of their `O3` cycle count. Real benchmarks
    /// spend the bulk of their time outside SLP-amenable code, which is why
    /// the paper's whole-program speedups (Fig 12) are ~1% even when
    /// individual regions gain 2×; this factor models that dilution.
    pub background_factor: f64,
}

/// The benchmarks shown in Figures 11–12: `(name, seed, functions,
/// sensitive-fraction, background-factor)`. Fractions are larger and
/// backgrounds smaller for the two benchmarks the paper reports visible
/// gains on (453.povray, 435.gromacs).
pub const BENCHMARKS: &[(&str, u64, usize, f64, f64)] = &[
    ("453.povray", 101, 64, 0.20, 12.0),
    ("435.gromacs", 102, 64, 0.16, 12.0),
    ("454.calculix", 103, 56, 0.08, 30.0),
    ("481.wrf", 104, 72, 0.06, 40.0),
    ("433.milc", 105, 40, 0.10, 20.0),
    ("410.bwaves", 108, 32, 0.05, 30.0),
    ("416.gamess", 109, 96, 0.04, 60.0),
];

/// Synthesize a benchmark by name.
///
/// # Panics
///
/// Panics if `name` is not one of [`BENCHMARKS`].
pub fn synthesize(name: &str) -> WholeProgram {
    let &(name, seed, n_funcs, frac, background_factor) = BENCHMARKS
        .iter()
        .find(|(n, ..)| *n == name)
        .unwrap_or_else(|| panic!("unknown benchmark `{name}`"));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut functions = Vec::with_capacity(n_funcs);
    let mut weights = Vec::with_capacity(n_funcs);
    let mut sensitive = Vec::new();
    let n_sensitive = ((n_funcs as f64) * frac).round() as usize;
    for k in 0..n_funcs {
        let is_sensitive = k < n_sensitive;
        let cfg = GenConfig {
            seed: seed * 10_000 + k as u64,
            groups: rng.gen_range(1..4),
            lanes: if rng.gen_bool(0.3) { 4 } else { 2 },
            depth: rng.gen_range(2..5),
            int: rng.gen_bool(0.5),
            // Sensitive functions have their commutative operands shuffled
            // across lanes; neutral ones are isomorphic as written.
            swap_prob: if is_sensitive { 0.85 } else { 0.0 },
            arrays: rng.gen_range(2..5),
        };
        if is_sensitive {
            sensitive.push(k);
        }
        functions.push(generate(&cfg));
        // Zipf-ish hotness: a few hot functions, a long cold tail.
        weights.push(1.0 / (1.0 + k as f64).powf(1.2));
    }
    // Shuffle hotness so sensitivity and hotness are uncorrelated, as in
    // real programs (this is what dilutes the whole-program effect).
    for k in (1..weights.len()).rev() {
        let j = rng.gen_range(0..=k);
        weights.swap(k, j);
    }
    WholeProgram { name, functions, weights, sensitive, background_factor }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_synthesize() {
        for &(name, _, n, ..) in BENCHMARKS {
            let wp = synthesize(name);
            assert_eq!(wp.functions.len(), n);
            assert_eq!(wp.weights.len(), n);
            assert!(!wp.sensitive.is_empty(), "{name} needs sensitive functions");
            for f in &wp.functions {
                lslp_ir::verify_function(&f.function).unwrap();
            }
        }
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = synthesize("433.milc");
        let b = synthesize("433.milc");
        assert_eq!(a.weights, b.weights);
        for (x, y) in a.functions.iter().zip(&b.functions) {
            assert_eq!(lslp_ir::print_function(&x.function), lslp_ir::print_function(&y.function));
        }
    }

    #[test]
    fn sensitive_fraction_matches_spec() {
        let wp = synthesize("453.povray");
        assert_eq!(wp.sensitive.len(), 13); // 20% of 64, rounded
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_name_panics() {
        let _ = synthesize("400.perlbench");
    }
}
