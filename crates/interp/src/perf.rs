//! The cost-weighted performance simulator.
//!
//! Substitutes for the paper's real-machine measurements: each executed
//! instruction contributes its TTI cost (from [`CostModel`]), so "cycles"
//! here are abstract throughput units. Speedups are ratios of these counts
//! between configurations, which tracks the static-cost story of the paper
//! while accounting for dynamic execution (how often each path runs).
//!
//! The simulator prices instructions with the *same* per-target cost
//! tables the vectorizer optimizes against (register splitting for
//! over-wide bundles, per-type factors like half-rate `f64` SIMD), so
//! simulated speedups are per-target: pass the [`TargetSpec`](CostModel)
//! the code was compiled for.

use lslp_ir::{Function, Inst, Opcode};
use lslp_target::CostModel;

use crate::exec::{run_function, run_function_costed, ExecError, ExecStats};
use crate::memory::{Memory, Value};

/// Result of a simulated run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PerfResult {
    /// Abstract cycle count (sum of per-instruction TTI costs).
    pub cycles: i64,
    /// Raw execution statistics.
    pub stats: ExecStats,
}

/// The simulated cost of one *executed* instruction.
fn inst_cycles(f: &Function, inst: &Inst, tm: &CostModel) -> i64 {
    let ty = match inst.op {
        Opcode::Store => f.ty(inst.args[0]),
        _ => inst.ty,
    };
    match inst.op {
        Opcode::InsertElement => tm.insert_cost,
        Opcode::ExtractElement => tm.extract_cost,
        Opcode::ShuffleVector => tm.shuffle_cost,
        op => {
            if ty.is_vector() {
                tm.vector_cost(op, ty.elem().unwrap(), ty.lanes())
            } else {
                tm.scalar_cost(op)
            }
        }
    }
}

/// The static per-run cycle estimate of a function body (every instruction
/// executes exactly once in straight-line code).
pub fn body_cycles(f: &Function, tm: &CostModel) -> i64 {
    f.iter_body().map(|(_, _, inst)| inst_cycles(f, inst, tm)).sum()
}

/// Execute the function once and return cost-weighted cycles.
///
/// # Errors
///
/// Propagates any [`ExecError`] from the interpreter.
pub fn measure_cycles(
    f: &Function,
    args: &[Value],
    mem: &mut Memory,
    tm: &CostModel,
) -> Result<PerfResult, ExecError> {
    if f.cfg().is_some() {
        // CFG code: the dynamic instruction stream differs from the static
        // body (loop bodies run `trip` times; only one branch arm runs), so
        // charge each instruction as it executes.
        let (cycles, stats) =
            run_function_costed(f, args, mem, Some(&|f, i| inst_cycles(f, i, tm)), &mut |_, _| {})?;
        return Ok(PerfResult { cycles, stats });
    }
    // Straight-line code: every body instruction executes exactly once, so
    // the dynamic cycle count equals the static body estimate. Running the
    // interpreter both validates the code and yields the stats.
    let stats = run_function(f, args, mem)?;
    Ok(PerfResult { cycles: body_cycles(f, tm), stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lslp_ir::parse_function;

    #[test]
    fn vector_code_is_cheaper_than_scalar() {
        let scalar = parse_function(
            "func @s(%A: ptr) {
               %p1 = gep %A, 1, 8
               %a = load i64, %A
               %b = load i64, %p1
               %x = add i64 %a, %a
               %y = add i64 %b, %b
               store i64 %x, %A
               store i64 %y, %p1
             }",
        )
        .unwrap();
        let vector = parse_function(
            "func @v(%A: ptr) {
               %v = load <2 x i64>, %A
               %w = add <2 x i64> %v, %v
               store <2 x i64> %w, %A
             }",
        )
        .unwrap();
        let tm = CostModel::default();
        let mut mem = Memory::new();
        let a = mem.alloc_i64("A", &[3, 4]);
        let ps = measure_cycles(&scalar, std::slice::from_ref(&a), &mut mem, &tm).unwrap();
        let sres = (mem.read_i64("A", 0), mem.read_i64("A", 1));
        let a = mem.alloc_i64("A", &[3, 4]);
        let pv = measure_cycles(&vector, &[a], &mut mem, &tm).unwrap();
        let vres = (mem.read_i64("A", 0), mem.read_i64("A", 1));
        assert_eq!(sres, vres, "same semantics");
        assert!(pv.cycles < ps.cycles, "vector {} < scalar {}", pv.cycles, ps.cycles);
        // 6 unit ops + free gep vs 3 unit ops.
        assert_eq!(ps.cycles, 6);
        assert_eq!(pv.cycles, 3);
    }

    #[test]
    fn inserts_and_extracts_cost_cycles() {
        let f = parse_function(
            "func @g(%A: ptr) {
               %v = load <2 x i64>, %A
               %e = extractelement <2 x i64> %v, 0
               %w = insertelement <2 x i64> %v, %e, 1
               %s = shufflevector <2 x i64> %w, %w, [1, 0]
               store <2 x i64> %s, %A
             }",
        )
        .unwrap();
        let tm = CostModel::default();
        let mut mem = Memory::new();
        let a = mem.alloc_i64("A", &[1, 2]);
        let p = measure_cycles(&f, &[a], &mut mem, &tm).unwrap();
        assert_eq!(p.cycles, 5); // load 1 + extract 1 + insert 1 + shuffle 1 + store 1
    }

    #[test]
    fn division_dominates() {
        let f = parse_function(
            "func @d(%A: ptr) {
               %a = load i64, %A
               %q = sdiv i64 %a, 3
               store i64 %q, %A
             }",
        )
        .unwrap();
        let tm = CostModel::default();
        let mut mem = Memory::new();
        let a = mem.alloc_i64("A", &[42]);
        let p = measure_cycles(&f, &[a], &mut mem, &tm).unwrap();
        assert_eq!(p.cycles, 1 + tm.div_cost + 1);
        assert_eq!(mem.read_i64("A", 0), Some(14));
    }
}
