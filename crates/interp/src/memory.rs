//! The interpreter's value domain and flat byte-addressed memory.

use std::collections::HashMap;
use std::fmt;

use lslp_ir::ScalarType;

/// A runtime value.
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    /// Any integer type (canonicalized by sign-extension from its width).
    Int(i64),
    /// Any float type (f32 values are stored widened).
    Float(f64),
    /// A pointer into a [`Memory`] buffer.
    Ptr {
        /// Buffer handle.
        buf: u32,
        /// Byte offset (may be temporarily out of bounds; checked on use).
        off: i64,
    },
    /// A vector of scalar values.
    Vec(Vec<Value>),
}

impl Value {
    /// The integer payload.
    ///
    /// # Panics
    ///
    /// Panics when the value is not an `Int`.
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            other => panic!("expected Int, got {other:?}"),
        }
    }

    /// The float payload.
    ///
    /// # Panics
    ///
    /// Panics when the value is not a `Float`.
    pub fn as_float(&self) -> f64 {
        match self {
            Value::Float(v) => *v,
            other => panic!("expected Float, got {other:?}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v:?}"),
            Value::Ptr { buf, off } => write!(f, "ptr({buf}+{off})"),
            Value::Vec(vs) => {
                f.write_str("<")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str(">")
            }
        }
    }
}

struct Buffer {
    data: Vec<u8>,
}

/// A set of named byte buffers modelling the arrays a kernel works on.
#[derive(Default)]
pub struct Memory {
    bufs: Vec<Buffer>,
    names: HashMap<String, u32>,
}

impl Memory {
    /// An empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Allocate a zero-filled buffer of `bytes` bytes; returns its base
    /// pointer. Reuses (and resizes) an existing buffer with the same name.
    pub fn alloc(&mut self, name: &str, bytes: usize) -> Value {
        if let Some(&b) = self.names.get(name) {
            self.bufs[b as usize].data = vec![0; bytes];
            return Value::Ptr { buf: b, off: 0 };
        }
        let b = self.bufs.len() as u32;
        self.bufs.push(Buffer { data: vec![0; bytes] });
        self.names.insert(name.to_string(), b);
        Value::Ptr { buf: b, off: 0 }
    }

    /// Allocate and initialize an `i64` array.
    pub fn alloc_i64(&mut self, name: &str, init: &[i64]) -> Value {
        let p = self.alloc(name, init.len() * 8);
        for (i, &v) in init.iter().enumerate() {
            self.write_scalar(&p, (i * 8) as i64, ScalarType::I64, Value::Int(v)).unwrap();
        }
        p
    }

    /// Allocate and initialize an `f64` array.
    pub fn alloc_f64(&mut self, name: &str, init: &[f64]) -> Value {
        let p = self.alloc(name, init.len() * 8);
        for (i, &v) in init.iter().enumerate() {
            self.write_scalar(&p, (i * 8) as i64, ScalarType::F64, Value::Float(v)).unwrap();
        }
        p
    }

    /// Allocate and initialize an `f32` array.
    pub fn alloc_f32(&mut self, name: &str, init: &[f32]) -> Value {
        let p = self.alloc(name, init.len() * 4);
        for (i, &v) in init.iter().enumerate() {
            self.write_scalar(&p, (i * 4) as i64, ScalarType::F32, Value::Float(v as f64)).unwrap();
        }
        p
    }

    /// Base pointer of a named buffer.
    pub fn ptr(&self, name: &str) -> Option<Value> {
        self.names.get(name).map(|&b| Value::Ptr { buf: b, off: 0 })
    }

    /// Read element `idx` of a named `i64` array.
    pub fn read_i64(&self, name: &str, idx: usize) -> Option<i64> {
        let &b = self.names.get(name)?;
        let data = &self.bufs[b as usize].data;
        let at = idx * 8;
        let bytes = data.get(at..at + 8)?;
        Some(i64::from_le_bytes(bytes.try_into().unwrap()))
    }

    /// Read element `idx` of a named `f64` array.
    pub fn read_f64(&self, name: &str, idx: usize) -> Option<f64> {
        self.read_i64(name, idx).map(|bits| f64::from_bits(bits as u64))
    }

    /// Raw contents of a named buffer (for whole-state comparisons).
    pub fn bytes(&self, name: &str) -> Option<&[u8]> {
        let &b = self.names.get(name)?;
        Some(&self.bufs[b as usize].data)
    }

    /// All buffer names, sorted (for deterministic state comparison).
    pub fn buffer_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.names.keys().map(String::as_str).collect();
        names.sort();
        names
    }

    fn slice(&self, ptr: &Value, extra: i64, len: usize) -> Result<(u32, usize), String> {
        let Value::Ptr { buf, off } = ptr else {
            return Err(format!("expected pointer, got {ptr}"));
        };
        let at = off + extra;
        if at < 0 {
            return Err(format!("negative address {at}"));
        }
        let data = &self.bufs.get(*buf as usize).ok_or("dangling buffer")?.data;
        let at = at as usize;
        if at + len > data.len() {
            return Err(format!("out-of-bounds access at {at}+{len} of {}", data.len()));
        }
        Ok((*buf, at))
    }

    /// Read one scalar of type `ty` at `ptr + extra` bytes.
    pub fn read_scalar(&self, ptr: &Value, extra: i64, ty: ScalarType) -> Result<Value, String> {
        let (buf, at) = self.slice(ptr, extra, ty.bytes() as usize)?;
        let data = &self.bufs[buf as usize].data;
        let v = match ty {
            ScalarType::I8 => Value::Int(data[at] as i8 as i64),
            ScalarType::I16 => {
                Value::Int(i16::from_le_bytes(data[at..at + 2].try_into().unwrap()) as i64)
            }
            ScalarType::I32 => {
                Value::Int(i32::from_le_bytes(data[at..at + 4].try_into().unwrap()) as i64)
            }
            ScalarType::I64 => Value::Int(i64::from_le_bytes(data[at..at + 8].try_into().unwrap())),
            ScalarType::F32 => {
                Value::Float(f32::from_le_bytes(data[at..at + 4].try_into().unwrap()) as f64)
            }
            ScalarType::F64 => {
                Value::Float(f64::from_le_bytes(data[at..at + 8].try_into().unwrap()))
            }
            ScalarType::Ptr => return Err("pointer loads are not modelled".into()),
        };
        Ok(v)
    }

    /// Write one scalar of type `ty` at `ptr + extra` bytes.
    pub fn write_scalar(
        &mut self,
        ptr: &Value,
        extra: i64,
        ty: ScalarType,
        v: Value,
    ) -> Result<(), String> {
        let (buf, at) = self.slice(ptr, extra, ty.bytes() as usize)?;
        let data = &mut self.bufs[buf as usize].data;
        match (ty, v) {
            (ScalarType::I8, Value::Int(x)) => data[at] = x as u8,
            (ScalarType::I16, Value::Int(x)) => {
                data[at..at + 2].copy_from_slice(&(x as i16).to_le_bytes())
            }
            (ScalarType::I32, Value::Int(x)) => {
                data[at..at + 4].copy_from_slice(&(x as i32).to_le_bytes())
            }
            (ScalarType::I64, Value::Int(x)) => data[at..at + 8].copy_from_slice(&x.to_le_bytes()),
            (ScalarType::F32, Value::Float(x)) => {
                data[at..at + 4].copy_from_slice(&(x as f32).to_le_bytes())
            }
            (ScalarType::F64, Value::Float(x)) => {
                data[at..at + 8].copy_from_slice(&x.to_le_bytes())
            }
            (ty, v) => return Err(format!("cannot store {v} as {ty}")),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut mem = Memory::new();
        let p = mem.alloc("buf", 64);
        for (ty, v) in [
            (ScalarType::I8, Value::Int(-5)),
            (ScalarType::I16, Value::Int(-1234)),
            (ScalarType::I32, Value::Int(123456)),
            (ScalarType::I64, Value::Int(i64::MIN + 1)),
            (ScalarType::F32, Value::Float(0.5)),
            (ScalarType::F64, Value::Float(0.1)),
        ] {
            mem.write_scalar(&p, 8, ty, v.clone()).unwrap();
            assert_eq!(mem.read_scalar(&p, 8, ty).unwrap(), v, "{ty}");
        }
    }

    #[test]
    fn bounds_are_enforced() {
        let mut mem = Memory::new();
        let p = mem.alloc("buf", 8);
        assert!(mem.read_scalar(&p, 1, ScalarType::I64).is_err());
        assert!(mem.read_scalar(&p, -1, ScalarType::I8).is_err());
        assert!(mem.write_scalar(&p, 8, ScalarType::I8, Value::Int(0)).is_err());
        assert!(mem.write_scalar(&p, 7, ScalarType::I8, Value::Int(0)).is_ok());
    }

    #[test]
    fn named_helpers() {
        let mut mem = Memory::new();
        mem.alloc_i64("A", &[1, 2, 3]);
        mem.alloc_f64("B", &[0.5]);
        assert_eq!(mem.read_i64("A", 2), Some(3));
        assert_eq!(mem.read_f64("B", 0), Some(0.5));
        assert_eq!(mem.read_i64("A", 3), None);
        assert!(mem.ptr("A").is_some());
        assert!(mem.ptr("Z").is_none());
        assert_eq!(mem.buffer_names(), vec!["A", "B"]);
    }

    #[test]
    fn realloc_resets_contents() {
        let mut mem = Memory::new();
        mem.alloc_i64("A", &[7]);
        let p = mem.alloc("A", 16);
        assert_eq!(mem.read_i64("A", 0), Some(0));
        assert_eq!(p, Value::Ptr { buf: 0, off: 0 });
    }
}
