//! The IR interpreter.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use lslp_ir::{
    BlockId, Constant, FloatPred, Function, Inst, InstAttr, IntPred, Opcode, ScalarType,
    Terminator, Type, ValueData, ValueId,
};

use crate::memory::{Memory, Value};

/// Per-instruction cost hook for [`run_function_costed`]: maps one
/// executed instruction to its cycle price.
pub type InstCostFn<'a> = &'a dyn Fn(&Function, &Inst) -> i64;

/// A runtime failure: division by zero, out-of-bounds access, missing
/// argument, or malformed IR that slipped past the verifier.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExecError {
    /// What went wrong.
    pub message: String,
}

impl ExecError {
    fn new(message: impl Into<String>) -> ExecError {
        ExecError { message: message.into() }
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "exec error: {}", self.message)
    }
}

impl Error for ExecError {}

/// Execution statistics of one run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ExecStats {
    /// Instructions executed.
    pub insts: u64,
    /// Instructions executed that produced or consumed vector values.
    pub vector_insts: u64,
}

fn sext(v: i64, bits: u32) -> i64 {
    if bits >= 64 {
        v
    } else {
        (v << (64 - bits)) >> (64 - bits)
    }
}

fn zext(v: i64, bits: u32) -> u64 {
    if bits >= 64 {
        v as u64
    } else {
        (v as u64) & ((1u64 << bits) - 1)
    }
}

fn int_binop(op: Opcode, bits: u32, a: i64, b: i64) -> Result<i64, ExecError> {
    let shift_mask = (bits - 1) as i64;
    let r = match op {
        Opcode::Add => a.wrapping_add(b),
        Opcode::Sub => a.wrapping_sub(b),
        Opcode::Mul => a.wrapping_mul(b),
        Opcode::SDiv => {
            if b == 0 {
                return Err(ExecError::new("division by zero"));
            }
            a.wrapping_div(b)
        }
        Opcode::UDiv => {
            if b == 0 {
                return Err(ExecError::new("division by zero"));
            }
            (zext(a, bits) / zext(b, bits)) as i64
        }
        Opcode::SRem => {
            if b == 0 {
                return Err(ExecError::new("remainder by zero"));
            }
            a.wrapping_rem(b)
        }
        Opcode::URem => {
            if b == 0 {
                return Err(ExecError::new("remainder by zero"));
            }
            (zext(a, bits) % zext(b, bits)) as i64
        }
        Opcode::And => a & b,
        Opcode::Or => a | b,
        Opcode::Xor => a ^ b,
        Opcode::Shl => a.wrapping_shl((b & shift_mask) as u32),
        Opcode::LShr => (zext(a, bits) >> (b & shift_mask)) as i64,
        Opcode::AShr => sext(a, bits) >> (b & shift_mask),
        Opcode::SMin => a.min(b),
        Opcode::SMax => a.max(b),
        other => return Err(ExecError::new(format!("{other} is not an integer op"))),
    };
    Ok(sext(r, bits))
}

fn float_binop(op: Opcode, a: f64, b: f64) -> Result<f64, ExecError> {
    Ok(match op {
        Opcode::FAdd => a + b,
        Opcode::FSub => a - b,
        Opcode::FMul => a * b,
        Opcode::FDiv => a / b,
        Opcode::FMin => a.min(b),
        Opcode::FMax => a.max(b),
        other => return Err(ExecError::new(format!("{other} is not a float op"))),
    })
}

fn scalar_binop(op: Opcode, ty: ScalarType, a: &Value, b: &Value) -> Result<Value, ExecError> {
    if op.is_float_op() {
        let r = float_binop(op, a.as_float(), b.as_float())?;
        // Round through f32 when the type demands it.
        Ok(Value::Float(if ty == ScalarType::F32 { r as f32 as f64 } else { r }))
    } else {
        Ok(Value::Int(int_binop(op, ty.bits(), a.as_int(), b.as_int())?))
    }
}

fn icmp(pred: IntPred, bits: u32, a: i64, b: i64) -> bool {
    let (ua, ub) = (zext(a, bits), zext(b, bits));
    match pred {
        IntPred::Eq => a == b,
        IntPred::Ne => a != b,
        IntPred::Slt => a < b,
        IntPred::Sle => a <= b,
        IntPred::Sgt => a > b,
        IntPred::Sge => a >= b,
        IntPred::Ult => ua < ub,
        IntPred::Ule => ua <= ub,
        IntPred::Ugt => ua > ub,
        IntPred::Uge => ua >= ub,
    }
}

fn fcmp(pred: FloatPred, a: f64, b: f64) -> bool {
    match pred {
        FloatPred::Oeq => a == b,
        FloatPred::One => a != b && !a.is_nan() && !b.is_nan(),
        FloatPred::Olt => a < b,
        FloatPred::Ole => a <= b,
        FloatPred::Ogt => a > b,
        FloatPred::Oge => a >= b,
    }
}

/// One lane of a conversion. Float→int saturates (Rust `as` semantics;
/// LLVM leaves overflow undefined, so any total choice is conforming).
fn cast_lane(op: Opcode, src: ScalarType, dst: ScalarType, v: Value) -> Result<Value, ExecError> {
    Ok(match op {
        Opcode::Sext => Value::Int(v.as_int()),
        Opcode::Zext => Value::Int(zext(v.as_int(), src.bits()) as i64),
        Opcode::Trunc => Value::Int(sext(v.as_int(), dst.bits())),
        Opcode::Fptosi => {
            let f = v.as_float();
            let wide = f as i64;
            Value::Int(sext(
                wide.clamp(
                    -(1i64 << (dst.bits().min(63) - 1)),
                    (1i64 << (dst.bits().min(63) - 1)) - 1,
                ),
                dst.bits(),
            ))
        }
        Opcode::Sitofp => {
            let x = v.as_int() as f64;
            Value::Float(if dst == ScalarType::F32 { x as f32 as f64 } else { x })
        }
        Opcode::Fpext => Value::Float(v.as_float()),
        Opcode::Fptrunc => Value::Float(v.as_float() as f32 as f64),
        other => return Err(ExecError::new(format!("{other} is not a cast"))),
    })
}

fn const_value(c: &Constant) -> Value {
    match c {
        Constant::Int { value, .. } => Value::Int(*value),
        Constant::Float { .. } => Value::Float(c.as_f64().unwrap()),
        Constant::Vector { lanes, .. } => Value::Vec(lanes.iter().map(const_value).collect()),
    }
}

/// Split a value into lanes (scalars become one lane).
fn lanes_of(v: &Value) -> Vec<Value> {
    match v {
        Value::Vec(vs) => vs.clone(),
        other => vec![other.clone()],
    }
}

fn rewrap(ty: Type, mut lanes: Vec<Value>) -> Value {
    if ty.is_vector() {
        Value::Vec(lanes)
    } else {
        lanes.pop().expect("scalar has one lane")
    }
}

struct Interp<'a> {
    f: &'a Function,
    mem: &'a mut Memory,
    env: HashMap<ValueId, Value>,
    stats: ExecStats,
    /// Optional per-instruction cost hook; accumulated into `cycles`.
    /// Used by the performance simulator for CFG functions, where the
    /// dynamic instruction stream differs from the static body.
    cost: Option<InstCostFn<'a>>,
    cycles: i64,
}

impl<'a> Interp<'a> {
    fn value(&self, id: ValueId) -> Result<Value, ExecError> {
        if let Some(v) = self.env.get(&id) {
            return Ok(v.clone());
        }
        match self.f.value(id) {
            ValueData::Const(c) => Ok(const_value(self.f.const_value(*c))),
            _ => Err(ExecError::new(format!("value {id} used before definition"))),
        }
    }

    fn exec_inst(&mut self, id: ValueId, inst: &Inst) -> Result<(), ExecError> {
        self.stats.insts += 1;
        if let Some(cost) = self.cost {
            self.cycles += cost(self.f, inst);
        }
        let is_vec = inst.ty.is_vector() || inst.args.iter().any(|&a| self.f.ty(a).is_vector());
        if is_vec {
            self.stats.vector_insts += 1;
        }
        let arg = |s: &Self, i: usize| s.value(inst.args[i]);
        let result: Option<Value> = match inst.op {
            op if op.is_binary() => {
                let elem = inst.ty.elem().expect("binary on data type");
                let a = lanes_of(&arg(self, 0)?);
                let b = lanes_of(&arg(self, 1)?);
                let lanes = a
                    .iter()
                    .zip(&b)
                    .map(|(x, y)| scalar_binop(op, elem, x, y))
                    .collect::<Result<Vec<_>, _>>()?;
                Some(rewrap(inst.ty, lanes))
            }
            Opcode::ICmp => {
                let InstAttr::IntPred(p) = inst.attr else { unreachable!() };
                let bits = self.f.ty(inst.args[0]).elem().unwrap().bits();
                let a = lanes_of(&arg(self, 0)?);
                let b = lanes_of(&arg(self, 1)?);
                let lanes = a
                    .iter()
                    .zip(&b)
                    .map(|(x, y)| Value::Int(icmp(p, bits, x.as_int(), y.as_int()) as i64))
                    .collect();
                Some(rewrap(inst.ty, lanes))
            }
            Opcode::FCmp => {
                let InstAttr::FloatPred(p) = inst.attr else { unreachable!() };
                let a = lanes_of(&arg(self, 0)?);
                let b = lanes_of(&arg(self, 1)?);
                let lanes = a
                    .iter()
                    .zip(&b)
                    .map(|(x, y)| Value::Int(fcmp(p, x.as_float(), y.as_float()) as i64))
                    .collect();
                Some(rewrap(inst.ty, lanes))
            }
            Opcode::Select => {
                let c = lanes_of(&arg(self, 0)?);
                let a = lanes_of(&arg(self, 1)?);
                let b = lanes_of(&arg(self, 2)?);
                let lanes = c
                    .iter()
                    .zip(a.iter().zip(&b))
                    .map(|(c, (x, y))| if c.as_int() != 0 { x.clone() } else { y.clone() })
                    .collect();
                Some(rewrap(inst.ty, lanes))
            }
            Opcode::Gep => {
                let InstAttr::ElemBytes(eb) = inst.attr else { unreachable!() };
                let base = arg(self, 0)?;
                let idx = arg(self, 1)?.as_int();
                let Value::Ptr { buf, off } = base else {
                    return Err(ExecError::new("gep of non-pointer"));
                };
                Some(Value::Ptr { buf, off: off.wrapping_add(idx.wrapping_mul(eb as i64)) })
            }
            Opcode::Load => {
                let ptr = arg(self, 0)?;
                let elem = inst.ty.elem().expect("load of data");
                let n = inst.ty.lanes();
                let mut lanes = Vec::with_capacity(n as usize);
                for l in 0..n {
                    lanes.push(
                        self.mem
                            .read_scalar(&ptr, (l * elem.bytes()) as i64, elem)
                            .map_err(ExecError::new)?,
                    );
                }
                Some(rewrap(inst.ty, lanes))
            }
            Opcode::Store => {
                let val = arg(self, 0)?;
                let ptr = arg(self, 1)?;
                let vty = self.f.ty(inst.args[0]);
                let elem = vty.elem().expect("store of data");
                for (l, lane) in lanes_of(&val).into_iter().enumerate() {
                    self.mem
                        .write_scalar(&ptr, (l as u32 * elem.bytes()) as i64, elem, lane)
                        .map_err(ExecError::new)?;
                }
                None
            }
            Opcode::InsertElement => {
                let mut lanes = lanes_of(&arg(self, 0)?);
                let v = arg(self, 1)?;
                let idx = arg(self, 2)?.as_int() as usize;
                if idx >= lanes.len() {
                    return Err(ExecError::new("insertelement lane out of range"));
                }
                lanes[idx] = v;
                Some(Value::Vec(lanes))
            }
            Opcode::ExtractElement => {
                let lanes = lanes_of(&arg(self, 0)?);
                let idx = arg(self, 1)?.as_int() as usize;
                Some(
                    lanes
                        .get(idx)
                        .cloned()
                        .ok_or_else(|| ExecError::new("extractelement lane out of range"))?,
                )
            }
            Opcode::ShuffleVector => {
                let InstAttr::Mask(mask) = &inst.attr else { unreachable!() };
                let mut all = lanes_of(&arg(self, 0)?);
                all.extend(lanes_of(&arg(self, 1)?));
                let lanes = mask
                    .iter()
                    .map(|&m| {
                        all.get(m as usize)
                            .cloned()
                            .ok_or_else(|| ExecError::new("shuffle lane out of range"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Some(Value::Vec(lanes))
            }
            op if op.is_cast() => {
                let src_elem = self.f.ty(inst.args[0]).elem().expect("cast source");
                let dst_elem = inst.ty.elem().expect("cast destination");
                let lanes = lanes_of(&arg(self, 0)?)
                    .into_iter()
                    .map(|v| cast_lane(op, src_elem, dst_elem, v))
                    .collect::<Result<Vec<_>, _>>()?;
                Some(rewrap(inst.ty, lanes))
            }
            other => return Err(ExecError::new(format!("cannot execute {other}"))),
        };
        if let Some(v) = result {
            self.env.insert(id, v);
        }
        Ok(())
    }

    // ----- control flow ---------------------------------------------------

    fn exec_block(
        &mut self,
        b: BlockId,
        observe: &mut impl FnMut(ValueId, &Value),
    ) -> Result<(), ExecError> {
        let insts = self.f.cfg().expect("CFG function").block(b).insts().to_vec();
        for id in insts {
            let inst = self.f.inst(id).expect("blocks contain instructions").clone();
            self.exec_inst(id, &inst)?;
            if let Some(v) = self.env.get(&id) {
                observe(id, v);
            }
        }
        Ok(())
    }

    fn eval_args(&self, args: &[ValueId]) -> Result<Vec<Value>, ExecError> {
        args.iter().map(|&a| self.value(a)).collect()
    }

    fn bind_params(&mut self, b: BlockId, vals: Vec<Value>) -> Result<(), ExecError> {
        let params = self.f.cfg().expect("CFG function").block(b).params().to_vec();
        if params.len() != vals.len() {
            return Err(ExecError::new(format!(
                "block {b} expects {} arguments, got {}",
                params.len(),
                vals.len()
            )));
        }
        for (p, v) in params.into_iter().zip(vals) {
            self.env.insert(p, v);
        }
        Ok(())
    }

    fn take_fuel(fuel: &mut u64) -> Result<(), ExecError> {
        if *fuel == 0 {
            return Err(ExecError::new("block transition limit exceeded"));
        }
        *fuel -= 1;
        Ok(())
    }

    /// Run a loop-body region from `start` until its `continue`, returning
    /// the evaluated carried values.
    fn run_region(
        &mut self,
        start: BlockId,
        fuel: &mut u64,
        observe: &mut impl FnMut(ValueId, &Value),
    ) -> Result<Vec<Value>, ExecError> {
        let mut cur = start;
        loop {
            Self::take_fuel(fuel)?;
            self.exec_block(cur, observe)?;
            let term = self.f.cfg().expect("CFG function").block(cur).term().clone();
            match term {
                Terminator::Continue { args } => return self.eval_args(&args),
                Terminator::Jump { target, args } => {
                    let vals = self.eval_args(&args)?;
                    self.bind_params(target, vals)?;
                    cur = target;
                }
                Terminator::Br { cond, then_to, then_args, else_to, else_args } => {
                    let taken = self.value(cond)?.as_int() != 0;
                    let (target, args) =
                        if taken { (then_to, then_args) } else { (else_to, else_args) };
                    let vals = self.eval_args(&args)?;
                    self.bind_params(target, vals)?;
                    cur = target;
                }
                Terminator::Ret => {
                    return Err(ExecError::new("ret inside a loop body"));
                }
                Terminator::Loop { .. } => {
                    return Err(ExecError::new("nested counted loops are not supported"));
                }
            }
        }
    }

    /// The block driver for CFG functions: execute from the entry block
    /// until `ret`, running counted-loop regions `trip` times each.
    fn run_cfg(&mut self, observe: &mut impl FnMut(ValueId, &Value)) -> Result<(), ExecError> {
        // Backstop against unstructured jump cycles (the verifier does not
        // forbid them); generous compared to any real kernel.
        let mut fuel: u64 = 100_000;
        let mut cur = self.f.cfg().expect("CFG function").entry();
        loop {
            Self::take_fuel(&mut fuel)?;
            self.exec_block(cur, observe)?;
            let term = self.f.cfg().expect("CFG function").block(cur).term().clone();
            match term {
                Terminator::Ret => return Ok(()),
                Terminator::Jump { target, args } => {
                    let vals = self.eval_args(&args)?;
                    self.bind_params(target, vals)?;
                    cur = target;
                }
                Terminator::Br { cond, then_to, then_args, else_to, else_args } => {
                    let taken = self.value(cond)?.as_int() != 0;
                    let (target, args) =
                        if taken { (then_to, then_args) } else { (else_to, else_args) };
                    let vals = self.eval_args(&args)?;
                    self.bind_params(target, vals)?;
                    cur = target;
                }
                Terminator::Loop { trip, body, init, exit } => {
                    let trip = self.value(trip)?.as_int();
                    if trip < 1 {
                        return Err(ExecError::new("loop trip count must be ≥ 1"));
                    }
                    let mut carried = self.eval_args(&init)?;
                    for k in 0..trip {
                        let mut vals = Vec::with_capacity(carried.len() + 1);
                        vals.push(Value::Int(k));
                        vals.extend(carried.iter().cloned());
                        self.bind_params(body, vals)?;
                        carried = self.run_region(body, &mut fuel, observe)?;
                    }
                    self.bind_params(exit, carried)?;
                    cur = exit;
                }
                Terminator::Continue { .. } => {
                    return Err(ExecError::new("continue outside a loop region"));
                }
            }
        }
    }
}

/// Execute a function against `mem` with the given argument values.
///
/// # Errors
///
/// Returns [`ExecError`] on division by zero, out-of-bounds memory access,
/// argument count/type mismatch, or malformed IR.
pub fn run_function(
    f: &Function,
    args: &[Value],
    mem: &mut Memory,
) -> Result<ExecStats, ExecError> {
    run_function_traced(f, args, mem, |_, _| {})
}

/// Like [`run_function`], additionally invoking `observe` with every
/// instruction's result value as it executes (void instructions are
/// skipped). Backs `lslpc --trace` and execution-debugging workflows.
///
/// # Errors
///
/// Same failure modes as [`run_function`].
pub fn run_function_traced(
    f: &Function,
    args: &[Value],
    mem: &mut Memory,
    mut observe: impl FnMut(ValueId, &Value),
) -> Result<ExecStats, ExecError> {
    if args.len() != f.params().len() {
        return Err(ExecError::new(format!(
            "@{} expects {} arguments, got {}",
            f.name(),
            f.params().len(),
            args.len()
        )));
    }
    let (_, stats) = run_function_costed(f, args, mem, None, &mut observe)?;
    Ok(stats)
}

/// Like [`run_function`], additionally charging each *executed*
/// instruction via `cost` and returning the accumulated total. For CFG
/// functions this prices the dynamic instruction stream (loop bodies
/// execute `trip` times, only one branch arm runs); for straight-line
/// bodies it matches the static estimate.
///
/// # Errors
///
/// Same failure modes as [`run_function`].
pub fn run_function_costed(
    f: &Function,
    args: &[Value],
    mem: &mut Memory,
    cost: Option<InstCostFn<'_>>,
    observe: &mut impl FnMut(ValueId, &Value),
) -> Result<(i64, ExecStats), ExecError> {
    if args.len() != f.params().len() {
        return Err(ExecError::new(format!(
            "@{} expects {} arguments, got {}",
            f.name(),
            f.params().len(),
            args.len()
        )));
    }
    let mut interp =
        Interp { f, mem, env: HashMap::new(), stats: ExecStats::default(), cost, cycles: 0 };
    for (&p, v) in f.params().iter().zip(args) {
        interp.env.insert(p, v.clone());
    }
    if f.cfg().is_some() {
        interp.run_cfg(observe)?;
        return Ok((interp.cycles, interp.stats));
    }
    for (_, id, _) in f.iter_body() {
        // Re-fetch the instruction to satisfy the borrow checker.
        let inst = f.inst(id).expect("body contains instructions").clone();
        interp.exec_inst(id, &inst)?;
        if let Some(v) = interp.env.get(&id) {
            observe(id, v);
        }
    }
    Ok((interp.cycles, interp.stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lslp_ir::parse_function;

    fn run(src: &str, args: &[Value], mem: &mut Memory) -> Result<ExecStats, ExecError> {
        let f = parse_function(src).unwrap();
        lslp_ir::verify_function(&f).unwrap();
        run_function(&f, args, mem)
    }

    #[test]
    fn scalar_arithmetic_and_memory() {
        let mut mem = Memory::new();
        let a = mem.alloc_i64("A", &[10, 20]);
        run(
            "func @k(%A: ptr, %i: i64) {
               %p = gep %A, %i, 8
               %v = load i64, %p
               %w = mul i64 %v, 3
               %p1 = gep %p, 1, 8
               store i64 %w, %p1
             }",
            &[a, Value::Int(0)],
            &mut mem,
        )
        .unwrap();
        assert_eq!(mem.read_i64("A", 1), Some(30));
    }

    #[test]
    fn vector_ops_match_scalar_semantics() {
        let mut mem = Memory::new();
        let a = mem.alloc_i64("A", &[1, 2, 3, 4]);
        run(
            "func @k(%A: ptr) {
               %v = load <4 x i64>, %A
               %w = add <4 x i64> %v, %v
               store <4 x i64> %w, %A
             }",
            &[a],
            &mut mem,
        )
        .unwrap();
        assert_eq!(mem.read_i64("A", 0), Some(2));
        assert_eq!(mem.read_i64("A", 3), Some(8));
    }

    #[test]
    fn shuffle_insert_extract() {
        let mut mem = Memory::new();
        let a = mem.alloc_i64("A", &[1, 2]);
        run(
            "func @k(%A: ptr) {
               %v = load <2 x i64>, %A
               %e = extractelement <2 x i64> %v, 0
               %w = insertelement <2 x i64> %v, %e, 1
               %s = shufflevector <2 x i64> %w, %w, [1, 0]
               store <2 x i64> %s, %A
             }",
            &[a],
            &mut mem,
        )
        .unwrap();
        assert_eq!(mem.read_i64("A", 0), Some(1));
        assert_eq!(mem.read_i64("A", 1), Some(1));
    }

    #[test]
    fn division_by_zero_errors() {
        let mut mem = Memory::new();
        let a = mem.alloc_i64("A", &[5, 0]);
        let err = run(
            "func @k(%A: ptr) {
               %x = load i64, %A
               %p = gep %A, 1, 8
               %y = load i64, %p
               %q = sdiv i64 %x, %y
               store i64 %q, %A
             }",
            &[a],
            &mut mem,
        )
        .unwrap_err();
        assert!(err.message.contains("division by zero"), "{err}");
    }

    #[test]
    fn narrow_int_wrapping() {
        let mut mem = Memory::new();
        let a = mem.alloc("A", 2);
        run(
            "func @k(%A: ptr) {
               %v = load i8, %A
               %w = add i8 %v, 127
               %p = gep %A, 1, 1
               store i8 %w, %p
             }",
            &[a],
            &mut mem,
        )
        .unwrap();
        // 0 + 127 = 127 fits; rerun with initial 1 to wrap.
        let a = mem.alloc("A", 2);
        mem.write_scalar(&a, 0, ScalarType::I8, Value::Int(1)).unwrap();
        run(
            "func @k(%A: ptr) {
               %v = load i8, %A
               %w = add i8 %v, 127
               %p = gep %A, 1, 1
               store i8 %w, %p
             }",
            std::slice::from_ref(&a),
            &mut mem,
        )
        .unwrap();
        assert_eq!(mem.read_scalar(&a, 1, ScalarType::I8).unwrap(), Value::Int(-128));
    }

    #[test]
    fn shift_amounts_mask_like_x86() {
        let mut mem = Memory::new();
        let a = mem.alloc_i64("A", &[1, 65]);
        run(
            "func @k(%A: ptr) {
               %x = load i64, %A
               %p = gep %A, 1, 8
               %s = load i64, %p
               %r = shl i64 %x, %s
               store i64 %r, %A
             }",
            &[a],
            &mut mem,
        )
        .unwrap();
        assert_eq!(mem.read_i64("A", 0), Some(2), "shift by 65 behaves as shift by 1");
    }

    #[test]
    fn cmp_and_select() {
        let mut mem = Memory::new();
        let a = mem.alloc_i64("A", &[7, 3, 0]);
        run(
            "func @k(%A: ptr) {
               %x = load i64, %A
               %p = gep %A, 1, 8
               %y = load i64, %p
               %c = icmp slt i64 %x, %y
               %m = select i64 %c, %x, %y
               %q = gep %A, 2, 8
               store i64 %m, %q
             }",
            &[a],
            &mut mem,
        )
        .unwrap();
        assert_eq!(mem.read_i64("A", 2), Some(3));
    }

    #[test]
    fn stats_count_vector_insts() {
        let mut mem = Memory::new();
        let a = mem.alloc_i64("A", &[1, 2]);
        let stats = run(
            "func @k(%A: ptr) {
               %v = load <2 x i64>, %A
               %w = add <2 x i64> %v, %v
               store <2 x i64> %w, %A
             }",
            &[a],
            &mut mem,
        )
        .unwrap();
        assert_eq!(stats.insts, 3);
        assert_eq!(stats.vector_insts, 3);
    }

    #[test]
    fn argument_count_checked() {
        let mut mem = Memory::new();
        let err = run("func @k(%A: ptr) { }", &[], &mut mem).unwrap_err();
        assert!(err.message.contains("expects 1 arguments"), "{err}");
    }

    #[test]
    fn out_of_bounds_load_errors() {
        let mut mem = Memory::new();
        let a = mem.alloc_i64("A", &[1]);
        let err = run(
            "func @k(%A: ptr) {
               %p = gep %A, 1, 8
               %v = load i64, %p
               store i64 %v, %A
             }",
            &[a],
            &mut mem,
        )
        .unwrap_err();
        assert!(err.message.contains("out-of-bounds"), "{err}");
    }

    // ----- CFG execution --------------------------------------------------

    #[test]
    fn cfg_diamond_selects_branch() {
        // max(x, y) via a branch diamond with a join block parameter.
        let src = "func @max(%A: ptr) {
bb0:
  %x = load i64, %A
  %p = gep %A, 1, 8
  %y = load i64, %p
  %c = icmp sgt i64 %x, %y
  br %c, bb1, bb2
bb1:
  jump bb3(%x)
bb2:
  jump bb3(%y)
bb3(%m: i64):
  %q = gep %A, 2, 8
  store i64 %m, %q
  ret
}";
        let mut mem = Memory::new();
        let a = mem.alloc_i64("A", &[7, 3, 0]);
        run(src, &[a], &mut mem).unwrap();
        assert_eq!(mem.read_i64("A", 2), Some(7));

        let mut mem = Memory::new();
        let a = mem.alloc_i64("A", &[3, 9, 0]);
        run(src, &[a], &mut mem).unwrap();
        assert_eq!(mem.read_i64("A", 2), Some(9));
    }

    #[test]
    fn cfg_counted_loop_accumulates() {
        // Sum four elements through a loop-carried accumulator.
        let src = "func @sum(%A: ptr) {
bb0:
  loop 4, bb1(0), bb2
bb1(%i: i64, %acc: i64):
  %p = gep %A, %i, 8
  %x = load i64, %p
  %next = add i64 %acc, %x
  continue %next
bb2(%total: i64):
  %q = gep %A, 4, 8
  store i64 %total, %q
  ret
}";
        let mut mem = Memory::new();
        let a = mem.alloc_i64("A", &[10, 20, 30, 40, 0]);
        run(src, &[a], &mut mem).unwrap();
        assert_eq!(mem.read_i64("A", 4), Some(100));
    }

    #[test]
    fn cfg_loop_iv_counts_from_zero() {
        // The induction variable is the first body parameter: sum 0..5 = 10.
        let src = "func @iv(%A: ptr) {
bb0:
  loop 5, bb1(0), bb2
bb1(%i: i64, %acc: i64):
  %next = add i64 %acc, %i
  continue %next
bb2(%total: i64):
  store i64 %total, %A
  ret
}";
        let mut mem = Memory::new();
        let a = mem.alloc_i64("A", &[0]);
        run(src, &[a], &mut mem).unwrap();
        assert_eq!(mem.read_i64("A", 0), Some(10));
    }

    #[test]
    fn cfg_branchy_loop_body() {
        // Clamp negatives to zero inside the loop body: a diamond per
        // iteration feeding the carried accumulator.
        let src = "func @clampsum(%A: ptr) {
bb0:
  loop 4, bb1(0), bb5
bb1(%i: i64, %acc: i64):
  %p = gep %A, %i, 8
  %x = load i64, %p
  %c = icmp slt i64 %x, 0
  br %c, bb2, bb3
bb2:
  jump bb4(0)
bb3:
  jump bb4(%x)
bb4(%v: i64):
  %next = add i64 %acc, %v
  continue %next
bb5(%total: i64):
  %q = gep %A, 4, 8
  store i64 %total, %q
  ret
}";
        let mut mem = Memory::new();
        let a = mem.alloc_i64("A", &[5, -7, 3, -1, 0]);
        run(src, &[a], &mut mem).unwrap();
        assert_eq!(mem.read_i64("A", 4), Some(8));
    }

    #[test]
    fn cfg_jump_cycle_hits_transition_limit() {
        let src = "func @spin(%A: ptr) {
bb0:
  jump bb1
bb1:
  jump bb0
}";
        let mut mem = Memory::new();
        let a = mem.alloc_i64("A", &[0]);
        let err = run(src, &[a], &mut mem).unwrap_err();
        assert!(err.message.contains("block transition limit"), "{err}");
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use lslp_ir::parse_function;

    #[test]
    fn trace_observes_every_value_in_order() {
        let f = parse_function(
            "func @t(%A: ptr) {
               %v = load i64, %A
               %w = add i64 %v, 5
               store i64 %w, %A
             }",
        )
        .unwrap();
        let mut mem = Memory::new();
        let a = mem.alloc_i64("A", &[10]);
        let mut trace = Vec::new();
        run_function_traced(&f, &[a], &mut mem, |id, v| trace.push((id, v.clone()))).unwrap();
        // Two value-producing instructions (the store is void).
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].1, Value::Int(10));
        assert_eq!(trace[1].1, Value::Int(15));
        assert_eq!(mem.read_i64("A", 0), Some(15));
    }

    #[test]
    fn trace_sees_vector_values() {
        let f = parse_function(
            "func @t(%A: ptr) {
               %v = load <2 x i64>, %A
               %w = mul <2 x i64> %v, <3, 4>
               store <2 x i64> %w, %A
             }",
        )
        .unwrap();
        let mut mem = Memory::new();
        let a = mem.alloc_i64("A", &[2, 5]);
        let mut vecs = 0;
        run_function_traced(&f, &[a], &mut mem, |_, v| {
            if matches!(v, Value::Vec(_)) {
                vecs += 1;
            }
        })
        .unwrap();
        assert_eq!(vecs, 2);
        assert_eq!(mem.read_i64("A", 0), Some(6));
        assert_eq!(mem.read_i64("A", 1), Some(20));
    }

    // ----- CFG execution --------------------------------------------------

    #[test]
    fn cfg_trace_observes_loop_iterations() {
        let f = parse_function(
            "func @t(%A: ptr) {
bb0:
  loop 3, bb1(1), bb2
bb1(%i: i64, %acc: i64):
  %next = mul i64 %acc, 2
  continue %next
bb2(%total: i64):
  store i64 %total, %A
  ret
}",
        )
        .unwrap();
        lslp_ir::verify_function(&f).unwrap();
        let mut mem = Memory::new();
        let a = mem.alloc_i64("A", &[0]);
        let mut muls = Vec::new();
        run_function_traced(&f, &[a], &mut mem, |_, v| muls.push(v.as_int())).unwrap();
        assert_eq!(muls, vec![2, 4, 8], "observe fires once per iteration");
        assert_eq!(mem.read_i64("A", 0), Some(8));
    }
}
