//! # lslp-interp
//!
//! An interpreter and performance simulator for [`lslp_ir`] functions.
//!
//! The interpreter serves two roles in the LSLP reproduction:
//!
//! * **correctness oracle** — vectorized code must compute exactly the same
//!   memory state as the scalar original (bit-exact for integers, within
//!   tolerance for reassociated fast-math floats); the property-based test
//!   suite leans on this heavily;
//! * **performance simulator** — the paper measures wall-clock speedups on
//!   a Skylake machine; we substitute a cost-weighted dynamic instruction
//!   count (each executed instruction contributes its TTI cost from
//!   [`lslp_target::CostModel`]), which preserves the *shape* of the
//!   speedup results (who wins and by roughly how much).
//!
//! ```
//! use lslp_interp::{Memory, run_function, Value};
//! use lslp_frontend::compile;
//!
//! let m = compile("kernel inc(i64* A, i64 i) { A[i] = A[i] + 1; }").unwrap();
//! let mut mem = Memory::new();
//! let a = mem.alloc_i64("A", &[41, 0]);
//! let stats = run_function(&m.functions[0], &[a, Value::Int(0)], &mut mem).unwrap();
//! assert_eq!(mem.read_i64("A", 0).unwrap(), 42);
//! assert!(stats.insts > 0);
//! ```

#![warn(missing_docs)]

mod exec;
mod memory;
pub mod perf;

pub use exec::{
    run_function, run_function_costed, run_function_traced, ExecError, ExecStats, InstCostFn,
};
pub use memory::{Memory, Value};
pub use perf::{measure_cycles, PerfResult};
