use lslp::config::VectorizerConfig;
use lslp::graph::GraphBuilder;
use lslp_analysis::AddrInfo;
use lslp_ir::{verify_function, Function, FunctionBuilder, Type, ValueId};

#[test]
fn hoisted_load_ptr_dominance() {
    // Body order: gep/load A[i+1]; store x->A[i+1]; gep A,i; load A[i];
    // then seed stores C[i]=l0, C[i+1]=l1.
    let mut f = Function::new("k");
    let pa = f.add_param("A", Type::PTR);
    let pc = f.add_param("C", Type::PTR);
    let x = f.add_param("x", Type::I64);
    let i = f.add_param("i", Type::I64);
    let mut b = FunctionBuilder::new(&mut f);
    let one = b.func().const_i64(1);
    let i1 = b.add(i, one);
    let p1 = b.gep(pa, i1, 8);
    let l1 = b.load(Type::I64, p1);
    b.store(x, p1); // aliasing store kills sink for the load bundle
    let p0 = b.gep(pa, i, 8); // lane-0 pointer defined AFTER l1
    let l0 = b.load(Type::I64, p0);
    let c0 = b.gep(pc, i, 8);
    let s0 = b.store(l0, c0);
    let c1 = b.gep(pc, i1, 8);
    let s1 = b.store(l1, c1);
    let seeds: Vec<ValueId> = vec![s0, s1];

    let cfg = VectorizerConfig::lslp();
    let tm = lslp_target::TargetSpec::default();
    let addr = AddrInfo::analyze(&f);
    let positions = f.position_map();
    let use_map = f.use_map();
    let graph = GraphBuilder::new(&f, &cfg, &tm, &addr, &positions, &use_map).build(&seeds);
    println!("{}", graph.dump(&f));
    lslp::codegen::generate(&mut f, &graph, &tm);
    println!("{}", lslp_ir::print_function(&f));
    verify_function(&f).expect("vectorized code must verify");
}
