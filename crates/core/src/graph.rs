//! The (L)SLP vectorization graph (paper §2.3 and §4.2, Listings 3–4).
//!
//! The graph is built bottom-up from a bundle of seed stores: each node
//! groups one scalar per lane. Vectorizable groups recurse into their
//! operands (after reordering, when commutative); anything that cannot be
//! grouped becomes a *gather* leaf that carries the cost of assembling a
//! vector from scalars.
//!
//! LSLP's deviation from vanilla SLP is confined to the commutative case:
//! instead of recursing directly into the two operands, chained commutative
//! instructions of the same opcode are coarsened into a [`NodeKind::MultiNode`]
//! whose whole operand frontier is reordered at once.

use std::collections::HashMap;
use std::fmt;

use lslp_analysis::{bundle_hoistable, bundle_schedulable, AddrInfo};
use lslp_ir::{Function, Opcode, UseMap, ValueId};
use lslp_target::TargetSpec;

use crate::config::VectorizerConfig;
use crate::multinode::{form_multinode, LaneChain};
use crate::reorder::reorder_operands;

/// Index of a node within its [`SlpGraph`].
pub type NodeId = usize;

/// Why a bundle ended up as a gather leaf.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GatherReason {
    /// A lane holds a constant or argument rather than an instruction.
    NonInstruction,
    /// The same instruction appears in more than one lane (splats included).
    Duplicates,
    /// Some lane's instruction already belongs to another graph node.
    AlreadyInTree,
    /// Lanes disagree on opcode, type, or immediate attribute.
    OpcodeMismatch,
    /// The common opcode has no vector form we exploit (e.g. `gep`).
    UnvectorizableOpcode,
    /// Loads are not consecutive in lane order.
    NotConsecutiveLoads,
    /// The bundle cannot be scheduled as one vector instruction.
    NotSchedulable,
    /// Recursion depth limit reached.
    DepthLimit,
    /// Demoted by graph throttling (`lslp::throttle`): vectorizing this
    /// subtree costs more than gathering its roots.
    Throttled,
    /// The node-count fuel budget ([`VectorizerConfig::max_graph_nodes`])
    /// ran out; the rest of the subtree is conservatively gathered.
    NodeBudget,
    /// The group is wider than the selected target's registers can hold
    /// (more lanes than [`lslp_target::TargetSpec::max_vf`] for the
    /// element type). Seed stores are exempt — codegen legalizes those by
    /// splitting — but interior groups are gathered.
    ExceedsTargetWidth,
}

impl fmt::Display for GatherReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GatherReason::NonInstruction => "non-instruction lanes",
            GatherReason::Duplicates => "duplicate lanes",
            GatherReason::AlreadyInTree => "lanes already in tree",
            GatherReason::OpcodeMismatch => "opcode/type mismatch",
            GatherReason::UnvectorizableOpcode => "unvectorizable opcode",
            GatherReason::NotConsecutiveLoads => "non-consecutive loads",
            GatherReason::NotSchedulable => "not schedulable",
            GatherReason::DepthLimit => "depth limit",
            GatherReason::Throttled => "throttled",
            GatherReason::NodeBudget => "node budget exhausted",
            GatherReason::ExceedsTargetWidth => "exceeds target register width",
        };
        f.write_str(s)
    }
}

/// Where a vector memory node is emitted relative to its scalar members.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Placement {
    /// At the last member's position (members sink down).
    Sink,
    /// At the first member's position (load-only; members hoist up).
    Hoist,
}

/// The payload of a graph node.
#[derive(Clone, Debug)]
pub enum NodeKind {
    /// A vectorizable group of isomorphic instructions (ALU, compare,
    /// select).
    Vector {
        /// The common opcode.
        op: Opcode,
    },
    /// A multi-node: per-lane chains of commutative instructions with the
    /// same opcode, reordered and vectorized as one unit (LSLP, §4.2).
    MultiNode {
        /// The common opcode.
        op: Opcode,
        /// Per-lane chains; all the same length.
        chains: Vec<LaneChain>,
    },
    /// A vectorizable group of consecutive loads.
    Load {
        /// Emission placement (see [`Placement`]).
        placement: Placement,
    },
    /// A vectorizable group of consecutive stores (the seed / root node).
    Store,
    /// A non-vectorizable leaf: the lanes are assembled into a vector with
    /// insert instructions.
    Gather {
        /// Why grouping failed.
        reason: GatherReason,
    },
}

/// One node of the SLP graph.
#[derive(Clone, Debug)]
pub struct Node {
    /// One scalar per lane. For multi-nodes these are the per-lane chain
    /// roots.
    pub scalars: Vec<ValueId>,
    /// Node payload.
    pub kind: NodeKind,
    /// Operand nodes, in slot order (empty for leaves).
    pub operands: Vec<NodeId>,
}

impl Node {
    /// Whether this node produces a vector instruction (i.e. is not a
    /// gather leaf).
    pub fn is_vectorizable(&self) -> bool {
        !matches!(self.kind, NodeKind::Gather { .. })
    }

    /// Lane count.
    pub fn lanes(&self) -> usize {
        self.scalars.len()
    }
}

/// The SLP graph: nodes in creation order, rooted at the seed stores.
#[derive(Clone, Debug)]
pub struct SlpGraph {
    nodes: Vec<Node>,
    /// scalar → node owning it as a *vectorized* member (gathers excluded;
    /// multi-node internals included).
    in_tree: HashMap<ValueId, NodeId>,
}

impl SlpGraph {
    /// The root node (the seed store bundle).
    pub fn root(&self) -> NodeId {
        0
    }

    /// All nodes, indexable by [`NodeId`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// A node by id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Number of lanes of the root bundle.
    pub fn lanes(&self) -> usize {
        self.nodes[0].lanes()
    }

    /// The node that vectorizes `scalar`, if any.
    pub fn node_of(&self, scalar: ValueId) -> Option<NodeId> {
        self.in_tree.get(&scalar).copied()
    }

    /// Whether `scalar` is vectorized by some node of this graph.
    pub fn contains(&self, scalar: ValueId) -> bool {
        self.in_tree.contains_key(&scalar)
    }

    /// Iterate over `(scalar, owning node)` for every vectorized scalar
    /// (multi-node chain internals included).
    pub fn vectorized_scalars(&self) -> impl Iterator<Item = (ValueId, NodeId)> + '_ {
        self.in_tree.iter().map(|(&v, &n)| (v, n))
    }

    /// Whether the node-count fuel budget truncated this graph (some
    /// bundle was gathered with [`GatherReason::NodeBudget`]).
    pub fn budget_exhausted(&self) -> bool {
        self.nodes
            .iter()
            .any(|n| matches!(n.kind, NodeKind::Gather { reason: GatherReason::NodeBudget }))
    }

    /// Node ids reachable from the root (unreachable nodes exist after
    /// throttling cuts; cost and codegen ignore them).
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![self.root()];
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut seen[n], true) {
                continue;
            }
            stack.extend(self.nodes[n].operands.iter().copied());
        }
        seen
    }

    /// Demote a vectorizable node to a gather leaf (a throttling *cut*):
    /// its scalars leave the vectorized set, its operand subtree is
    /// detached, and `in_tree` entries of now-unreachable nodes are purged.
    pub fn demote_to_gather(&mut self, id: NodeId, reason: GatherReason) {
        debug_assert!(id != self.root(), "the seed root cannot be demoted");
        self.nodes[id].kind = NodeKind::Gather { reason };
        self.nodes[id].operands.clear();
        let reach = self.reachable();
        self.in_tree.retain(|_, n| reach[*n] && *n != id);
    }

    /// Human-readable dump of the graph (for debugging and the examples).
    pub fn dump(&self, f: &Function) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (id, node) in self.nodes.iter().enumerate() {
            let kind = match &node.kind {
                NodeKind::Vector { op } => format!("vector {op}"),
                NodeKind::MultiNode { op, chains } => {
                    format!("multi-node {op} x{}", chains[0].insts.len())
                }
                NodeKind::Load { placement } => format!("load ({placement:?})"),
                NodeKind::Store => "store".to_string(),
                NodeKind::Gather { reason } => format!("gather ({reason})"),
            };
            let lanes: Vec<String> = node
                .scalars
                .iter()
                .map(|&s| match f.value(s) {
                    lslp_ir::ValueData::Const(c) => f.const_value(*c).to_string(),
                    _ => f
                        .value_name(s)
                        .map(str::to_owned)
                        .unwrap_or_else(|| format!("%{}", s.raw())),
                })
                .collect();
            let _ = writeln!(out, "n{id}: {kind} [{}] -> {:?}", lanes.join(", "), node.operands);
        }
        out
    }
}

/// Bottom-up construction of the SLP graph for one seed bundle.
pub struct GraphBuilder<'a> {
    f: &'a Function,
    cfg: &'a VectorizerConfig,
    tm: &'a TargetSpec,
    addr: &'a AddrInfo,
    positions: &'a HashMap<ValueId, usize>,
    use_map: &'a UseMap,
    nodes: Vec<Node>,
    in_tree: HashMap<ValueId, NodeId>,
    bundle_cache: HashMap<Vec<ValueId>, NodeId>,
}

impl<'a> GraphBuilder<'a> {
    /// Prepare a builder over the current function state for `tm`, the
    /// target whose register width bounds every group's lane count.
    pub fn new(
        f: &'a Function,
        cfg: &'a VectorizerConfig,
        tm: &'a TargetSpec,
        addr: &'a AddrInfo,
        positions: &'a HashMap<ValueId, usize>,
        use_map: &'a UseMap,
    ) -> GraphBuilder<'a> {
        GraphBuilder {
            f,
            cfg,
            tm,
            addr,
            positions,
            use_map,
            nodes: Vec::new(),
            in_tree: HashMap::new(),
            bundle_cache: HashMap::new(),
        }
    }

    /// Build the graph for a bundle of seed stores (Listing 4's entry).
    pub fn build(mut self, seeds: &[ValueId]) -> SlpGraph {
        let root = self.build_rec(seeds.to_vec(), 0);
        debug_assert_eq!(root, 0, "the seed bundle must be the first node");
        SlpGraph { nodes: self.nodes, in_tree: self.in_tree }
    }

    fn gather(&mut self, scalars: Vec<ValueId>, reason: GatherReason) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(Node { scalars, kind: NodeKind::Gather { reason }, operands: Vec::new() });
        id
    }

    /// Reserve a vectorizable node and register its scalars in the tree.
    fn reserve(&mut self, scalars: Vec<ValueId>, kind: NodeKind) -> NodeId {
        let id = self.nodes.len();
        for &s in &scalars {
            self.in_tree.insert(s, id);
        }
        if let NodeKind::MultiNode { chains, .. } = &kind {
            for chain in chains {
                for &i in &chain.insts {
                    self.in_tree.insert(i, id);
                }
            }
        }
        self.nodes.push(Node { scalars, kind, operands: Vec::new() });
        id
    }

    /// The recursive `build_graph` of Listings 3–4.
    fn build_rec(&mut self, bundle: Vec<ValueId>, depth: u32) -> NodeId {
        // Exact bundle reuse: a value group may feed several users (a DAG).
        if let Some(&hit) = self.bundle_cache.get(&bundle) {
            return hit;
        }
        let id = self.build_rec_fresh(bundle.clone(), depth);
        self.bundle_cache.insert(bundle, id);
        id
    }

    fn build_rec_fresh(&mut self, bundle: Vec<ValueId>, depth: u32) -> NodeId {
        let f = self.f;
        // Termination conditions (footnote 1 of the paper).
        if self.nodes.len() >= self.cfg.max_graph_nodes {
            return self.gather(bundle, GatherReason::NodeBudget);
        }
        if depth > self.cfg.max_depth {
            return self.gather(bundle, GatherReason::DepthLimit);
        }
        if bundle.iter().any(|&v| !f.is_inst(v)) {
            return self.gather(bundle, GatherReason::NonInstruction);
        }
        {
            let mut seen = bundle.clone();
            seen.sort();
            seen.dedup();
            if seen.len() != bundle.len() {
                return self.gather(bundle, GatherReason::Duplicates);
            }
        }
        if bundle.iter().any(|v| self.in_tree.contains_key(v)) {
            return self.gather(bundle, GatherReason::AlreadyInTree);
        }
        let first = f.inst(bundle[0]).expect("checked: instruction");
        let isomorphic = bundle.iter().all(|&v| {
            let i = f.inst(v).expect("checked: instruction");
            i.op == first.op && i.ty == first.ty && (i.op == Opcode::Load || i.attr == first.attr)
        });
        if !isomorphic {
            return self.gather(bundle, GatherReason::OpcodeMismatch);
        }
        if first.ty.is_vector() || f.ty(first.args[0]).is_vector() {
            // Pre-existing vector code is left alone.
            return self.gather(bundle, GatherReason::UnvectorizableOpcode);
        }
        // Target legality re-check: seed widening caps the root at the
        // target's max VF, but callers can hand the builder wider seeds
        // (direct API use, `--emit graph` on a long chain), and interior
        // groups re-derive their element type lane by lane. Anything the
        // target's registers cannot hold is gathered here — except seed
        // stores, which codegen legalizes by splitting into chunks.
        if first.op != Opcode::Store {
            if let Some(elem) = first.ty.elem() {
                if bundle.len() as u32 > self.tm.max_vf(elem) {
                    return self.gather(bundle, GatherReason::ExceedsTargetWidth);
                }
            }
        }

        match first.op {
            Opcode::Load => self.build_load(bundle),
            Opcode::Store => self.build_store(bundle, depth),
            op if op.is_binary() && op.is_commutative() => self.build_commutative(bundle, depth),
            op if op.is_binary()
                || op.is_cast()
                || matches!(op, Opcode::ICmp | Opcode::FCmp | Opcode::Select) =>
            {
                self.build_ordered(bundle, depth)
            }
            _ => self.gather(bundle, GatherReason::UnvectorizableOpcode),
        }
    }

    fn build_load(&mut self, bundle: Vec<ValueId>) -> NodeId {
        let consecutive = bundle.windows(2).all(|w| self.addr.consecutive(w[0], w[1]));
        if !consecutive {
            return self.gather(bundle, GatherReason::NotConsecutiveLoads);
        }
        let placement = if bundle_schedulable(self.f, self.positions, self.addr, &bundle) {
            Placement::Sink
        } else if bundle_hoistable(self.f, self.positions, self.addr, &bundle) {
            Placement::Hoist
        } else {
            return self.gather(bundle, GatherReason::NotSchedulable);
        };
        self.reserve(bundle, NodeKind::Load { placement })
    }

    fn build_store(&mut self, bundle: Vec<ValueId>, depth: u32) -> NodeId {
        let consecutive = bundle.windows(2).all(|w| self.addr.consecutive(w[0], w[1]));
        if !consecutive {
            return self.gather(bundle, GatherReason::NotConsecutiveLoads);
        }
        let same_value_ty = bundle
            .iter()
            .all(|&s| self.f.ty(self.f.args_of(s)[0]) == self.f.ty(self.f.args_of(bundle[0])[0]));
        if !same_value_ty {
            return self.gather(bundle, GatherReason::OpcodeMismatch);
        }
        if !bundle_schedulable(self.f, self.positions, self.addr, &bundle) {
            return self.gather(bundle, GatherReason::NotSchedulable);
        }
        let id = self.reserve(bundle.clone(), NodeKind::Store);
        let values: Vec<ValueId> = bundle.iter().map(|&s| self.f.args_of(s)[0]).collect();
        let child = self.build_rec(values, depth + 1);
        self.nodes[id].operands.push(child);
        id
    }

    /// Commutative groups: multi-node coarsening (Listing 4) followed by
    /// operand reordering over the whole frontier.
    fn build_commutative(&mut self, bundle: Vec<ValueId>, depth: u32) -> NodeId {
        if !bundle_schedulable(self.f, self.positions, self.addr, &bundle) {
            return self.gather(bundle, GatherReason::NotSchedulable);
        }
        let op = self.f.opcode(bundle[0]).expect("instruction");
        let chains = form_multinode(
            self.f,
            self.use_map,
            &self.in_tree,
            &bundle,
            op,
            self.cfg.max_multinode_insts,
            self.cfg.fast_math,
        );
        let k = chains[0].insts.len();
        // Internal chain members must also be pairwise schedulable across
        // lanes; the root check above covers them transitively because each
        // internal value feeds its lane root, but re-check defensively when
        // chains are non-trivial.
        let lane_operands: Vec<Vec<ValueId>> = chains.iter().map(|c| c.operands.clone()).collect();
        let kind = if k > 1 { NodeKind::MultiNode { op, chains } } else { NodeKind::Vector { op } };
        let id = self.reserve(bundle, kind);
        let slots = reorder_operands(self.f, self.addr, &lane_operands, self.cfg);
        for slot in slots {
            let child = self.build_rec(slot, depth + 1);
            self.nodes[id].operands.push(child);
        }
        id
    }

    /// Non-commutative vectorizable groups: recurse in operand order.
    fn build_ordered(&mut self, bundle: Vec<ValueId>, depth: u32) -> NodeId {
        if !bundle_schedulable(self.f, self.positions, self.addr, &bundle) {
            return self.gather(bundle, GatherReason::NotSchedulable);
        }
        let op = self.f.opcode(bundle[0]).expect("instruction");
        let nargs = self.f.args_of(bundle[0]).len();
        let id = self.reserve(bundle.clone(), NodeKind::Vector { op });
        for slot in 0..nargs {
            let column: Vec<ValueId> = bundle.iter().map(|&v| self.f.args_of(v)[slot]).collect();
            let child = self.build_rec(column, depth + 1);
            self.nodes[id].operands.push(child);
        }
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lslp_ir::{FunctionBuilder, Type};

    fn build_for(f: &Function, cfg: &VectorizerConfig, seeds: &[ValueId]) -> SlpGraph {
        build_for_target(f, cfg, &TargetSpec::default(), seeds)
    }

    fn build_for_target(
        f: &Function,
        cfg: &VectorizerConfig,
        tm: &TargetSpec,
        seeds: &[ValueId],
    ) -> SlpGraph {
        let addr = AddrInfo::analyze(f);
        let positions = f.position_map();
        let use_map = f.use_map();
        GraphBuilder::new(f, cfg, tm, &addr, &positions, &use_map).build(seeds)
    }

    /// `A[i]   = B[i]   + C[i]`
    /// `A[i+1] = B[i+1] + C[i+1]` — the textbook fully-vectorizable case.
    fn simple_add_kernel() -> (Function, Vec<ValueId>) {
        add_kernel_lanes(2)
    }

    /// [`simple_add_kernel`] with a configurable store-chain length.
    fn add_kernel_lanes(lanes: i64) -> (Function, Vec<ValueId>) {
        let mut f = Function::new("k");
        let pa = f.add_param("A", Type::PTR);
        let pb = f.add_param("B", Type::PTR);
        let pc = f.add_param("C", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let mut stores = Vec::new();
        for o in 0..lanes {
            let mut b = FunctionBuilder::new(&mut f);
            let off = b.func().const_i64(o);
            let idx = b.add(i, off);
            let gb = b.gep(pb, idx, 8);
            let lb = b.load(Type::I64, gb);
            let gc = b.gep(pc, idx, 8);
            let lc = b.load(Type::I64, gc);
            let s = b.add(lb, lc);
            let ga = b.gep(pa, idx, 8);
            stores.push(b.store(s, ga));
        }
        (f, stores)
    }

    #[test]
    fn fully_vectorizable_kernel_builds_clean_tree() {
        let (f, seeds) = simple_add_kernel();
        let g = build_for(&f, &VectorizerConfig::slp(), &seeds);
        assert!(matches!(g.node(g.root()).kind, NodeKind::Store));
        // Store -> add -> two load nodes; no gathers.
        let gathers = g.nodes().iter().filter(|n| !n.is_vectorizable()).count();
        assert_eq!(gathers, 0, "{}", g.dump(&f));
        let loads = g.nodes().iter().filter(|n| matches!(n.kind, NodeKind::Load { .. })).count();
        assert_eq!(loads, 2);
    }

    #[test]
    fn all_configs_share_graph_on_aligned_code() {
        let (f, seeds) = simple_add_kernel();
        for cfg in [VectorizerConfig::slp_nr(), VectorizerConfig::slp(), VectorizerConfig::lslp()] {
            let g = build_for(&f, &cfg, &seeds);
            assert!(
                g.nodes().iter().all(Node::is_vectorizable),
                "config {:?} produced gathers:\n{}",
                cfg.reorder,
                g.dump(&f)
            );
        }
    }

    #[test]
    fn non_consecutive_stores_gather_immediately() {
        let mut f = Function::new("k");
        let pa = f.add_param("A", Type::PTR);
        let x = f.add_param("x", Type::I64);
        let i = f.add_param("i", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let two = b.func().const_i64(2);
        let g0 = b.gep(pa, i, 8);
        let s0 = b.store(x, g0);
        let i2 = b.add(i, two);
        let g2 = b.gep(pa, i2, 8);
        let s1 = b.store(x, g2);
        let g = build_for(&f, &VectorizerConfig::lslp(), &[s0, s1]);
        assert!(matches!(
            g.node(0).kind,
            NodeKind::Gather { reason: GatherReason::NotConsecutiveLoads }
        ));
    }

    #[test]
    fn duplicate_lanes_gather() {
        let mut f = Function::new("k");
        let pa = f.add_param("A", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let one = b.func().const_i64(1);
        let v = b.add(i, one);
        let i1 = b.add(i, one);
        let g0 = b.gep(pa, i, 8);
        let s0 = b.store(v, g0);
        let g1 = b.gep(pa, i1, 8);
        let s1 = b.store(v, g1);
        let g = build_for(&f, &VectorizerConfig::lslp(), &[s0, s1]);
        // The store node vectorizes; its value bundle [v, v] is a splat
        // gather.
        assert!(matches!(g.node(0).kind, NodeKind::Store));
        let child = g.node(0).operands[0];
        assert!(matches!(
            g.node(child).kind,
            NodeKind::Gather { reason: GatherReason::Duplicates }
        ));
    }

    #[test]
    fn shared_subexpression_reuses_node() {
        // Both lanes' adds use the same load pair bundle: the bundle cache
        // must return one node, not gather on AlreadyInTree.
        let mut f = Function::new("k");
        let pa = f.add_param("A", Type::PTR);
        let pb = f.add_param("B", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let mut stores = Vec::new();
        let mut loads = Vec::new();
        for o in 0..2i64 {
            let mut b = FunctionBuilder::new(&mut f);
            let off = b.func().const_i64(o);
            let idx = b.add(i, off);
            let gb = b.gep(pb, idx, 8);
            loads.push(b.load(Type::I64, gb));
        }
        for o in 0..2i64 {
            let mut b = FunctionBuilder::new(&mut f);
            let off = b.func().const_i64(o);
            let idx = b.add(i, off);
            let s = b.mul(loads[o as usize], loads[o as usize]);
            let ga = b.gep(pa, idx, 8);
            stores.push(b.store(s, ga));
        }
        let g = build_for(&f, &VectorizerConfig::lslp(), &stores);
        // mul is commutative: both operand slots are the same load bundle.
        let mul = g.node(0).operands[0];
        let ops = &g.node(mul).operands;
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0], ops[1], "shared bundle must be one node:\n{}", g.dump(&f));
        assert!(matches!(g.node(ops[0]).kind, NodeKind::Load { .. }));
    }

    #[test]
    fn multinode_forms_only_with_lslp() {
        // A[i+o] = (B[i+o] & C[i+o]) & D[i+o] — an `&` chain of 2 per lane.
        let mut f = Function::new("k");
        let pa = f.add_param("A", Type::PTR);
        let pb = f.add_param("B", Type::PTR);
        let pc = f.add_param("C", Type::PTR);
        let pd = f.add_param("D", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let mut stores = Vec::new();
        for o in 0..2i64 {
            let mut b = FunctionBuilder::new(&mut f);
            let off = b.func().const_i64(o);
            let idx = b.add(i, off);
            let lb = {
                let p = b.gep(pb, idx, 8);
                b.load(Type::I64, p)
            };
            let lc = {
                let p = b.gep(pc, idx, 8);
                b.load(Type::I64, p)
            };
            let ld = {
                let p = b.gep(pd, idx, 8);
                b.load(Type::I64, p)
            };
            let inner = b.and(lb, lc);
            let outer = b.and(inner, ld);
            let ga = b.gep(pa, idx, 8);
            stores.push(b.store(outer, ga));
        }
        let g = build_for(&f, &VectorizerConfig::lslp(), &stores);
        let mn = g.node(g.node(0).operands[0]);
        match &mn.kind {
            NodeKind::MultiNode { op, chains } => {
                assert_eq!(*op, Opcode::And);
                assert_eq!(chains[0].insts.len(), 2);
                assert_eq!(mn.operands.len(), 3);
            }
            other => panic!("expected multi-node, got {other:?}\n{}", g.dump(&f)),
        }
        // Vanilla SLP keeps single nodes.
        let g = build_for(&f, &VectorizerConfig::slp(), &stores);
        let n = g.node(g.node(0).operands[0]);
        assert!(matches!(n.kind, NodeKind::Vector { op: Opcode::And }));
    }

    #[test]
    fn in_tree_registration_covers_multinode_internals() {
        let mut f = Function::new("k");
        let pa = f.add_param("A", Type::PTR);
        let x = f.add_param("x", Type::I64);
        let y = f.add_param("y", Type::I64);
        let z = f.add_param("z", Type::I64);
        let i = f.add_param("i", Type::I64);
        let mut stores = Vec::new();
        let mut inners = Vec::new();
        for o in 0..2i64 {
            let mut b = FunctionBuilder::new(&mut f);
            let off = b.func().const_i64(o);
            let idx = b.add(i, off);
            let inner = b.xor(x, y);
            let outer = b.xor(inner, z);
            inners.push(inner);
            let ga = b.gep(pa, idx, 8);
            stores.push(b.store(outer, ga));
        }
        let g = build_for(&f, &VectorizerConfig::lslp(), &stores);
        for inner in inners {
            assert!(g.contains(inner), "chain internals must be in-tree");
        }
    }

    #[test]
    fn interior_groups_respect_target_width() {
        // An 8-store chain of i64: sse4.2 holds two i64 lanes per
        // register, so the seed store survives (codegen legalizes it by
        // splitting) but every interior group is over-wide and gathers.
        // Regression test for the max-VF re-check: widening used to be
        // checked only at seed collection, never inside `build_graph`.
        let (f, seeds) = add_kernel_lanes(8);
        let sse = TargetSpec::sse42();
        let g = build_for_target(&f, &VectorizerConfig::lslp(), &sse, &seeds);
        assert!(matches!(g.node(g.root()).kind, NodeKind::Store));
        let reasons: Vec<GatherReason> = g
            .nodes()
            .iter()
            .filter_map(|n| match n.kind {
                NodeKind::Gather { reason } => Some(reason),
                _ => None,
            })
            .collect();
        assert!(reasons.contains(&GatherReason::ExceedsTargetWidth), "{}", g.dump(&f));
        // The same seed fits one avx512 register: the tree stays clean.
        let wide = TargetSpec::avx512();
        let g = build_for_target(&f, &VectorizerConfig::lslp(), &wide, &seeds);
        let gathers = g.nodes().iter().filter(|n| !n.is_vectorizable()).count();
        assert_eq!(gathers, 0, "{}", g.dump(&f));
    }
}

impl SlpGraph {
    /// Render the graph in Graphviz DOT format (one digraph; vectorizable
    /// nodes as boxes, gathers as dashed ellipses, per-node lane labels).
    /// Costs can be added by the caller via [`crate::graph_cost`]'s
    /// `per_node` vector.
    pub fn to_dot(&self, f: &Function, per_node_cost: Option<&[i64]>) -> String {
        use std::fmt::Write as _;
        let mut out =
            String::from("digraph slp {\n  rankdir=BT;\n  node [fontname=\"monospace\"];\n");
        let reach = self.reachable();
        for (id, node) in self.nodes.iter().enumerate() {
            if !reach[id] {
                continue;
            }
            let lanes: Vec<String> = node
                .scalars
                .iter()
                .map(|&s| match f.value(s) {
                    lslp_ir::ValueData::Const(c) => f.const_value(*c).to_string(),
                    _ => f
                        .value_name(s)
                        .map(str::to_owned)
                        .unwrap_or_else(|| format!("%{}", s.raw())),
                })
                .collect();
            let kind = match &node.kind {
                NodeKind::Vector { op } => format!("{op}"),
                NodeKind::MultiNode { op, chains } => {
                    format!("multi {op} x{}", chains[0].insts.len())
                }
                NodeKind::Load { .. } => "load".to_string(),
                NodeKind::Store => "store".to_string(),
                NodeKind::Gather { reason } => format!("gather\\n({reason})"),
            };
            let cost = per_node_cost
                .and_then(|c| c.get(id))
                .map(|c| format!("\\ncost {c:+}"))
                .unwrap_or_default();
            let style = if node.is_vectorizable() {
                "shape=box, style=filled, fillcolor=\"#d8f0d8\""
            } else {
                "shape=ellipse, style=dashed"
            };
            let _ = writeln!(
                out,
                "  n{id} [{style}, label=\"{kind}\\n[{}]{cost}\"];",
                lanes.join(", ")
            );
            for (slot, &child) in node.operands.iter().enumerate() {
                let _ = writeln!(out, "  n{child} -> n{id} [label=\"{slot}\"];");
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;
    use crate::config::VectorizerConfig;
    use lslp_ir::{FunctionBuilder, Type};

    #[test]
    fn dot_output_is_wellformed() {
        let mut f = Function::new("k");
        let pa = f.add_param("A", Type::PTR);
        let pb = f.add_param("B", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let mut stores = Vec::new();
        for o in 0..2i64 {
            let mut b = FunctionBuilder::new(&mut f);
            let off = b.func().const_i64(o);
            let idx = b.add(i, off);
            let gb = b.gep(pb, idx, 8);
            let lb = b.load(Type::I64, gb);
            let s = b.add(lb, lb);
            let ga = b.gep(pa, idx, 8);
            stores.push(b.store(s, ga));
        }
        let cfg = VectorizerConfig::lslp();
        let addr = lslp_analysis::AddrInfo::analyze(&f);
        let positions = f.position_map();
        let use_map = f.use_map();
        let tm = TargetSpec::default();
        let g = GraphBuilder::new(&f, &cfg, &tm, &addr, &positions, &use_map).build(&stores);
        let um = f.use_map();
        let cost = crate::cost::graph_cost(&f, &g, &lslp_target::CostModel::default(), &um);
        let dot = g.to_dot(&f, Some(&cost.per_node));
        assert!(dot.starts_with("digraph slp {"), "{dot}");
        assert!(dot.trim_end().ends_with('}'), "{dot}");
        assert!(dot.contains("store"), "{dot}");
        assert!(dot.contains("cost -1"), "{dot}");
        assert!(dot.contains("n1 -> n0"), "{dot}");
        // store←add plus the add's two operand slots sharing one load node.
        assert_eq!(dot.matches("->").count(), 3, "{dot}");
    }

    #[test]
    fn dot_skips_throttled_subtrees() {
        let mut f = Function::new("k");
        let pa = f.add_param("A", Type::PTR);
        let x = f.add_param("x", Type::I64);
        let y = f.add_param("y", Type::I64);
        let i = f.add_param("i", Type::I64);
        let mut stores = Vec::new();
        for o in 0..2i64 {
            let mut b = FunctionBuilder::new(&mut f);
            let off = b.func().const_i64(o);
            let idx = b.add(i, off);
            let m = b.mul(x, y);
            let ga = b.gep(pa, idx, 8);
            stores.push(b.store(m, ga));
        }
        let cfg = VectorizerConfig::lslp();
        let addr = lslp_analysis::AddrInfo::analyze(&f);
        let positions = f.position_map();
        let use_map = f.use_map();
        let tm = TargetSpec::default();
        let mut g = GraphBuilder::new(&f, &cfg, &tm, &addr, &positions, &use_map).build(&stores);
        let before_nodes = g.to_dot(&f, None).matches("\n  n").count();
        g.demote_to_gather(1, GatherReason::Throttled);
        let dot = g.to_dot(&f, None);
        let after_nodes = dot.matches("\n  n").count();
        assert!(after_nodes <= before_nodes);
        assert!(dot.contains("throttled"), "{dot}");
    }
}
