//! # lslp — Look-ahead SLP auto-vectorization
//!
//! A from-scratch implementation of the bottom-up SLP auto-vectorizer and
//! the **LSLP** extensions of *"Look-ahead SLP: Auto-vectorization in the
//! presence of commutative operations"* (Porpodas, Rocha, Góes — CGO 2018),
//! operating on the straight-line SSA IR of [`lslp_ir`].
//!
//! The pass follows the paper's Figure 1:
//!
//! 1. collect seed groups of adjacent stores ([`seeds`]);
//! 2. build the SLP graph bottom-up along use-def chains ([`graph`]),
//!    reordering commutative operands ([`reorder`]) — LSLP additionally
//!    coarsens chains of same-opcode commutative instructions into
//!    multi-nodes ([`multinode`]) and breaks reordering ties with a
//!    recursive look-ahead score ([`score`]);
//! 3. evaluate profitability against a TTI-style cost model ([`cost`]);
//! 4. emit vector instructions and extracts ([`codegen`]), then sweep dead
//!    scalars ([`dce`]).
//!
//! The paper's four experimental configurations are captured by
//! [`VectorizerConfig`] presets: `O3` (vectorizer off), `SLP-NR` (no operand
//! reordering), `SLP` (vanilla opcode-driven reordering), and `LSLP`
//! (multi-nodes + look-ahead).
//!
//! ## Quickstart
//!
//! ```
//! use lslp::{vectorize_function, VectorizerConfig};
//! use lslp_ir::{Function, FunctionBuilder, Type};
//! use lslp_target::CostModel;
//!
//! // Build `A[i+o] = B[i+o] * B[i+o]` for o in 0..4.
//! let mut f = Function::new("square4");
//! let pa = f.add_param("A", Type::PTR);
//! let pb = f.add_param("B", Type::PTR);
//! let i = f.add_param("i", Type::I64);
//! for o in 0..4 {
//!     let mut b = FunctionBuilder::new(&mut f);
//!     let off = b.func().const_i64(o);
//!     let idx = b.add(i, off);
//!     let gb = b.gep(pb, idx, 8);
//!     let lb = b.load(Type::I64, gb);
//!     let sq = b.mul(lb, lb);
//!     let ga = b.gep(pa, idx, 8);
//!     b.store(sq, ga);
//! }
//!
//! let report = vectorize_function(&mut f, &VectorizerConfig::lslp(), &CostModel::default());
//! assert_eq!(report.trees_vectorized, 1);
//! assert!(lslp_ir::print_function(&f).contains("<4 x i64>"));
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod codegen;
pub mod config;
pub mod cost;
pub mod cse;
pub mod dce;
pub mod fold;
pub mod graph;
pub mod guard;
pub mod ifconv;
pub mod multinode;
pub mod packing;
pub mod pass;
pub mod pipeline;
pub mod pm;
pub mod reduce;
pub mod reorder;
pub mod score;
pub mod seeds;
pub mod simplify;
pub mod stats;
pub mod throttle;
pub mod unroll;

pub use api::{
    Artifact, CompileOptions, CompileOptionsBuilder, ErrorClass, LslpError, OptionsError, Session,
};
pub use codegen::CodegenStats;
#[allow(deprecated)]
pub use config::ReorderKind;
pub use config::{
    PackingStrategy, ParseStrategyError, ReorderStrategy, Sabotage, ScoreAgg, ScoreWeights,
    VectorizerConfig,
};
pub use cost::{graph_cost, graph_cost_excluding, graph_cost_reachable, CostReport};
pub use graph::{GatherReason, GraphBuilder, Node, NodeId, NodeKind, Placement, SlpGraph};
pub use guard::{GuardError, GuardMode, GuardPolicy, Incident, IncidentKind, RollbackStrategy};
pub use lslp_analysis::{AnalysisKind, AnalysisManager, CacheStats, PreservedAnalyses};
pub use packing::{function_cost, GlobalStrategy, GreedyStrategy, PackCx, Strategy};
pub use pass::{
    try_vectorize_function, try_vectorize_function_with, vectorize_function, vectorize_module,
    Attempt, VectorizeReport,
};
pub use pipeline::{
    run_pipeline, run_pipeline_module, try_run_pipeline, try_run_pipeline_with,
    try_run_vectorize_only, PipelineReport,
};
pub use pm::{
    CsePass, DcePass, FoldPass, IfConvertPass, Pass, PassContext, PassManager, PassResult,
    PassTiming, SimplifyPass, UnrollLoopsPass, VectorizePass,
};
pub use stats::{StatRow, Statistics, SyncStatistics};
pub use unroll::UNROLL_BUDGET;
