//! SLP-graph throttling (extension; the paper's related work \[22\],
//! Porpodas & Jones, *"Throttling automatic vectorization: When less is
//! more"*, PACT 2015).
//!
//! The bottom-up SLP graph sometimes contains subtrees whose vectorization
//! is a net loss (e.g. a vectorizable ALU group whose operands both end in
//! expensive gathers): plain (L)SLP only makes a whole-tree decision, so
//! one bad region can sink an otherwise profitable tree. Throttling runs a
//! bottom-up dynamic program over the graph: each vectorizable node either
//! stays vectorized (its own saving plus its children's best costs) or the
//! tree is *cut* at that point (the node's bundle is gathered instead and
//! the subtree below stays scalar). Cutting never invalidates
//! correctness — a gather of instruction results is always legal — so the
//! DP can choose the cost-minimal frontier.

use std::collections::HashSet;

use lslp_ir::{Function, UseMap, ValueId};
use lslp_target::CostModel;

use crate::graph::{GatherReason, NodeId, NodeKind, SlpGraph};

/// The outcome of throttling one graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThrottleReport {
    /// Nodes demoted to gathers (tree cut points).
    pub cuts: Vec<NodeId>,
    /// Total cost before throttling.
    pub cost_before: i64,
    /// Total cost after throttling.
    pub cost_after: i64,
}

/// Per-node DP value: the cheapest cost of the subtree rooted at a node.
struct Dp {
    /// Best achievable cost of the subtree.
    best: i64,
    /// Whether the best choice cuts (gathers) at this node.
    cut: bool,
}

fn gather_cost_of(f: &Function, tm: &CostModel, scalars: &[ValueId]) -> i64 {
    let any_non_const = scalars.iter().any(|&s| !f.is_const(s));
    let splat = any_non_const && scalars.iter().all(|&s| s == scalars[0]);
    tm.gather_cost(scalars.len() as u32, any_non_const, splat)
}

fn solve(
    f: &Function,
    graph: &SlpGraph,
    tm: &CostModel,
    per_node: &[i64],
    node: NodeId,
    memo: &mut Vec<Option<Dp>>,
) -> i64 {
    if let Some(dp) = &memo[node] {
        return dp.best;
    }
    let n = graph.node(node);
    let vectorized_cost = per_node[node]
        + n.operands.iter().map(|&c| solve(f, graph, tm, per_node, c, memo)).sum::<i64>();
    let dp = match n.kind {
        // Gathers and the root (stores) have no cut alternative: stores
        // are the seed the whole attempt exists for, and gathers already
        // are cuts.
        NodeKind::Gather { .. } | NodeKind::Store => Dp { best: vectorized_cost, cut: false },
        _ => {
            let cut_cost = gather_cost_of(f, tm, &n.scalars);
            if cut_cost < vectorized_cost {
                Dp { best: cut_cost, cut: true }
            } else {
                Dp { best: vectorized_cost, cut: false }
            }
        }
    };
    let best = dp.best;
    memo[node] = Some(dp);
    best
}

fn collect_cuts(graph: &SlpGraph, memo: &[Option<Dp>], node: NodeId, cuts: &mut Vec<NodeId>) {
    let Some(dp) = &memo[node] else { return };
    if dp.cut {
        cuts.push(node);
        return; // the subtree below stays scalar; no deeper cuts needed
    }
    for &c in &graph.node(node).operands {
        collect_cuts(graph, memo, c, cuts);
    }
}

/// Throttle a graph in place: demote cost-harmful subtrees to gathers.
///
/// `use_map` must be the same snapshot used for the surrounding cost
/// computation. Returns what was cut and the cost before/after (computed
/// with [`crate::cost::graph_cost`], so extract-cost effects are included).
pub fn throttle(
    f: &Function,
    graph: &mut SlpGraph,
    tm: &CostModel,
    use_map: &UseMap,
) -> ThrottleReport {
    let before = crate::cost::graph_cost(f, graph, tm, use_map);
    let mut memo: Vec<Option<Dp>> = (0..graph.nodes().len()).map(|_| None).collect();
    solve(f, graph, tm, &before.per_node, graph.root(), &mut memo);
    let mut cuts = Vec::new();
    collect_cuts(graph, &memo, graph.root(), &mut cuts);
    // Demote: unreachable nodes below a cut stay in the node list but are
    // detached, so codegen (a root-reachable traversal) never emits them.
    let cut_set: HashSet<NodeId> = cuts.iter().copied().collect();
    for &c in &cut_set {
        graph.demote_to_gather(c, GatherReason::Throttled);
    }
    let after = crate::cost::graph_cost_reachable(f, graph, tm, use_map);
    ThrottleReport { cuts, cost_before: before.total, cost_after: after.total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VectorizerConfig;
    use crate::graph::GraphBuilder;
    use lslp_analysis::AddrInfo;
    use lslp_ir::{FunctionBuilder, Type};

    fn build(f: &Function, seeds: &[ValueId]) -> SlpGraph {
        let cfg = VectorizerConfig::lslp();
        let tm = lslp_target::TargetSpec::default();
        let addr = AddrInfo::analyze(f);
        let positions = f.position_map();
        let use_map = f.use_map();
        GraphBuilder::new(f, &cfg, &tm, &addr, &positions, &use_map).build(seeds)
    }

    /// `A[i+o] = (x_o * y_o) ^ B[i+o]`: the xor group is worth keeping but
    /// the mul group's operands are four distinct scalars (two gathers of
    /// +2 each vs the mul's −1 saving) — cutting at the muls wins.
    #[test]
    fn cuts_gather_heavy_subtree() {
        let mut f = Function::new("t");
        let pa = f.add_param("A", Type::PTR);
        let pb = f.add_param("B", Type::PTR);
        let xs: Vec<ValueId> = (0..2).map(|k| f.add_param(format!("x{k}"), Type::I64)).collect();
        let ys: Vec<ValueId> = (0..2).map(|k| f.add_param(format!("y{k}"), Type::I64)).collect();
        let i = f.add_param("i", Type::I64);
        let mut stores = Vec::new();
        for o in 0..2i64 {
            let mut b = FunctionBuilder::new(&mut f);
            let off = b.func().const_i64(o);
            let idx = b.add(i, off);
            let gb = b.gep(pb, idx, 8);
            let lb = b.load(Type::I64, gb);
            let m = b.mul(xs[o as usize], ys[o as usize]);
            let v = b.xor(m, lb);
            let ga = b.gep(pa, idx, 8);
            stores.push(b.store(v, ga));
        }
        let mut graph = build(&f, &stores);
        let tm = CostModel::skylake_like();
        let um = f.use_map();
        let report = throttle(&f, &mut graph, &tm, &um);
        assert!(!report.cuts.is_empty(), "mul subtree should be cut");
        assert!(
            report.cost_after < report.cost_before,
            "throttling must improve: {} -> {}",
            report.cost_before,
            report.cost_after
        );
        // The cut node is now a gather with the Throttled reason.
        let cut = report.cuts[0];
        assert!(matches!(
            graph.node(cut).kind,
            NodeKind::Gather { reason: GatherReason::Throttled }
        ));
    }

    /// A fully profitable tree is left untouched.
    #[test]
    fn profitable_trees_are_not_cut() {
        let mut f = Function::new("t");
        let pa = f.add_param("A", Type::PTR);
        let pb = f.add_param("B", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let mut stores = Vec::new();
        for o in 0..4i64 {
            let mut b = FunctionBuilder::new(&mut f);
            let off = b.func().const_i64(o);
            let idx = b.add(i, off);
            let gb = b.gep(pb, idx, 8);
            let lb = b.load(Type::I64, gb);
            let s = b.add(lb, lb);
            let ga = b.gep(pa, idx, 8);
            stores.push(b.store(s, ga));
        }
        let mut graph = build(&f, &stores);
        let tm = CostModel::skylake_like();
        let um = f.use_map();
        let report = throttle(&f, &mut graph, &tm, &um);
        assert!(report.cuts.is_empty());
        assert_eq!(report.cost_before, report.cost_after);
    }

    /// Throttling can rescue a tree that would otherwise be rejected:
    /// the overall cost flips from non-profitable to profitable.
    #[test]
    fn throttling_rescues_borderline_trees() {
        // Stores of (deep gather-heavy expr) + B[i+o]: without a cut the
        // gathers outweigh everything.
        let mut f = Function::new("t");
        let pa = f.add_param("A", Type::PTR);
        let pb = f.add_param("B", Type::PTR);
        let params: Vec<ValueId> =
            (0..8).map(|k| f.add_param(format!("p{k}"), Type::I64)).collect();
        let i = f.add_param("i", Type::I64);
        let mut stores = Vec::new();
        for o in 0..2i64 {
            let mut b = FunctionBuilder::new(&mut f);
            let off = b.func().const_i64(o);
            let idx = b.add(i, off);
            let gb = b.gep(pb, idx, 8);
            let lb = b.load(Type::I64, gb);
            // A two-level scalar-parameter tree: sub(shl) shapes that group
            // but gather at every leaf.
            let k = (o * 4) as usize;
            let s1 = b.sub(params[k], params[k + 1]);
            let s2 = b.sub(params[k + 2], params[k + 3]);
            let m = b.mul(s1, s2);
            let v = b.add(m, lb);
            let ga = b.gep(pa, idx, 8);
            stores.push(b.store(v, ga));
        }
        let mut graph = build(&f, &stores);
        let tm = CostModel::skylake_like();
        let um = f.use_map();
        let report = throttle(&f, &mut graph, &tm, &um);
        assert!(report.cost_after <= report.cost_before);
        assert!(!report.cuts.is_empty(), "{}", graph.dump(&f));
    }
}

#[cfg(test)]
mod integration {
    use super::*;
    use crate::config::VectorizerConfig;
    use crate::pass::vectorize_function;
    use lslp_ir::{FunctionBuilder, Type};

    /// With throttling in the pass, a tree whose bad subtree outweighed the
    /// good part vectorizes (partially) where plain LSLP rejected it whole.
    #[test]
    fn pass_level_throttling_rescues_trees() {
        // Stores of (8-scalar-param tree) * B[i+o]: heavy gathers below the
        // mul, a profitable load/store skeleton above it.
        let build = || {
            let mut f = Function::new("t");
            let pa = f.add_param("A", Type::PTR);
            let pb = f.add_param("B", Type::PTR);
            let params: Vec<ValueId> =
                (0..8).map(|k| f.add_param(format!("p{k}"), Type::I64)).collect();
            let i = f.add_param("i", Type::I64);
            let mut stores = Vec::new();
            for o in 0..2i64 {
                let mut b = FunctionBuilder::new(&mut f);
                let off = b.func().const_i64(o);
                let idx = b.add(i, off);
                let gb = b.gep(pb, idx, 8);
                let lb = b.load(Type::I64, gb);
                let k = (o * 4) as usize;
                let s1 = b.sub(params[k], params[k + 1]);
                let s2 = b.sub(params[k + 2], params[k + 3]);
                let m = b.mul(s1, s2);
                let v = b.add(m, lb);
                let ga = b.gep(pa, idx, 8);
                stores.push(b.store(v, ga));
            }
            f
        };
        let tm = CostModel::skylake_like();
        let mut plain = build();
        let r1 = vectorize_function(&mut plain, &VectorizerConfig::lslp(), &tm);
        let mut thr = build();
        let cfg = VectorizerConfig::preset("LSLP-Throttle").unwrap();
        let r2 = vectorize_function(&mut thr, &cfg, &tm);
        assert!(r2.applied_cost <= r1.applied_cost);
        assert!(
            r2.trees_vectorized >= r1.trees_vectorized,
            "throttling must not lose trees: {} vs {}",
            r2.trees_vectorized,
            r1.trees_vectorized
        );
        lslp_ir::verify_function(&thr).unwrap();
    }

    /// Throttled codegen executes correctly: the demoted subtree stays
    /// scalar and feeds the vector code through a gather.
    #[test]
    fn throttled_codegen_preserves_semantics() {
        use lslp_interp::{run_function, Memory, Value};
        let mut f = Function::new("t");
        let pa = f.add_param("A", Type::PTR);
        let pb = f.add_param("B", Type::PTR);
        let params: Vec<ValueId> =
            (0..4).map(|k| f.add_param(format!("p{k}"), Type::I64)).collect();
        let i = f.add_param("i", Type::I64);
        let mut stores = Vec::new();
        for o in 0..2i64 {
            let mut b = FunctionBuilder::new(&mut f);
            let off = b.func().const_i64(o);
            let idx = b.add(i, off);
            let gb = b.gep(pb, idx, 8);
            let lb = b.load(Type::I64, gb);
            let k = (o * 2) as usize;
            let m = b.mul(params[k], params[k + 1]);
            let v = b.xor(m, lb);
            let ga = b.gep(pa, idx, 8);
            stores.push(b.store(v, ga));
        }
        let scalar = f.clone();
        let cfg = VectorizerConfig::preset("LSLP-Throttle").unwrap();
        vectorize_function(&mut f, &cfg, &CostModel::skylake_like());
        lslp_ir::verify_function(&f).unwrap();
        let exec = |g: &Function| {
            let mut mem = Memory::new();
            mem.alloc_i64("A", &[0; 8]);
            mem.alloc_i64("B", &[11, 22, 33, 44]);
            let mut args = vec![mem.ptr("A").unwrap(), mem.ptr("B").unwrap()];
            args.extend((0..4).map(|k| Value::Int(5 + k)));
            args.push(Value::Int(0));
            run_function(g, &args, &mut mem).unwrap();
            (mem.read_i64("A", 0), mem.read_i64("A", 1))
        };
        assert_eq!(exec(&scalar), exec(&f));
    }
}
