//! Look-ahead score calculation (paper §4.4, Listing 7 and Figure 7).
//!
//! `getLAScore(v1, v2, level)` estimates how well the use-def subgraphs
//! hanging off two candidate operands match: pairs of values that trivially
//! match (consecutive loads, same opcode, both constants) contribute 1, and
//! matching instructions recurse over *all combinations* of their operands,
//! summing (or, per footnote 4, maxing) the sub-scores.

use lslp_analysis::AddrInfo;
use lslp_ir::{Function, Opcode, ValueId};

use crate::config::{ScoreAgg, ScoreWeights};

/// The trivial matching test of Listing 6/7 (`are_consecutive_or_match`):
///
/// * two constants match;
/// * two loads match iff `b` loads the address right after `a`;
/// * two instructions of the same opcode (and attribute) match;
/// * any value matches itself (splat);
/// * everything else does not match.
pub fn consecutive_or_match(f: &Function, addr: &AddrInfo, a: ValueId, b: ValueId) -> bool {
    if a == b {
        return true;
    }
    if f.is_const(a) && f.is_const(b) {
        return true;
    }
    match (f.inst(a), f.inst(b)) {
        (Some(ia), Some(ib)) => {
            if ia.op != ib.op || ia.ty != ib.ty {
                return false;
            }
            match ia.op {
                Opcode::Load => addr.consecutive(a, b),
                _ => ia.attr == ib.attr,
            }
        }
        _ => false,
    }
}

/// Whether look-ahead should recurse through this pair: both are
/// instructions of the same opcode/type/attribute (consecutive loads also
/// recurse, through their address operands).
fn recursable(f: &Function, addr: &AddrInfo, a: ValueId, b: ValueId) -> bool {
    match (f.inst(a), f.inst(b)) {
        (Some(ia), Some(ib)) => {
            ia.op == ib.op
                && ia.ty == ib.ty
                && match ia.op {
                    Opcode::Load => addr.consecutive(a, b),
                    _ => ia.attr == ib.attr,
                }
        }
        _ => false,
    }
}

/// The weighted value of one leaf match (see [`ScoreWeights`]); 0 when the
/// pair does not match.
pub fn match_score(f: &Function, addr: &AddrInfo, a: ValueId, b: ValueId, w: &ScoreWeights) -> i64 {
    if a == b {
        return w.splat;
    }
    if f.is_const(a) && f.is_const(b) {
        return w.constants;
    }
    match (f.inst(a), f.inst(b)) {
        (Some(ia), Some(ib)) if ia.op == ib.op && ia.ty == ib.ty => match ia.op {
            Opcode::Load if addr.consecutive(a, b) => w.consecutive_load,
            Opcode::Load => 0,
            _ if ia.attr == ib.attr => w.same_opcode,
            _ => 0,
        },
        _ => 0,
    }
}

/// Listing 7: the recursive look-ahead score of a candidate pair, with the
/// paper's flat weights.
///
/// At `max_level == 0`, or whenever the pair stops matching, the score is
/// the result of the trivial match. Otherwise every combination of the
/// two values' operands is scored one level deeper and aggregated.
pub fn la_score(
    f: &Function,
    addr: &AddrInfo,
    v1: ValueId,
    v2: ValueId,
    max_level: u32,
    agg: ScoreAgg,
) -> i64 {
    la_score_weighted(f, addr, v1, v2, max_level, agg, &ScoreWeights::paper())
}

/// [`la_score`] with configurable leaf-match weights.
pub fn la_score_weighted(
    f: &Function,
    addr: &AddrInfo,
    v1: ValueId,
    v2: ValueId,
    max_level: u32,
    agg: ScoreAgg,
    w: &ScoreWeights,
) -> i64 {
    if max_level == 0 || !recursable(f, addr, v1, v2) {
        return match_score(f, addr, v1, v2, w);
    }
    let mut total = 0i64;
    for &op1 in f.args_of(v1) {
        for &op2 in f.args_of(v2) {
            let s = la_score_weighted(f, addr, op1, op2, max_level - 1, agg, w);
            total = match agg {
                ScoreAgg::Sum => total + s,
                ScoreAgg::Max => total.max(s),
            };
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use lslp_ir::{FunctionBuilder, ScalarType, Type};

    /// Reconstructs the example of Figure 7:
    ///
    /// last lane:    `(load B[i+0]) << 1`
    /// candidate 1:  `(load B[i+1]) << 2`   (loads consecutive with last)
    /// candidate 2:  `(load C[i+1]) << 3`   (different array)
    struct Fig7 {
        f: Function,
        last: ValueId,
        cand_good: ValueId,
        cand_bad: ValueId,
    }

    fn fig7() -> Fig7 {
        let mut f = Function::new("fig7");
        let bptr = f.add_param("B", Type::PTR);
        let cptr = f.add_param("C", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let c1 = b.func().const_i64(1);
        let c2 = b.func().const_i64(2);
        let c3 = b.func().const_i64(3);
        let p_b0 = b.gep(bptr, i, 8);
        let l_b0 = b.load(Type::I64, p_b0);
        let last = b.shl(l_b0, c1);
        let i1 = b.add(i, c1);
        let p_b1 = b.gep(bptr, i1, 8);
        let l_b1 = b.load(Type::I64, p_b1);
        let cand_good = b.shl(l_b1, c2);
        let p_c1 = b.gep(cptr, i1, 8);
        let l_c1 = b.load(Type::I64, p_c1);
        let cand_bad = b.shl(l_c1, c3);
        Fig7 { f, last, cand_good, cand_bad }
    }

    #[test]
    fn figure7_scores() {
        let x = fig7();
        let addr = AddrInfo::analyze(&x.f);
        // Candidate with the consecutive B-load scores 2 (load pair +
        // constant pair); the C-load candidate scores only 1 (constants).
        let good = la_score(&x.f, &addr, x.last, x.cand_good, 1, ScoreAgg::Sum);
        let bad = la_score(&x.f, &addr, x.last, x.cand_bad, 1, ScoreAgg::Sum);
        assert_eq!(good, 2);
        assert_eq!(bad, 1);
    }

    #[test]
    fn level_zero_is_trivial_match() {
        let x = fig7();
        let addr = AddrInfo::analyze(&x.f);
        // Both candidates are shifts like `last`, so at level 0 they tie.
        assert_eq!(la_score(&x.f, &addr, x.last, x.cand_good, 0, ScoreAgg::Sum), 1);
        assert_eq!(la_score(&x.f, &addr, x.last, x.cand_bad, 0, ScoreAgg::Sum), 1);
    }

    #[test]
    fn max_aggregation_caps_subscores() {
        let x = fig7();
        let addr = AddrInfo::analyze(&x.f);
        let good = la_score(&x.f, &addr, x.last, x.cand_good, 1, ScoreAgg::Max);
        let bad = la_score(&x.f, &addr, x.last, x.cand_bad, 1, ScoreAgg::Max);
        assert_eq!(good, 1);
        assert_eq!(bad, 1);
    }

    #[test]
    fn deeper_levels_see_through_geps() {
        let x = fig7();
        let addr = AddrInfo::analyze(&x.f);
        // With more levels, the consecutive-load path keeps accumulating
        // matches (through the loads' geps), so good stays ahead.
        let good = la_score(&x.f, &addr, x.last, x.cand_good, 4, ScoreAgg::Sum);
        let bad = la_score(&x.f, &addr, x.last, x.cand_bad, 4, ScoreAgg::Sum);
        assert!(good > bad, "good={good} bad={bad}");
    }

    #[test]
    fn trivial_match_rules() {
        let mut f = Function::new("m");
        let a = f.add_param("a", Type::I64);
        let b_ = f.add_param("b", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let c1 = b.func().const_i64(1);
        let c2 = b.func().const_float(ScalarType::F64, 2.0);
        let s = b.add(a, b_);
        let t = b.add(b_, a);
        let u = b.mul(a, b_);
        let addr = AddrInfo::analyze(&f);
        assert!(consecutive_or_match(&f, &addr, c1, c2), "constants match");
        assert!(consecutive_or_match(&f, &addr, s, t), "same opcode matches");
        assert!(!consecutive_or_match(&f, &addr, s, u), "different opcode");
        assert!(consecutive_or_match(&f, &addr, a, a), "same value (splat)");
        assert!(!consecutive_or_match(&f, &addr, a, b_), "different args");
        assert!(!consecutive_or_match(&f, &addr, a, s), "arg vs inst");
    }

    #[test]
    fn non_consecutive_loads_do_not_match() {
        let mut f = Function::new("l");
        let p = f.add_param("A", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let two = b.func().const_i64(2);
        let p0 = b.gep(p, i, 8);
        let l0 = b.load(Type::F64, p0);
        let i2 = b.add(i, two);
        let p2 = b.gep(p, i2, 8);
        let l2 = b.load(Type::F64, p2);
        // Gap of exactly one element would match; build it to confirm.
        let one = b.func().const_i64(1);
        let i1 = b.add(i, one);
        let p1 = b.gep(p, i1, 8);
        let l1 = b.load(Type::F64, p1);
        let addr = AddrInfo::analyze(&f);
        assert!(!consecutive_or_match(&f, &addr, l0, l2));
        let addr = AddrInfo::analyze(&f);
        assert!(consecutive_or_match(&f, &addr, l0, l1));
        assert!(!consecutive_or_match(&f, &addr, l1, l0), "direction matters");
    }
}

#[cfg(test)]
mod weight_tests {
    use super::*;
    use crate::config::ScoreWeights;
    use lslp_ir::{FunctionBuilder, Type};

    /// Under flat weights a same-opcode match ties a consecutive-load
    /// match; LLVM-like weights rank the load signal strictly higher.
    #[test]
    fn weights_break_flat_ties() {
        let mut f = Function::new("w");
        let a = f.add_param("A", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let x = f.add_param("x", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let one = b.func().const_i64(1);
        let p0 = b.gep(a, i, 8);
        let l0 = b.load(Type::I64, p0);
        let i1 = b.add(i, one);
        let p1 = b.gep(a, i1, 8);
        let l1 = b.load(Type::I64, p1);
        let s0 = b.sub(x, one);
        let s1 = b.sub(x, x);
        let addr = AddrInfo::analyze(&f);

        let flat = ScoreWeights::paper();
        assert_eq!(match_score(&f, &addr, l0, l1, &flat), 1);
        assert_eq!(match_score(&f, &addr, s0, s1, &flat), 1);

        let llvm = ScoreWeights::llvm_like();
        assert!(
            match_score(&f, &addr, l0, l1, &llvm) > match_score(&f, &addr, s0, s1, &llvm),
            "consecutive loads must outrank opcode matches"
        );
        assert_eq!(match_score(&f, &addr, x, x, &llvm), llvm.splat);
        assert_eq!(match_score(&f, &addr, one, one, &llvm), llvm.splat);
        assert_eq!(match_score(&f, &addr, l0, s0, &llvm), 0);
    }

    /// Flat weights keep `la_score` equal to the original definition.
    #[test]
    fn flat_weights_match_paper_scores() {
        let mut f = Function::new("w");
        let a = f.add_param("A", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let c1 = b.func().const_i64(1);
        let c2 = b.func().const_i64(2);
        let p0 = b.gep(a, i, 8);
        let l0 = b.load(Type::I64, p0);
        let i1 = b.add(i, c1);
        let p1 = b.gep(a, i1, 8);
        let l1 = b.load(Type::I64, p1);
        let sh0 = b.shl(l0, c1);
        let sh1 = b.shl(l1, c2);
        let addr = AddrInfo::analyze(&f);
        let flat = la_score(&f, &addr, sh0, sh1, 1, ScoreAgg::Sum);
        let weighted =
            la_score_weighted(&f, &addr, sh0, sh1, 1, ScoreAgg::Sum, &ScoreWeights::paper());
        assert_eq!(flat, weighted);
        assert_eq!(flat, 2, "load pair + constant pair");
    }
}
