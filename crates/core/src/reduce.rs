//! Horizontal-reduction vectorization (the paper's second seed class).
//!
//! §2.2 lists "instructions that lead to idioms such as reduction trees
//! (e.g. a reduction tree of additions)" as vectorization seeds alongside
//! store chains. A reduction root is a chain of one associative commutative
//! opcode whose frontier has `n ≥ 4` operands; the first `m = 2^k` of them
//! become the *lanes* of a vector built by the ordinary SLP graph, and the
//! chain itself is replaced by a logarithmic shuffle-reduce of that vector
//! (any leftover operands are folded in scalarly).
//!
//! The paper's evaluation does not exercise reductions (its figures are
//! store-seeded), so the feature is off in the standard presets and
//! enabled via [`VectorizerConfig::enable_reductions`]; the
//! `ext_reductions` binary of `lslp-bench` measures its effect as an
//! extension study.

use std::collections::HashSet;

use lslp_analysis::{AnalysisManager, PositionMap};
use lslp_ir::{Function, InstAttr, Opcode, UseMap, ValueId};
use lslp_target::CostModel;

use crate::codegen;
use crate::config::VectorizerConfig;
use crate::cost::graph_cost_excluding;
use crate::graph::GraphBuilder;
use crate::multinode::build_lane_chain;

/// A candidate reduction: the chain root, its opcode, the frontier
/// operands chosen as vector lanes, and the scalar leftovers.
#[derive(Clone, Debug)]
pub struct ReductionCandidate {
    /// The chain root instruction (its value is what gets replaced).
    pub root: ValueId,
    /// The reduced opcode.
    pub op: Opcode,
    /// Frontier operands vectorized as lanes (a power of two, ≥ 4).
    pub lanes: Vec<ValueId>,
    /// Frontier operands beyond the vector width, reduced scalarly.
    pub leftovers: Vec<ValueId>,
    /// The chain instructions (root first) that the reduction replaces.
    pub chain: Vec<ValueId>,
}

fn pow2_floor(n: usize) -> usize {
    if n == 0 {
        0
    } else {
        1 << (usize::BITS - 1 - n.leading_zeros())
    }
}

/// Find reduction roots in body order.
///
/// A root is an associative commutative instruction that is not itself
/// absorbable into a larger chain of the same opcode (otherwise the outer
/// root subsumes it).
pub fn find_candidates(
    f: &Function,
    use_map: &UseMap,
    positions: &PositionMap,
    cfg: &VectorizerConfig,
    tm: &CostModel,
) -> Vec<ReductionCandidate> {
    let empty = std::collections::HashMap::new();
    let mut out = Vec::new();
    for (_, id, inst) in f.iter_body() {
        if !(inst.op.is_commutative() && inst.op.is_associative(cfg.fast_math)) {
            continue;
        }
        let Some(elem) = inst.ty.elem() else { continue };
        if inst.ty.is_vector() {
            continue;
        }
        // Interior chain values belong to their root's candidate.
        let uses = use_map.uses(id);
        if uses.len() == 1 {
            let user = uses[0].user;
            if f.inst(user).is_some_and(|u| u.op == inst.op && u.ty == inst.ty) {
                continue;
            }
        }
        let chain = build_lane_chain(f, use_map, &empty, id, usize::MAX);
        let n = chain.operands.len();
        let m = pow2_floor(n).min(tm.max_vf(elem) as usize).min(cfg.max_vf as usize);
        if m < 4 {
            continue;
        }
        // Reduction lanes are freely permutable (the whole chain is one
        // commutative/associative expression): order them by body position
        // so structurally adjacent terms (and hence their loads) land in
        // adjacent lanes, maximizing the graph's chance of consecutive
        // access groups.
        let mut operands = chain.operands.clone();
        operands.sort_by_key(|v| positions.get(v).copied().unwrap_or(usize::MAX));
        out.push(ReductionCandidate {
            root: id,
            op: inst.op,
            lanes: operands[..m].to_vec(),
            leftovers: operands[m..].to_vec(),
            chain: chain.insts,
        });
    }
    out
}

/// The extra instructions a log-shuffle reduction emits for `m` lanes.
fn reduction_overhead(tm: &CostModel, op: Opcode, elem: lslp_ir::ScalarType, m: usize) -> i64 {
    let steps = m.trailing_zeros() as i64;
    steps * (tm.shuffle_cost + tm.vector_cost(op, elem, m as u32)) + tm.extract_cost
}

/// Result of one attempted reduction.
#[derive(Clone, Debug)]
pub struct ReductionAttempt {
    /// Human-readable description of the root.
    pub desc: String,
    /// Lane count.
    pub lanes: usize,
    /// Total cost (graph + reduction overhead − replaced scalar chain).
    pub cost: i64,
    /// Whether vector code was generated.
    pub applied: bool,
}

/// Try to vectorize one candidate; mutates `f` on success.
pub fn try_reduction(
    f: &mut Function,
    cand: &ReductionCandidate,
    cfg: &VectorizerConfig,
    tm: &CostModel,
) -> ReductionAttempt {
    try_reduction_with(f, cand, cfg, tm, &mut AnalysisManager::new())
}

/// [`try_reduction`], pulling analyses from `am`'s cache.
pub fn try_reduction_with(
    f: &mut Function,
    cand: &ReductionCandidate,
    cfg: &VectorizerConfig,
    tm: &CostModel,
    am: &mut AnalysisManager,
) -> ReductionAttempt {
    let m = cand.lanes.len();
    let elem = f.ty(cand.root).elem().expect("scalar reduction root");
    let desc = format!(
        "reduce {} x{} at %{}",
        cand.op,
        m,
        f.value_name(cand.root).unwrap_or(&cand.root.to_string())
    );

    let addr = am.addr_info(f);
    let positions = am.positions(f);
    let use_map = am.use_map(f);
    let graph = GraphBuilder::new(f, cfg, tm, &addr, &positions, &use_map).build(&cand.lanes);
    let doomed: HashSet<ValueId> = cand.chain.iter().copied().collect();
    let tree_cost = graph_cost_excluding(f, &graph, tm, &use_map, &doomed);
    let replaced_chain_ops = (m - 1) as i64;
    let cost = tree_cost.total + reduction_overhead(tm, cand.op, elem, m)
        - replaced_chain_ops * tm.scalar_cost(cand.op);
    if cost >= cfg.cost_threshold {
        return ReductionAttempt { desc, lanes: m, cost, applied: false };
    }

    // Materialize the lane tree; its root value is the vector to reduce.
    let tree = codegen::generate_tree_with(f, &graph, tm, am);
    let vec_val = tree.root_value.expect("reduction tree produces a value");

    // Insert the log-shuffle reduction after the vector value and after
    // every leftover operand's definition (all of which precede the chain
    // root, so the replacement still dominates the root's users).
    let positions = am.positions(f);
    let mut at = positions[&vec_val];
    for left in &cand.leftovers {
        if let Some(&p) = positions.get(left) {
            at = at.max(p);
        }
    }
    at += 1;
    let vty = f.ty(vec_val);
    let mut cur = vec_val;
    let mut width = m;
    while width > 1 {
        let half = width / 2;
        // Lane j takes lane j+half for j < half; upper lanes keep their
        // value (their content no longer matters).
        let mask: Vec<u32> =
            (0..m as u32).map(|j| if (j as usize) < half { j + half as u32 } else { j }).collect();
        let shuf = f.insert(at, Opcode::ShuffleVector, vty, vec![cur, cur], InstAttr::Mask(mask));
        at += 1;
        cur = f.insert(at, cand.op, vty, vec![cur, shuf], InstAttr::None);
        at += 1;
        width = half;
    }
    let lane0 = f.const_i64(0);
    let mut result = f.insert(
        at,
        Opcode::ExtractElement,
        lslp_ir::Type::Scalar(elem),
        vec![cur, lane0],
        InstAttr::None,
    );
    at += 1;
    for &left in &cand.leftovers {
        result = f.insert(at, cand.op, f.ty(cand.root), vec![result, left], InstAttr::None);
        at += 1;
    }
    // Every user of the chain root is positioned after it, which is after
    // the inserted sequence, so the replacement dominates all uses; the
    // dead chain is swept by DCE.
    f.replace_uses(cand.root, result);
    crate::dce::run(f);
    debug_assert!(lslp_ir::verify_function(f).is_ok());
    ReductionAttempt { desc, lanes: m, cost, applied: true }
}

/// Run reduction vectorization over a function until no candidate applies;
/// returns all attempts. Called by the pass driver when
/// [`VectorizerConfig::enable_reductions`] is set.
pub fn run(f: &mut Function, cfg: &VectorizerConfig, tm: &CostModel) -> Vec<ReductionAttempt> {
    run_with(f, cfg, tm, &mut AnalysisManager::new())
}

/// [`run`], sharing the caller's analysis cache.
pub fn run_with(
    f: &mut Function,
    cfg: &VectorizerConfig,
    tm: &CostModel,
    am: &mut AnalysisManager,
) -> Vec<ReductionAttempt> {
    let mut attempts = Vec::new();
    let mut tried: HashSet<ValueId> = HashSet::new();
    'restart: loop {
        let use_map = am.use_map(f);
        let positions = am.positions(f);
        let candidates = find_candidates(f, &use_map, &positions, cfg, tm);
        for cand in candidates {
            if !tried.insert(cand.root) {
                continue;
            }
            let attempt = try_reduction_with(f, &cand, cfg, tm, am);
            let applied = attempt.applied;
            attempts.push(attempt);
            if applied {
                continue 'restart;
            }
        }
        return attempts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lslp_ir::{FunctionBuilder, Type};

    /// `s = X[i]*Y[i] + X[i+1]*Y[i+1] + X[i+2]*Y[i+2] + X[i+3]*Y[i+3]`,
    /// stored scalarly — the classic dot-product step.
    fn dot4() -> (Function, ValueId) {
        let mut f = Function::new("dot4");
        let r = f.add_param("R", Type::PTR);
        let px = f.add_param("X", Type::PTR);
        let py = f.add_param("Y", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let mut terms = Vec::new();
        for o in 0..4i64 {
            let off = b.func().const_i64(o);
            let idx = b.add(i, off);
            let gx = b.gep(px, idx, 8);
            let lx = b.load(Type::F64, gx);
            let gy = b.gep(py, idx, 8);
            let ly = b.load(Type::F64, gy);
            terms.push(b.fmul(lx, ly));
        }
        let s01 = b.fadd(terms[0], terms[1]);
        let s012 = b.fadd(s01, terms[2]);
        let root = b.fadd(s012, terms[3]);
        let gr = b.gep(r, i, 8);
        b.store(root, gr);
        (f, root)
    }

    fn cfg_with_reductions() -> VectorizerConfig {
        VectorizerConfig { enable_reductions: true, ..VectorizerConfig::lslp() }
    }

    #[test]
    fn detects_dot_product_candidate() {
        let (f, root) = dot4();
        let um = f.use_map();
        let pos = f.position_map();
        let cands = find_candidates(&f, &um, &pos, &cfg_with_reductions(), &CostModel::default());
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].root, root);
        assert_eq!(cands[0].lanes.len(), 4);
        assert!(cands[0].leftovers.is_empty());
    }

    #[test]
    fn interior_chain_nodes_are_not_candidates() {
        let (f, root) = dot4();
        let um = f.use_map();
        let pos = f.position_map();
        let cands = find_candidates(&f, &um, &pos, &cfg_with_reductions(), &CostModel::default());
        // Only the outermost fadd is a root; s01/s012 are interior.
        assert!(cands.iter().all(|c| c.root == root));
    }

    #[test]
    fn vectorizes_dot_product_with_hreduce() {
        let (mut f, _) = dot4();
        let attempts = run(&mut f, &cfg_with_reductions(), &CostModel::default());
        assert_eq!(attempts.len(), 1);
        assert!(attempts[0].applied, "cost {}", attempts[0].cost);
        assert!(attempts[0].cost < 0);
        lslp_ir::verify_function(&f).unwrap();
        let text = lslp_ir::print_function(&f);
        assert!(text.contains("fmul <4 x f64>"), "{text}");
        assert_eq!(text.matches("shufflevector").count(), 2, "log2(4) steps:\n{text}");
        assert!(text.contains("extractelement"), "{text}");
        assert!(!text.contains("fadd f64"), "scalar chain must be gone:\n{text}");
    }

    #[test]
    fn reduction_preserves_semantics() {
        use lslp_interp::{run_function, Memory, Value};
        let (scalar, _) = dot4();
        let mut vectorized = scalar.clone();
        run(&mut vectorized, &cfg_with_reductions(), &CostModel::default());
        let exec = |f: &Function| {
            let mut mem = Memory::new();
            mem.alloc_f64("R", &[0.0; 8]);
            mem.alloc_f64("X", &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
            mem.alloc_f64("Y", &[0.5, 0.25, 2.0, 1.0, 1.5, 3.0, 0.125, 2.5]);
            let args = vec![
                mem.ptr("R").unwrap(),
                mem.ptr("X").unwrap(),
                mem.ptr("Y").unwrap(),
                Value::Int(0),
            ];
            run_function(f, &args, &mut mem).unwrap();
            mem.read_f64("R", 0).unwrap()
        };
        let a = exec(&scalar);
        let b = exec(&vectorized);
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        assert_eq!(a, 1.0 * 0.5 + 2.0 * 0.25 + 3.0 * 2.0 + 4.0 * 1.0);
    }

    #[test]
    fn leftover_operands_fold_scalarly() {
        // A 5-term integer reduction: 4 lanes + 1 leftover.
        let mut f = Function::new("sum5");
        let r = f.add_param("R", Type::PTR);
        let px = f.add_param("X", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let mut acc = None;
        for o in 0..5i64 {
            let off = b.func().const_i64(o);
            let idx = b.add(i, off);
            let g = b.gep(px, idx, 8);
            let l = b.load(Type::I64, g);
            acc = Some(match acc {
                None => l,
                Some(a) => b.add(a, l),
            });
        }
        let gr = b.gep(r, i, 8);
        b.store(acc.unwrap(), gr);
        let attempts = run(&mut f, &cfg_with_reductions(), &CostModel::default());
        assert!(attempts[0].applied, "cost {}", attempts[0].cost);
        assert_eq!(attempts[0].lanes, 4);
        lslp_ir::verify_function(&f).unwrap();
        // Semantics: sum of 5 elements.
        use lslp_interp::{run_function, Memory, Value};
        let mut mem = Memory::new();
        mem.alloc_i64("R", &[0; 8]);
        mem.alloc_i64("X", &[10, 20, 30, 40, 50, 60]);
        let args = vec![mem.ptr("R").unwrap(), mem.ptr("X").unwrap(), Value::Int(0)];
        run_function(&f, &args, &mut mem).unwrap();
        assert_eq!(mem.read_i64("R", 0), Some(150));
    }

    #[test]
    fn unprofitable_reductions_are_skipped() {
        // Lanes are four unrelated parameters: gathering costs more than
        // the chain saves.
        let mut f = Function::new("args4");
        let r = f.add_param("R", Type::PTR);
        let params: Vec<ValueId> =
            (0..4).map(|k| f.add_param(format!("p{k}"), Type::I64)).collect();
        let mut b = FunctionBuilder::new(&mut f);
        let s01 = b.add(params[0], params[1]);
        let s012 = b.add(s01, params[2]);
        let root = b.add(s012, params[3]);
        b.store(root, r);
        let attempts = run(&mut f, &cfg_with_reductions(), &CostModel::default());
        assert_eq!(attempts.len(), 1);
        assert!(!attempts[0].applied);
        assert!(attempts[0].cost >= 0, "cost {}", attempts[0].cost);
    }

    #[test]
    fn strict_fp_disables_fadd_reductions() {
        let (mut f, _) = dot4();
        let cfg = VectorizerConfig { fast_math: false, ..cfg_with_reductions() };
        let attempts = run(&mut f, &cfg, &CostModel::default());
        assert!(attempts.is_empty(), "fadd chains need reassociation");
    }
}
