//! Algebraic simplification ("instcombine-lite").
//!
//! Strength-reduces identities (`x+0`, `x*1`, `x&x`, `x^x`, …) and
//! canonicalizes commutative operations to put constants on the right,
//! which improves both CSE hit rates and the vectorizer's operand matching
//! (mirroring LLVM's canonicalization, which the paper's kernels were
//! subject to before reaching the SLP pass).

use lslp_ir::{Constant, Function, Module, Opcode, ValueId};

/// What a simplification round did to one instruction.
enum Action {
    /// Replace all uses with an existing value.
    Replace(ValueId),
    /// Replace all uses with a constant.
    ReplaceConst(Constant),
    /// Swap the two operands (canonicalization).
    SwapOperands,
}

fn is_const_zero(f: &Function, v: ValueId) -> bool {
    f.as_const(v).is_some_and(Constant::is_zero)
}

fn is_const_int(f: &Function, v: ValueId, k: i64) -> bool {
    f.as_const(v).and_then(Constant::as_int) == Some(k)
}

fn is_const_float(f: &Function, v: ValueId, k: f64) -> bool {
    f.as_const(v).and_then(|c| c.as_f64()) == Some(k)
}

fn simplify_inst(f: &Function, id: ValueId, fast_math: bool) -> Option<Action> {
    let inst = f.inst(id)?;
    if inst.ty.is_vector() {
        return None;
    }
    let elem = inst.ty.elem()?;
    let (a, b) = match inst.args.as_slice() {
        [a, b] => (*a, *b),
        [c, x, y] if inst.op == Opcode::Select => {
            return (x == y).then_some(Action::Replace(*x)).or_else(|| {
                f.as_const(*c)
                    .and_then(Constant::as_int)
                    .map(|cv| Action::Replace(if cv != 0 { *x } else { *y }))
            });
        }
        _ => return None,
    };
    let zero_int = || Action::ReplaceConst(Constant::int(elem, 0));
    match inst.op {
        Opcode::Add => {
            if is_const_int(f, b, 0) {
                Some(Action::Replace(a))
            } else if is_const_int(f, a, 0) {
                Some(Action::Replace(b))
            } else if f.is_const(a) && !f.is_const(b) {
                Some(Action::SwapOperands)
            } else {
                None
            }
        }
        Opcode::Sub => {
            if is_const_int(f, b, 0) {
                Some(Action::Replace(a))
            } else if a == b {
                Some(zero_int())
            } else {
                None
            }
        }
        Opcode::Mul => {
            if is_const_int(f, b, 1) {
                Some(Action::Replace(a))
            } else if is_const_int(f, a, 1) {
                Some(Action::Replace(b))
            } else if is_const_zero(f, a) || is_const_zero(f, b) {
                Some(zero_int())
            } else if f.is_const(a) && !f.is_const(b) {
                Some(Action::SwapOperands)
            } else {
                None
            }
        }
        Opcode::And => {
            if a == b || is_const_int(f, b, -1) {
                Some(Action::Replace(a))
            } else if is_const_int(f, a, -1) {
                Some(Action::Replace(b))
            } else if is_const_zero(f, a) || is_const_zero(f, b) {
                Some(zero_int())
            } else if f.is_const(a) && !f.is_const(b) {
                Some(Action::SwapOperands)
            } else {
                None
            }
        }
        Opcode::Or => {
            if a == b || is_const_zero(f, b) {
                Some(Action::Replace(a))
            } else if is_const_zero(f, a) {
                Some(Action::Replace(b))
            } else if f.is_const(a) && !f.is_const(b) {
                Some(Action::SwapOperands)
            } else {
                None
            }
        }
        Opcode::Xor => {
            if a == b {
                Some(zero_int())
            } else if is_const_zero(f, b) {
                Some(Action::Replace(a))
            } else if is_const_zero(f, a) {
                Some(Action::Replace(b))
            } else if f.is_const(a) && !f.is_const(b) {
                Some(Action::SwapOperands)
            } else {
                None
            }
        }
        Opcode::Shl | Opcode::LShr | Opcode::AShr => {
            is_const_int(f, b, 0).then_some(Action::Replace(a))
        }
        Opcode::SDiv | Opcode::UDiv => is_const_int(f, b, 1).then_some(Action::Replace(a)),
        // Float identities: exact only where IEEE-754 guarantees them;
        // the rest require fast-math (x+0.0 maps -0.0 to +0.0, x*0.0 can
        // hide NaNs).
        Opcode::FMul => {
            if is_const_float(f, b, 1.0) {
                Some(Action::Replace(a))
            } else if is_const_float(f, a, 1.0) {
                Some(Action::Replace(b))
            } else if fast_math && (is_const_float(f, a, 0.0) || is_const_float(f, b, 0.0)) {
                Some(Action::ReplaceConst(Constant::float(elem, 0.0)))
            } else if f.is_const(a) && !f.is_const(b) {
                Some(Action::SwapOperands)
            } else {
                None
            }
        }
        Opcode::FAdd => {
            if fast_math && is_const_float(f, b, 0.0) {
                Some(Action::Replace(a))
            } else if fast_math && is_const_float(f, a, 0.0) {
                Some(Action::Replace(b))
            } else if f.is_const(a) && !f.is_const(b) {
                Some(Action::SwapOperands)
            } else {
                None
            }
        }
        Opcode::FSub => {
            if fast_math && is_const_float(f, b, 0.0) {
                Some(Action::Replace(a))
            } else {
                None
            }
        }
        Opcode::FDiv => is_const_float(f, b, 1.0).then_some(Action::Replace(a)),
        _ => None,
    }
}

/// Run algebraic simplification to a fixed point; returns the number of
/// rewrites performed. Dead instructions are left for [`crate::dce::run`].
pub fn run(f: &mut Function, fast_math: bool) -> usize {
    let mut rewrites = 0;
    loop {
        let mut changed = false;
        for id in f.body().to_vec() {
            match simplify_inst(f, id, fast_math) {
                Some(Action::Replace(v)) => {
                    f.replace_uses(id, v);
                    let mut dead = std::collections::HashSet::new();
                    dead.insert(id);
                    f.remove_from_body(&dead);
                    changed = true;
                    rewrites += 1;
                }
                Some(Action::ReplaceConst(c)) => {
                    let k = f.constant(c);
                    f.replace_uses(id, k);
                    let mut dead = std::collections::HashSet::new();
                    dead.insert(id);
                    f.remove_from_body(&dead);
                    changed = true;
                    rewrites += 1;
                }
                Some(Action::SwapOperands) => {
                    let inst = f.inst_mut(id).expect("instruction");
                    inst.args.swap(0, 1);
                    rewrites += 1;
                    // Swapping is done at most once per instruction (the
                    // constant moves right and stays there), so it does not
                    // prevent termination; no `changed` needed.
                }
                None => {}
            }
        }
        if !changed {
            return rewrites;
        }
    }
}

/// Simplify every function of a module.
pub fn run_module(m: &mut Module, fast_math: bool) -> usize {
    m.functions.iter_mut().map(|f| run(f, fast_math)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lslp_ir::{FunctionBuilder, ScalarType, Type};

    fn text(f: &Function) -> String {
        lslp_ir::print_function(f)
    }

    #[test]
    fn additive_and_multiplicative_identities() {
        let mut f = Function::new("t");
        let x = f.add_param("x", Type::I64);
        let p = f.add_param("P", Type::PTR);
        let mut b = FunctionBuilder::new(&mut f);
        let zero = b.func().const_i64(0);
        let one = b.func().const_i64(1);
        let a = b.add(x, zero);
        let m = b.mul(a, one);
        b.store(m, p);
        assert_eq!(run(&mut f, false), 2);
        assert!(text(&f).contains("store i64 %x"), "{}", text(&f));
    }

    #[test]
    fn xor_and_sub_self_cancel() {
        let mut f = Function::new("t");
        let x = f.add_param("x", Type::I64);
        let p = f.add_param("P", Type::PTR);
        let mut b = FunctionBuilder::new(&mut f);
        let a = b.xor(x, x);
        let s = b.sub(x, x);
        let t = b.or(a, s);
        b.store(t, p);
        run(&mut f, false);
        crate::dce::run(&mut f);
        assert!(text(&f).contains("store i64 0"), "{}", text(&f));
        assert_eq!(f.body_len(), 1);
    }

    #[test]
    fn constants_canonicalize_right() {
        let mut f = Function::new("t");
        let x = f.add_param("x", Type::I64);
        let p = f.add_param("P", Type::PTR);
        let mut b = FunctionBuilder::new(&mut f);
        let c = b.func().const_i64(5);
        let a = b.add(c, x); // 5 + x  →  x + 5
        b.store(a, p);
        assert_eq!(run(&mut f, false), 1);
        assert!(text(&f).contains("add i64 %x, 5"), "{}", text(&f));
    }

    #[test]
    fn float_identities_respect_fast_math() {
        let mut f = Function::new("t");
        let x = f.add_param("x", Type::F64);
        let p = f.add_param("P", Type::PTR);
        let mut b = FunctionBuilder::new(&mut f);
        let z = b.func().const_float(ScalarType::F64, 0.0);
        let one = b.func().const_float(ScalarType::F64, 1.0);
        let a = b.fadd(x, z);
        let m = b.fmul(a, one);
        b.store(m, p);
        // Strict: only x*1.0 folds (exact), x+0.0 stays.
        let mut strict = f.clone();
        run(&mut strict, false);
        assert!(text(&strict).contains("fadd"), "{}", text(&strict));
        assert!(!text(&strict).contains("fmul"), "{}", text(&strict));
        // Fast-math: both fold.
        run(&mut f, true);
        crate::dce::run(&mut f);
        assert!(text(&f).contains("store f64 %x"), "{}", text(&f));
    }

    #[test]
    fn select_same_arms_collapses() {
        let mut f = Function::new("t");
        let x = f.add_param("x", Type::I64);
        let y = f.add_param("y", Type::I64);
        let p = f.add_param("P", Type::PTR);
        let mut b = FunctionBuilder::new(&mut f);
        let c = b.icmp(lslp_ir::IntPred::Slt, x, y);
        let s = b.select(c, x, x);
        b.store(s, p);
        run(&mut f, false);
        crate::dce::run(&mut f);
        assert!(text(&f).contains("store i64 %x"), "{}", text(&f));
    }

    #[test]
    fn shifts_and_divisions_by_unit() {
        let mut f = Function::new("t");
        let x = f.add_param("x", Type::I64);
        let p = f.add_param("P", Type::PTR);
        let mut b = FunctionBuilder::new(&mut f);
        let zero = b.func().const_i64(0);
        let one = b.func().const_i64(1);
        let s = b.shl(x, zero);
        let d = b.sdiv(s, one);
        b.store(d, p);
        assert_eq!(run(&mut f, false), 2);
        assert!(text(&f).contains("store i64 %x"), "{}", text(&f));
    }
}
