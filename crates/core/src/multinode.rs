//! Multi-node formation (paper §4.2, Listing 4 "coarsening mode").
//!
//! When the graph builder reaches a group of commutative instructions, LSLP
//! does not immediately recurse into the two operands. Instead it *coarsens*:
//! per lane, it chases operands that are instructions of the *same* opcode,
//! absorbing them into the lane's chain, as long as their intermediate values
//! do not escape the chain (single use). The chain's remaining operands form
//! the multi-node frontier, which is reordered as one unit.

use std::collections::HashMap;

use lslp_ir::{Function, Opcode, UseMap, ValueId};

/// One lane of a multi-node: the chain instructions (root first, in
/// discovery order) and the frontier operands they expose.
#[derive(Clone, Debug)]
pub struct LaneChain {
    /// Chain member instructions; `insts[0]` is the lane's root.
    pub insts: Vec<ValueId>,
    /// Frontier operands in discovery order; always `insts.len() + 1` long.
    pub operands: Vec<ValueId>,
}

/// Whether `cand` may be absorbed into a chain of `op` instructions.
fn absorbable(
    f: &Function,
    use_map: &UseMap,
    in_tree: &HashMap<ValueId, usize>,
    root: ValueId,
    cand: ValueId,
) -> bool {
    let Some(inst) = f.inst(cand) else { return false };
    let Some(root_inst) = f.inst(root) else { return false };
    inst.op == root_inst.op
        && inst.ty == root_inst.ty
        // The intermediate value must not escape the multi-node: its only
        // use is its chain parent (Listing 4, line 14).
        && use_map.num_uses(cand) == 1
        // Values already grouped elsewhere in the SLP graph stay there.
        && !in_tree.contains_key(&cand)
}

/// Grow one lane's chain from `root`, absorbing at most `max_insts`
/// same-opcode instructions (breadth-first, operand order).
///
/// With `max_insts == 1` this degenerates to the vanilla single-instruction
/// group: `insts = [root]`, `operands = root's two operands`.
pub fn build_lane_chain(
    f: &Function,
    use_map: &UseMap,
    in_tree: &HashMap<ValueId, usize>,
    root: ValueId,
    max_insts: usize,
) -> LaneChain {
    debug_assert!(max_insts >= 1);
    let mut insts = vec![root];
    let mut operands: Vec<ValueId> = Vec::new();
    // Worklist of frontier operands to classify, kept in breadth-first
    // discovery order so equal `max_insts` caps yield isomorphic shapes
    // across lanes.
    let mut queue: Vec<ValueId> = f.args_of(root).to_vec();
    let mut qi = 0;
    while qi < queue.len() {
        let cand = queue[qi];
        qi += 1;
        if insts.len() < max_insts && absorbable(f, use_map, in_tree, root, cand) {
            insts.push(cand);
            queue.extend_from_slice(f.args_of(cand));
        } else {
            operands.push(cand);
        }
    }
    debug_assert_eq!(operands.len(), insts.len() + 1);
    LaneChain { insts, operands }
}

/// The maximum chain size reachable from `root` (unbounded growth), used to
/// equalize chain sizes across lanes before the real formation pass.
pub fn max_chain_insts(
    f: &Function,
    use_map: &UseMap,
    in_tree: &HashMap<ValueId, usize>,
    root: ValueId,
) -> usize {
    build_lane_chain(f, use_map, in_tree, root, usize::MAX).insts.len()
}

/// Form the multi-node for a bundle of commutative roots (one per lane).
///
/// All lanes are grown to the *same* number of chain instructions — the
/// minimum of each lane's maximal chain and the configured cap — so the
/// frontier operand lists line up into the `operands × lanes` matrix that
/// the reordering pass consumes. Requires the opcode to be associative
/// under the active fast-math setting when the chain is longer than one
/// instruction (re-parenthesization happens at codegen).
pub fn form_multinode(
    f: &Function,
    use_map: &UseMap,
    in_tree: &HashMap<ValueId, usize>,
    roots: &[ValueId],
    op: Opcode,
    max_insts: usize,
    fast_math: bool,
) -> Vec<LaneChain> {
    let cap = if op.is_associative(fast_math) { max_insts.max(1) } else { 1 };
    let k =
        roots.iter().map(|&r| max_chain_insts(f, use_map, in_tree, r)).min().unwrap_or(1).min(cap);
    roots
        .iter()
        .map(|&r| {
            let chain = build_lane_chain(f, use_map, in_tree, r, k);
            debug_assert_eq!(chain.insts.len(), k);
            chain
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lslp_ir::{FunctionBuilder, Type};

    /// Builds `(((a & b) & c) & d)` and returns (f, root, leaves).
    fn chain4() -> (Function, ValueId, [ValueId; 4]) {
        let mut f = Function::new("t");
        let a = f.add_param("a", Type::I64);
        let b_ = f.add_param("b", Type::I64);
        let c = f.add_param("c", Type::I64);
        let d = f.add_param("d", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let ab = b.and(a, b_);
        let abc = b.and(ab, c);
        let root = b.and(abc, d);
        // Keep the root alive through a store so the use counts are real.
        let p = b.func().add_param("P", Type::PTR);
        b.store(root, p);
        (f, root, [a, b_, c, d])
    }

    #[test]
    fn unbounded_chain_absorbs_whole_tree() {
        let (f, root, leaves) = chain4();
        let um = f.use_map();
        let chain = build_lane_chain(&f, &um, &HashMap::new(), root, usize::MAX);
        assert_eq!(chain.insts.len(), 3);
        assert_eq!(chain.operands.len(), 4);
        for l in leaves {
            assert!(chain.operands.contains(&l), "missing leaf {l}");
        }
    }

    #[test]
    fn cap_one_is_vanilla() {
        let (f, root, _) = chain4();
        let um = f.use_map();
        let chain = build_lane_chain(&f, &um, &HashMap::new(), root, 1);
        assert_eq!(chain.insts, vec![root]);
        assert_eq!(chain.operands.len(), 2);
    }

    #[test]
    fn cap_two_stops_early() {
        let (f, root, _) = chain4();
        let um = f.use_map();
        let chain = build_lane_chain(&f, &um, &HashMap::new(), root, 2);
        assert_eq!(chain.insts.len(), 2);
        assert_eq!(chain.operands.len(), 3);
    }

    #[test]
    fn escaping_value_is_not_absorbed() {
        // abc has a second use, so it must stay a frontier operand.
        let mut f = Function::new("t");
        let a = f.add_param("a", Type::I64);
        let b_ = f.add_param("b", Type::I64);
        let c = f.add_param("c", Type::I64);
        let p = f.add_param("P", Type::PTR);
        let q = f.add_param("Q", Type::PTR);
        let mut b = FunctionBuilder::new(&mut f);
        let ab = b.and(a, b_);
        let root = b.and(ab, c);
        b.store(root, p);
        b.store(ab, q); // ab escapes
        let um = f.use_map();
        let chain = build_lane_chain(&f, &um, &HashMap::new(), root, usize::MAX);
        assert_eq!(chain.insts, vec![root]);
        assert!(chain.operands.contains(&ab));
    }

    #[test]
    fn opcode_boundary_stops_chain() {
        // and(or(a,b), c): the `or` is a frontier operand, not a chain member.
        let mut f = Function::new("t");
        let a = f.add_param("a", Type::I64);
        let b_ = f.add_param("b", Type::I64);
        let c = f.add_param("c", Type::I64);
        let p = f.add_param("P", Type::PTR);
        let mut b = FunctionBuilder::new(&mut f);
        let o = b.or(a, b_);
        let root = b.and(o, c);
        b.store(root, p);
        let um = f.use_map();
        let chain = build_lane_chain(&f, &um, &HashMap::new(), root, usize::MAX);
        assert_eq!(chain.insts, vec![root]);
        assert_eq!(chain.operands, vec![o, c]);
    }

    #[test]
    fn in_tree_values_are_frontier() {
        let (f, root, _) = chain4();
        let um = f.use_map();
        // Mark the first inner `and` as already claimed by the graph.
        let inner = f.args_of(root)[0];
        let mut in_tree = HashMap::new();
        in_tree.insert(inner, 0usize);
        let chain = build_lane_chain(&f, &um, &in_tree, root, usize::MAX);
        assert_eq!(chain.insts, vec![root]);
        assert!(chain.operands.contains(&inner));
    }

    #[test]
    fn lanes_equalized_to_min_chain() {
        // Lane 0 has a 3-deep chain; lane 1 has a 2-deep chain: both get 2.
        let mut f = Function::new("t");
        let a = f.add_param("a", Type::I64);
        let p = f.add_param("P", Type::PTR);
        let mut b = FunctionBuilder::new(&mut f);
        let x1 = b.and(a, a);
        let x2 = b.and(x1, a);
        let r0 = b.and(x2, a); // chain of 3
        let y1 = b.and(a, a);
        let r1 = b.and(y1, a); // chain of 2
        b.store(r0, p);
        b.store(r1, p);
        let um = f.use_map();
        let chains =
            form_multinode(&f, &um, &HashMap::new(), &[r0, r1], Opcode::And, usize::MAX, true);
        assert_eq!(chains[0].insts.len(), 2);
        assert_eq!(chains[1].insts.len(), 2);
        assert_eq!(chains[0].operands.len(), 3);
        assert_eq!(chains[1].operands.len(), 3);
    }

    #[test]
    fn fp_chains_require_fast_math() {
        let mut f = Function::new("t");
        let a = f.add_param("a", Type::F64);
        let p = f.add_param("P", Type::PTR);
        let mut b = FunctionBuilder::new(&mut f);
        let x1 = b.fadd(a, a);
        let r = b.fadd(x1, a);
        b.store(r, p);
        let um = f.use_map();
        let strict = form_multinode(&f, &um, &HashMap::new(), &[r], Opcode::FAdd, 8, false);
        assert_eq!(strict[0].insts.len(), 1, "no FP reassociation without fast-math");
        let fast = form_multinode(&f, &um, &HashMap::new(), &[r], Opcode::FAdd, 8, true);
        assert_eq!(fast[0].insts.len(), 2);
    }
}
