//! The `-O3`-style optimization pipeline.
//!
//! Mirrors the paper's experimental setup at our scale: every configuration
//! runs the same scalar optimization pipeline (simplification, constant
//! folding, CSE, DCE — the stand-in for `-O3`), and only the vectorizer
//! differs (`O3` = disabled, `SLP-NR`/`SLP`/`LSLP` = enabled with the
//! respective reordering strategy). Figure 14's compilation times are
//! measured over this pipeline.
//!
//! The pipeline is a thin schedule over the [`crate::pm::PassManager`]:
//! each pass runs as a guarded transaction, pulls its analyses from a
//! shared [`AnalysisManager`], and reports timings and counters that
//! surface in the [`PipelineReport`].

use std::time::{Duration, Instant};

use lslp_analysis::{AnalysisManager, CacheStats};
use lslp_ir::{Function, Module};
use lslp_target::CostModel;

use crate::config::VectorizerConfig;
use crate::guard::{GuardError, GuardMode, Incident};
use crate::pass::VectorizeReport;
use crate::pm::{
    CsePass, DcePass, FoldPass, IfConvertPass, PassContext, PassManager, PassTiming, SimplifyPass,
    UnrollLoopsPass, VectorizePass,
};
use crate::stats::Statistics;

/// Statistics from one pipeline run over a function.
#[derive(Clone, Debug, Default)]
pub struct PipelineReport {
    /// Branch diamonds turned into `select`s by if-conversion.
    pub if_converted: usize,
    /// Counted loops fully unrolled before seeding.
    pub unrolled: usize,
    /// Rewrites performed by algebraic simplification.
    pub simplified: usize,
    /// Instructions folded to constants.
    pub folded: usize,
    /// Instructions merged by CSE.
    pub cse_merged: usize,
    /// Instructions removed by DCE (all phases).
    pub dce_removed: usize,
    /// The vectorizer's report (empty when disabled).
    pub vectorize: VectorizeReport,
    /// Guard incidents from the *scalar* passes (the vectorizer's own
    /// incidents are in [`VectorizeReport::incidents`]).
    pub incidents: Vec<Incident>,
    /// Wall-clock time of the scalar pipeline (excluding the vectorizer).
    pub scalar_time: Duration,
    /// Total wall-clock time including the vectorizer.
    pub total_time: Duration,
    /// Per-pass wall-clock timings, in execution order
    /// (`lslpc --print-pass-times`).
    pub pass_timings: Vec<PassTiming>,
    /// Named per-pass counters (`lslpc --stats`).
    pub stats: Statistics,
    /// Analysis-cache hit/miss/invalidation counters for the run.
    pub analysis_cache: CacheStats,
    /// Wall-clock time spent computing analyses (cache misses).
    pub analysis_time: Duration,
}

/// Number of scalar clean-up rounds before the vectorizer.
const SCALAR_ROUNDS: usize = 2;

/// Run the full pipeline over one function.
pub fn run_pipeline(f: &mut Function, cfg: &VectorizerConfig, tm: &CostModel) -> PipelineReport {
    try_run_pipeline(f, cfg, tm)
        .unwrap_or_else(|e| panic!("pipeline aborted under the strict guard: {e}"))
}

/// [`run_pipeline`], surfacing [`GuardMode::Strict`] aborts as an error
/// instead of a panic. Every scalar pass and the vectorizer run as guarded
/// transactions under the pass manager (see `lslp::pm` and `lslp::guard`).
///
/// # Errors
///
/// In strict mode, returns the first guard incident as a [`GuardError`];
/// the function is left rolled back to its state before the failing
/// transaction.
pub fn try_run_pipeline(
    f: &mut Function,
    cfg: &VectorizerConfig,
    tm: &CostModel,
) -> Result<PipelineReport, GuardError> {
    try_run_pipeline_with(f, cfg, tm, &mut AnalysisManager::new())
}

/// [`try_run_pipeline`] over a caller-provided [`AnalysisManager`], so the
/// cache (and its counters) can outlive one pipeline run.
///
/// # Errors
///
/// See [`try_run_pipeline`].
pub fn try_run_pipeline_with(
    f: &mut Function,
    cfg: &VectorizerConfig,
    tm: &CostModel,
    am: &mut AnalysisManager,
) -> Result<PipelineReport, GuardError> {
    let start = Instant::now();
    let mut report = PipelineReport::default();
    let stats = Statistics::new();
    let cx = PassContext { cfg, tm, stats: &stats };
    let mut pm = PassManager::new(cfg.guard_policy());
    let outcome = run_schedule(f, &cx, &mut pm, am, &mut report, start);
    // Observability is filled in even when a strict-mode abort unwinds the
    // schedule, so callers can still see how far the run got.
    report.incidents = pm.take_incidents();
    report.pass_timings = pm.take_timings();
    report.stats = stats;
    report.analysis_cache = am.cache_stats();
    report.analysis_time = am.analysis_time();
    report.total_time = start.elapsed();
    if cfg.guard == GuardMode::Off {
        debug_assert!(lslp_ir::verify_function(f).is_ok());
    }
    outcome?;
    Ok(report)
}

/// The pass schedule proper: scalar rounds, vectorizer, final clean-up.
fn run_schedule(
    f: &mut Function,
    cx: &PassContext,
    pm: &mut PassManager,
    am: &mut AnalysisManager,
    report: &mut PipelineReport,
    start: Instant,
) -> Result<(), GuardError> {
    // Control-flow lowering first: if-conversion turns branch diamonds into
    // selects (including inside loop bodies), then unrolling peels counted
    // loops — after these two, any function the frontend could produce is
    // straight-line again and the scalar pipeline and vectorizer apply.
    report.if_converted = pm.run_pass(&mut IfConvertPass, f, am, cx)?;
    report.unrolled = pm.run_pass(&mut UnrollLoopsPass, f, am, cx)?;
    for _ in 0..SCALAR_ROUNDS {
        report.simplified += pm.run_pass(&mut SimplifyPass, f, am, cx)?;
        report.folded += pm.run_pass(&mut FoldPass, f, am, cx)?;
        report.cse_merged += pm.run_pass(&mut CsePass, f, am, cx)?;
        report.dce_removed += pm.run_pass(&mut DcePass, f, am, cx)?;
    }
    report.scalar_time = start.elapsed();
    let mut vp = VectorizePass::default();
    pm.run_pass(&mut vp, f, am, cx)?;
    report.vectorize = vp.take_report()?;
    // A final clean-up round: vectorization exposes dead address math (the
    // vectorizer also runs its own DCE; fold both counts together).
    report.dce_removed += report.vectorize.dce_removed + pm.run_pass(&mut DcePass, f, am, cx)?;
    Ok(())
}

/// Run only the vectorizer (no scalar pipeline) under a pass manager, so
/// the default `lslpc` path gets the same observability as `--pipeline`.
///
/// # Errors
///
/// In strict mode, returns the first guard incident as a [`GuardError`].
pub fn try_run_vectorize_only(
    f: &mut Function,
    cfg: &VectorizerConfig,
    tm: &CostModel,
) -> Result<PipelineReport, GuardError> {
    let start = Instant::now();
    let mut am = AnalysisManager::new();
    let mut report = PipelineReport::default();
    let stats = Statistics::new();
    let cx = PassContext { cfg, tm, stats: &stats };
    let mut pm = PassManager::new(cfg.guard_policy());
    let mut vp = VectorizePass::default();
    let outcome = pm.run_pass(&mut vp, f, &mut am, &cx);
    let vectorize = vp.take_report();
    report.incidents = pm.take_incidents();
    report.pass_timings = pm.take_timings();
    report.stats = stats;
    report.analysis_cache = am.cache_stats();
    report.analysis_time = am.analysis_time();
    report.total_time = start.elapsed();
    outcome?;
    report.vectorize = vectorize?;
    report.dce_removed = report.vectorize.dce_removed;
    Ok(report)
}

/// Run the pipeline over every function of a module.
pub fn run_pipeline_module(
    m: &mut Module,
    cfg: &VectorizerConfig,
    tm: &CostModel,
) -> Vec<PipelineReport> {
    m.functions.iter_mut().map(|f| run_pipeline(f, cfg, tm)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lslp_ir::{FunctionBuilder, Type};

    /// A function with fodder for every scalar pass plus a vectorizable
    /// store group.
    fn busy_function() -> Function {
        let mut f = Function::new("busy");
        let pa = f.add_param("A", Type::PTR);
        let pb = f.add_param("B", Type::PTR);
        let i = f.add_param("i", Type::I64);
        for o in 0..2i64 {
            let mut b = FunctionBuilder::new(&mut f);
            let off = b.func().const_i64(o);
            let zero = b.func().const_i64(0);
            let one = b.func().const_i64(1);
            let idx0 = b.add(i, off);
            let idx = b.add(idx0, zero); // simplifies away
            let gb = b.gep(pb, idx, 8);
            let l = b.load(Type::I64, gb);
            let l2 = {
                // Duplicate load for CSE.
                let gb2 = b.gep(pb, idx, 8);
                b.load(Type::I64, gb2)
            };
            let two = b.add(one, one); // folds to 2
            let v = b.mul(l, two);
            let w = b.add(v, l2);
            let dead = b.xor(w, w); // simplifies to 0, then dies
            let _ = dead;
            let ga = b.gep(pa, idx, 8);
            b.store(w, ga);
        }
        f
    }

    #[test]
    fn pipeline_exercises_every_pass() {
        let mut f = busy_function();
        let report = run_pipeline(&mut f, &VectorizerConfig::lslp(), &CostModel::default());
        assert!(report.simplified > 0, "simplify must fire");
        assert!(report.folded > 0, "fold must fire");
        assert!(report.cse_merged > 0, "cse must fire");
        assert!(report.dce_removed > 0, "dce must fire");
        assert_eq!(report.vectorize.trees_vectorized, 1, "{}", lslp_ir::print_function(&f));
        lslp_ir::verify_function(&f).unwrap();
    }

    #[test]
    fn o3_runs_scalar_passes_only() {
        let mut f = busy_function();
        let report = run_pipeline(&mut f, &VectorizerConfig::o3(), &CostModel::default());
        assert!(report.simplified > 0);
        assert_eq!(report.vectorize.trees_vectorized, 0);
        let text = lslp_ir::print_function(&f);
        assert!(!text.contains('<'), "O3 must stay scalar:\n{text}");
    }

    #[test]
    fn pipeline_preserves_semantics() {
        // Spot check with the interpreter-free comparison: the scalar
        // pipeline must keep the store count and improve instruction count.
        let mut f = busy_function();
        let before = f.body_len();
        run_pipeline(&mut f, &VectorizerConfig::o3(), &CostModel::default());
        let after = f.body_len();
        assert!(after < before, "pipeline must shrink the busy function");
        let stores = f.iter_body().filter(|(_, _, i)| i.op == lslp_ir::Opcode::Store).count();
        assert_eq!(stores, 2);
    }

    #[test]
    fn timings_are_recorded() {
        let mut f = busy_function();
        let report = run_pipeline(&mut f, &VectorizerConfig::lslp(), &CostModel::default());
        assert!(report.total_time >= report.scalar_time);
        assert!(report.total_time.as_nanos() > 0);
    }

    #[test]
    fn per_pass_timings_cover_the_schedule() {
        let mut f = busy_function();
        let report = run_pipeline(&mut f, &VectorizerConfig::lslp(), &CostModel::default());
        // if-convert + unroll + 2 rounds × 4 scalar passes + vectorize +
        // final dce.
        assert_eq!(report.pass_timings.len(), SCALAR_ROUNDS * 4 + 4);
        assert_eq!(report.pass_timings[0].pass, "if-convert");
        assert_eq!(report.pass_timings[1].pass, "unroll");
        let names: Vec<_> = report.pass_timings.iter().map(|t| t.pass).collect();
        assert!(names.contains(&"vectorize"));
        assert_eq!(*names.last().unwrap(), "dce");
        let total: Duration = report.pass_timings.iter().map(|t| t.time).sum();
        assert!(total <= report.total_time, "pass times must nest inside the total");
    }

    #[test]
    fn stats_registry_matches_report_counts() {
        let mut f = busy_function();
        let report = run_pipeline(&mut f, &VectorizerConfig::lslp(), &CostModel::default());
        assert_eq!(report.stats.get("simplify", "rewrites"), report.simplified as u64);
        assert_eq!(report.stats.get("fold", "constants-folded"), report.folded as u64);
        assert_eq!(report.stats.get("cse", "insts-merged"), report.cse_merged as u64);
        assert_eq!(
            report.stats.get("vectorize", "trees-vectorized"),
            report.vectorize.trees_vectorized as u64
        );
    }

    #[test]
    fn analysis_cache_is_exercised() {
        let mut f = busy_function();
        let report = run_pipeline(&mut f, &VectorizerConfig::lslp(), &CostModel::default());
        let cs = report.analysis_cache;
        assert!(cs.misses > 0, "analyses must be computed at least once");
        assert!(cs.hits > 0, "passes must share cached analyses: {cs:?}");
        assert!(report.analysis_time <= report.total_time);
    }

    #[test]
    fn vectorize_only_reports_observability() {
        let mut f = busy_function();
        let report =
            try_run_vectorize_only(&mut f, &VectorizerConfig::lslp(), &CostModel::default())
                .unwrap();
        assert_eq!(report.simplified, 0, "no scalar passes in vectorize-only mode");
        assert!(report.vectorize.trees_vectorized > 0 || !report.vectorize.attempts.is_empty());
        assert_eq!(report.pass_timings.len(), 1);
        assert_eq!(report.pass_timings[0].pass, "vectorize");
        assert!(report.analysis_cache.misses > 0);
    }
}
