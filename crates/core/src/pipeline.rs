//! The `-O3`-style optimization pipeline.
//!
//! Mirrors the paper's experimental setup at our scale: every configuration
//! runs the same scalar optimization pipeline (simplification, constant
//! folding, CSE, DCE — the stand-in for `-O3`), and only the vectorizer
//! differs (`O3` = disabled, `SLP-NR`/`SLP`/`LSLP` = enabled with the
//! respective reordering strategy). Figure 14's compilation times are
//! measured over this pipeline.

use std::time::{Duration, Instant};

use lslp_ir::{Function, Module};
use lslp_target::CostModel;

use crate::config::VectorizerConfig;
use crate::guard::{self, GuardError, GuardMode, Incident};
use crate::pass::{try_vectorize_function, VectorizeReport};
use crate::{cse, dce, fold, simplify};

/// Statistics from one pipeline run over a function.
#[derive(Clone, Debug, Default)]
pub struct PipelineReport {
    /// Rewrites performed by algebraic simplification.
    pub simplified: usize,
    /// Instructions folded to constants.
    pub folded: usize,
    /// Instructions merged by CSE.
    pub cse_merged: usize,
    /// Instructions removed by DCE (all phases).
    pub dce_removed: usize,
    /// The vectorizer's report (empty when disabled).
    pub vectorize: VectorizeReport,
    /// Guard incidents from the *scalar* passes (the vectorizer's own
    /// incidents are in [`VectorizeReport::incidents`]).
    pub incidents: Vec<Incident>,
    /// Wall-clock time of the scalar pipeline (excluding the vectorizer).
    pub scalar_time: Duration,
    /// Total wall-clock time including the vectorizer.
    pub total_time: Duration,
}

/// Number of scalar clean-up rounds before the vectorizer.
const SCALAR_ROUNDS: usize = 2;

/// Run the full pipeline over one function.
pub fn run_pipeline(f: &mut Function, cfg: &VectorizerConfig, tm: &CostModel) -> PipelineReport {
    try_run_pipeline(f, cfg, tm)
        .unwrap_or_else(|e| panic!("pipeline aborted under the strict guard: {e}"))
}

/// [`run_pipeline`], surfacing [`GuardMode::Strict`] aborts as an error
/// instead of a panic. Every scalar pass and the vectorizer run as guarded
/// transactions (see `lslp::guard`).
///
/// # Errors
///
/// In strict mode, returns the first guard incident as a [`GuardError`];
/// the function is left rolled back to its state before the failing
/// transaction.
pub fn try_run_pipeline(
    f: &mut Function,
    cfg: &VectorizerConfig,
    tm: &CostModel,
) -> Result<PipelineReport, GuardError> {
    let start = Instant::now();
    let mut report = PipelineReport::default();
    // Each scalar pass is its own transaction: a pass that panics or
    // corrupts the function is rolled back and skipped; the rest of the
    // pipeline still runs.
    let guarded = |f: &mut Function,
                   incidents: &mut Vec<Incident>,
                   pass: &str,
                   body: fn(&mut Function, &VectorizerConfig) -> usize|
     -> Result<usize, GuardError> {
        Ok(guard::run_guarded(f, cfg.guard, cfg.paranoid, pass, None, incidents, |f| {
            let n = body(f, cfg);
            (n, n > 0)
        })?
        .unwrap_or(0))
    };
    for _ in 0..SCALAR_ROUNDS {
        let inc = &mut report.incidents;
        report.simplified += guarded(f, inc, "simplify", |f, cfg| simplify::run(f, cfg.fast_math))?;
        report.folded += guarded(f, inc, "fold", |f, _| fold::run(f))?;
        report.cse_merged += guarded(f, inc, "cse", |f, _| cse::run(f))?;
        report.dce_removed += guarded(f, inc, "dce", |f, _| dce::run(f))?;
    }
    report.scalar_time = start.elapsed();
    report.vectorize = try_vectorize_function(f, cfg, tm)?;
    // A final clean-up round: vectorization exposes dead address math (the
    // vectorizer also runs its own DCE; fold both counts together).
    report.dce_removed += report.vectorize.dce_removed
        + guarded(f, &mut report.incidents, "dce", |f, _| dce::run(f))?;
    report.total_time = start.elapsed();
    if cfg.guard == GuardMode::Off {
        debug_assert!(lslp_ir::verify_function(f).is_ok());
    }
    Ok(report)
}

/// Run the pipeline over every function of a module.
pub fn run_pipeline_module(
    m: &mut Module,
    cfg: &VectorizerConfig,
    tm: &CostModel,
) -> Vec<PipelineReport> {
    m.functions.iter_mut().map(|f| run_pipeline(f, cfg, tm)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lslp_ir::{FunctionBuilder, Type};

    /// A function with fodder for every scalar pass plus a vectorizable
    /// store group.
    fn busy_function() -> Function {
        let mut f = Function::new("busy");
        let pa = f.add_param("A", Type::PTR);
        let pb = f.add_param("B", Type::PTR);
        let i = f.add_param("i", Type::I64);
        for o in 0..2i64 {
            let mut b = FunctionBuilder::new(&mut f);
            let off = b.func().const_i64(o);
            let zero = b.func().const_i64(0);
            let one = b.func().const_i64(1);
            let idx0 = b.add(i, off);
            let idx = b.add(idx0, zero); // simplifies away
            let gb = b.gep(pb, idx, 8);
            let l = b.load(Type::I64, gb);
            let l2 = {
                // Duplicate load for CSE.
                let gb2 = b.gep(pb, idx, 8);
                b.load(Type::I64, gb2)
            };
            let two = b.add(one, one); // folds to 2
            let v = b.mul(l, two);
            let w = b.add(v, l2);
            let dead = b.xor(w, w); // simplifies to 0, then dies
            let _ = dead;
            let ga = b.gep(pa, idx, 8);
            b.store(w, ga);
        }
        f
    }

    #[test]
    fn pipeline_exercises_every_pass() {
        let mut f = busy_function();
        let report = run_pipeline(&mut f, &VectorizerConfig::lslp(), &CostModel::default());
        assert!(report.simplified > 0, "simplify must fire");
        assert!(report.folded > 0, "fold must fire");
        assert!(report.cse_merged > 0, "cse must fire");
        assert!(report.dce_removed > 0, "dce must fire");
        assert_eq!(report.vectorize.trees_vectorized, 1, "{}", lslp_ir::print_function(&f));
        lslp_ir::verify_function(&f).unwrap();
    }

    #[test]
    fn o3_runs_scalar_passes_only() {
        let mut f = busy_function();
        let report = run_pipeline(&mut f, &VectorizerConfig::o3(), &CostModel::default());
        assert!(report.simplified > 0);
        assert_eq!(report.vectorize.trees_vectorized, 0);
        let text = lslp_ir::print_function(&f);
        assert!(!text.contains('<'), "O3 must stay scalar:\n{text}");
    }

    #[test]
    fn pipeline_preserves_semantics() {
        // Spot check with the interpreter-free comparison: the scalar
        // pipeline must keep the store count and improve instruction count.
        let mut f = busy_function();
        let before = f.body_len();
        run_pipeline(&mut f, &VectorizerConfig::o3(), &CostModel::default());
        let after = f.body_len();
        assert!(after < before, "pipeline must shrink the busy function");
        let stores = f.iter_body().filter(|(_, _, i)| i.op == lslp_ir::Opcode::Store).count();
        assert_eq!(stores, 2);
    }

    #[test]
    fn timings_are_recorded() {
        let mut f = busy_function();
        let report = run_pipeline(&mut f, &VectorizerConfig::lslp(), &CostModel::default());
        assert!(report.total_time >= report.scalar_time);
        assert!(report.total_time.as_nanos() > 0);
    }
}
