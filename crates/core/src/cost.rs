//! Graph cost evaluation (paper §2.2 step 4, constants from §3.1).
//!
//! The cost of the tree is the sum over nodes of
//! `VectorCost − ScalarCost` (negative is better), plus the cost of
//! gathering non-vectorizable operands into vector registers, plus one
//! extract per vectorized scalar that has a user outside the tree.

use lslp_ir::{Function, Opcode, UseMap, ValueId};
use lslp_target::CostModel;

use crate::graph::{Node, NodeId, NodeKind, SlpGraph};

/// Cost breakdown for one graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CostReport {
    /// Per-node cost, indexed by [`NodeId`].
    pub per_node: Vec<i64>,
    /// Total cost of extracts for externally-used vectorized scalars.
    pub extract_cost: i64,
    /// Grand total: `sum(per_node) + extract_cost`.
    pub total: i64,
}

fn elem_of(f: &Function, node: &Node) -> lslp_ir::ScalarType {
    let v = node.scalars[0];
    let ty = match f.opcode(v) {
        Some(Opcode::Store) => f.ty(f.args_of(v)[0]),
        _ => f.ty(v),
    };
    ty.elem().unwrap_or(lslp_ir::ScalarType::I64)
}

fn node_cost(f: &Function, node: &Node, tm: &CostModel) -> i64 {
    let lanes = node.lanes() as i64;
    let elem = elem_of(f, node);
    match &node.kind {
        NodeKind::Vector { op } => {
            tm.vector_cost(*op, elem, lanes as u32) - lanes * tm.scalar_cost(*op)
        }
        NodeKind::MultiNode { op, chains } => {
            let k = chains[0].insts.len() as i64;
            k * (tm.vector_cost(*op, elem, lanes as u32) - lanes * tm.scalar_cost(*op))
        }
        NodeKind::Load { .. } => {
            tm.vector_cost(Opcode::Load, elem, lanes as u32) - lanes * tm.scalar_cost(Opcode::Load)
        }
        NodeKind::Store => {
            // An over-wide seed store is legalized by splitting: each
            // register-sized chunk also pays the shuffle that extracts its
            // lanes (codegen emits one shuffle per chunk store).
            let chunks = tm.registers_for(elem, lanes as u32);
            let split_shuffles = if chunks > 1 { chunks * tm.shuffle_cost } else { 0 };
            tm.vector_cost(Opcode::Store, elem, lanes as u32) + split_shuffles
                - lanes * tm.scalar_cost(Opcode::Store)
        }
        NodeKind::Gather { .. } => {
            let any_non_const = node.scalars.iter().any(|&s| !f.is_const(s));
            let splat = any_non_const && node.scalars.iter().all(|&s| s == node.scalars[0]);
            tm.gather_cost(node.lanes() as u32, any_non_const, splat)
        }
    }
}

/// Whether vectorized scalar `s` has any user outside the tree (including
/// membership in a *gather* node of the same tree, which keeps the scalar
/// alive). Users in `doomed` are ignored: they are known to be deleted by
/// the caller (e.g. a reduction chain being replaced).
fn has_external_use(
    graph: &SlpGraph,
    use_map: &UseMap,
    s: ValueId,
    doomed: &std::collections::HashSet<ValueId>,
) -> bool {
    use_map.uses(s).iter().any(|u| !graph.contains(u.user) && !doomed.contains(&u.user))
}

/// Compute the cost report for a graph over the current function state.
///
/// `use_map` must be a fresh [`Function::use_map`] snapshot.
pub fn graph_cost(f: &Function, graph: &SlpGraph, tm: &CostModel, use_map: &UseMap) -> CostReport {
    graph_cost_excluding(f, graph, tm, use_map, &std::collections::HashSet::new())
}

/// Like [`graph_cost`], but uses by the `doomed` instructions do not count
/// as external (the caller guarantees their deletion — used by
/// [`crate::reduce`], whose scalar chain is replaced wholesale).
pub fn graph_cost_excluding(
    f: &Function,
    graph: &SlpGraph,
    tm: &CostModel,
    use_map: &UseMap,
    doomed: &std::collections::HashSet<ValueId>,
) -> CostReport {
    let per_node: Vec<i64> = graph.nodes().iter().map(|n| node_cost(f, n, tm)).collect();
    // Nodes detached by throttling cuts contribute nothing: they are never
    // emitted.
    let reach = graph.reachable();

    let mut extract_cost = 0;
    // Scalars referenced by reachable gather nodes stay alive; treat those
    // references as external uses of the vectorized value.
    let mut gathered: std::collections::HashSet<ValueId> = std::collections::HashSet::new();
    for (id, n) in graph.nodes().iter().enumerate() {
        if reach[id] {
            if let NodeKind::Gather { .. } = n.kind {
                gathered.extend(n.scalars.iter().copied());
            }
        }
    }
    for (s, _node) in graph.vectorized_scalars() {
        if f.ty(s).is_void() {
            continue; // stores have no users
        }
        if has_external_use(graph, use_map, s, doomed) || gathered.contains(&s) {
            extract_cost += tm.extract_for_external_use();
        }
    }
    let total =
        per_node.iter().enumerate().filter(|&(id, _)| reach[id]).map(|(_, &c)| c).sum::<i64>()
            + extract_cost;
    CostReport { per_node, extract_cost, total }
}

/// Alias of [`graph_cost`] emphasizing that detached (throttled) subtrees
/// are excluded from the total.
pub fn graph_cost_reachable(
    f: &Function,
    graph: &SlpGraph,
    tm: &CostModel,
    use_map: &UseMap,
) -> CostReport {
    graph_cost(f, graph, tm, use_map)
}

/// Convenience: the per-node cost of a single node (used in graph dumps).
pub fn single_node_cost(f: &Function, graph: &SlpGraph, id: NodeId, tm: &CostModel) -> i64 {
    node_cost(f, graph.node(id), tm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VectorizerConfig;
    use crate::graph::GraphBuilder;
    use lslp_analysis::AddrInfo;
    use lslp_ir::{FunctionBuilder, Type};

    fn graph_for(f: &Function, cfg: &VectorizerConfig, seeds: &[ValueId]) -> SlpGraph {
        let tm = CostModel::default();
        let addr = AddrInfo::analyze(f);
        let positions = f.position_map();
        let use_map = f.use_map();
        GraphBuilder::new(f, cfg, &tm, &addr, &positions, &use_map).build(seeds)
    }

    /// `A[i+o] = B[i+o] + C[i+o]` for two lanes: store −1, add −1, two load
    /// nodes −1 each → total −4.
    #[test]
    fn fully_vectorizable_two_lane_cost() {
        let mut f = Function::new("k");
        let pa = f.add_param("A", Type::PTR);
        let pb = f.add_param("B", Type::PTR);
        let pc = f.add_param("C", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let mut stores = Vec::new();
        for o in 0..2i64 {
            let mut b = FunctionBuilder::new(&mut f);
            let off = b.func().const_i64(o);
            let idx = b.add(i, off);
            let gb = b.gep(pb, idx, 8);
            let lb = b.load(Type::I64, gb);
            let gc = b.gep(pc, idx, 8);
            let lc = b.load(Type::I64, gc);
            let s = b.add(lb, lc);
            let ga = b.gep(pa, idx, 8);
            stores.push(b.store(s, ga));
        }
        let g = graph_for(&f, &VectorizerConfig::slp(), &stores);
        let um = f.use_map();
        let report = graph_cost(&f, &g, &CostModel::skylake_like(), &um);
        assert_eq!(report.total, -4, "{}", g.dump(&f));
        assert_eq!(report.extract_cost, 0);
    }

    /// A constant-only operand bundle costs 0; a mixed bundle costs +lanes.
    #[test]
    fn gather_costs_follow_paper() {
        let mut f = Function::new("k");
        let pa = f.add_param("A", Type::PTR);
        let x = f.add_param("x", Type::I64);
        let i = f.add_param("i", Type::I64);
        let mut stores = Vec::new();
        for o in 0..2i64 {
            let mut b = FunctionBuilder::new(&mut f);
            let off = b.func().const_i64(o);
            let c = b.func().const_i64(10 + o);
            let idx = b.add(i, off);
            // shl by a constant: operand slot 1 is all-constant (cost 0);
            // operand slot 0 is the argument x in both lanes (a splat).
            let v = b.shl(x, c);
            let ga = b.gep(pa, idx, 8);
            stores.push(b.store(v, ga));
        }
        let g = graph_for(&f, &VectorizerConfig::slp(), &stores);
        let um = f.use_map();
        let report = graph_cost(&f, &g, &CostModel::skylake_like(), &um);
        // store -1, shl -1, const gather 0, splat gather +1 → -1.
        assert_eq!(report.total, -1, "{}", g.dump(&f));
    }

    #[test]
    fn external_use_charges_extract() {
        // The add feeding the stores is also stored scalarly elsewhere via a
        // second (non-consecutive) store, which stays outside the tree.
        let mut f = Function::new("k");
        let pa = f.add_param("A", Type::PTR);
        let pb = f.add_param("B", Type::PTR);
        let pc = f.add_param("C", Type::PTR);
        let px = f.add_param("X", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let mut stores = Vec::new();
        let mut sum0 = None;
        for o in 0..2i64 {
            let mut b = FunctionBuilder::new(&mut f);
            let off = b.func().const_i64(o);
            let idx = b.add(i, off);
            let gb = b.gep(pb, idx, 8);
            let lb = b.load(Type::I64, gb);
            let gc = b.gep(pc, idx, 8);
            let lc = b.load(Type::I64, gc);
            let s = b.add(lb, lc);
            sum0.get_or_insert(s);
            let ga = b.gep(pa, idx, 8);
            stores.push(b.store(s, ga));
        }
        // External scalar user of lane 0's add.
        {
            let mut b = FunctionBuilder::new(&mut f);
            let gx = b.gep(px, i, 8);
            b.store(sum0.unwrap(), gx);
        }
        let g = graph_for(&f, &VectorizerConfig::slp(), &stores);
        let um = f.use_map();
        let report = graph_cost(&f, &g, &CostModel::skylake_like(), &um);
        assert_eq!(report.extract_cost, 1, "{}", g.dump(&f));
        assert_eq!(report.total, -3);
    }

    #[test]
    fn four_lane_costs_scale() {
        let mut f = Function::new("k");
        let pa = f.add_param("A", Type::PTR);
        let pb = f.add_param("B", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let mut stores = Vec::new();
        for o in 0..4i64 {
            let mut b = FunctionBuilder::new(&mut f);
            let off = b.func().const_i64(o);
            let idx = b.add(i, off);
            let gb = b.gep(pb, idx, 8);
            let lb = b.load(Type::I64, gb);
            let s = b.mul(lb, lb);
            let ga = b.gep(pa, idx, 8);
            stores.push(b.store(s, ga));
        }
        let g = graph_for(&f, &VectorizerConfig::slp(), &stores);
        let um = f.use_map();
        let report = graph_cost(&f, &g, &CostModel::skylake_like(), &um);
        // store (1-4) + mul (1-4) + load (1-4): total -9. The mul's two
        // operand slots dedupe onto one load node via the bundle cache.
        assert_eq!(report.total, -9, "{}", g.dump(&f));
    }
}
