//! Seed collection (paper §2.2, step 1).
//!
//! The most promising vectorization seeds are groups of non-dependent store
//! instructions accessing adjacent memory locations. This module finds all
//! maximal *store chains*: runs of stores to the same symbolic base whose
//! constant offsets are consecutive multiples of the access size.

use lslp_analysis::AddrInfo;
use lslp_ir::{Function, Opcode, ValueId};

/// A maximal run of consecutive stores, in increasing address order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreChain {
    /// The stores, ordered by address.
    pub stores: Vec<ValueId>,
    /// Element size in bytes.
    pub elem_bytes: u32,
}

impl StoreChain {
    /// Number of stores in the chain.
    pub fn len(&self) -> usize {
        self.stores.len()
    }

    /// Whether the chain is empty (never produced by collection).
    pub fn is_empty(&self) -> bool {
        self.stores.is_empty()
    }
}

/// Collect all store chains of length ≥ 2 in body order of their first
/// member.
pub fn collect_store_chains(f: &Function, addr: &AddrInfo) -> Vec<StoreChain> {
    // Group stores by (base, symbolic terms, access size).
    #[derive(PartialEq, Eq, Hash)]
    struct Key {
        base: ValueId,
        terms: Vec<(ValueId, i64)>,
        bytes: u32,
    }
    let mut groups: std::collections::HashMap<Key, Vec<(i64, usize, ValueId)>> =
        std::collections::HashMap::new();
    for (pos, id, inst) in f.iter_body() {
        if inst.op != Opcode::Store {
            continue;
        }
        let Some(loc) = addr.loc(id) else { continue };
        let key =
            Key { base: loc.addr.base, terms: loc.addr.offset.terms.clone(), bytes: loc.bytes };
        groups.entry(key).or_default().push((loc.addr.offset.konst, pos, id));
    }

    let mut chains = Vec::new();
    for (key, mut members) in groups {
        members.sort();
        let mut run: Vec<(usize, ValueId)> = Vec::new();
        let mut last_off = None;
        for (off, pos, id) in members {
            match last_off {
                Some(prev) if off == prev => {
                    // Duplicate address (two stores to the same slot): keep
                    // the later one out; end the run here to stay sound.
                    flush(&mut chains, &mut run, key.bytes);
                    run.push((pos, id));
                }
                Some(prev) if off == prev + key.bytes as i64 => run.push((pos, id)),
                _ => {
                    flush(&mut chains, &mut run, key.bytes);
                    run.push((pos, id));
                }
            }
            last_off = Some(off);
        }
        flush(&mut chains, &mut run, key.bytes);
    }
    // Deterministic order: by first member's body position.
    chains.sort_by_key(|c: &StoreChain| {
        let pos = f.position_map();
        c.stores.iter().map(|s| pos[s]).min().unwrap_or(usize::MAX)
    });
    chains
}

fn flush(chains: &mut Vec<StoreChain>, run: &mut Vec<(usize, ValueId)>, elem_bytes: u32) {
    if run.len() >= 2 {
        chains.push(StoreChain { stores: run.iter().map(|&(_, id)| id).collect(), elem_bytes });
    }
    run.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use lslp_ir::{FunctionBuilder, ScalarType, Type};

    fn store_at(f: &mut Function, arr: ValueId, i: ValueId, off: i64, val: ValueId) -> ValueId {
        let mut b = FunctionBuilder::new(f);
        let c = b.func().const_i64(off);
        let idx = b.add(i, c);
        let g = b.gep(arr, idx, 8);
        b.store(val, g)
    }

    #[test]
    fn finds_simple_chain() {
        let mut f = Function::new("s");
        let a = f.add_param("A", Type::PTR);
        let x = f.add_param("x", Type::I64);
        let i = f.add_param("i", Type::I64);
        let s0 = store_at(&mut f, a, i, 0, x);
        let s1 = store_at(&mut f, a, i, 1, x);
        let s2 = store_at(&mut f, a, i, 2, x);
        let addr = AddrInfo::analyze(&f);
        let chains = collect_store_chains(&f, &addr);
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].stores, vec![s0, s1, s2]);
        assert_eq!(chains[0].elem_bytes, 8);
    }

    #[test]
    fn out_of_order_stores_sort_by_address() {
        let mut f = Function::new("s");
        let a = f.add_param("A", Type::PTR);
        let x = f.add_param("x", Type::I64);
        let i = f.add_param("i", Type::I64);
        let s1 = store_at(&mut f, a, i, 1, x);
        let s0 = store_at(&mut f, a, i, 0, x);
        let addr = AddrInfo::analyze(&f);
        let chains = collect_store_chains(&f, &addr);
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].stores, vec![s0, s1]);
    }

    #[test]
    fn gaps_split_chains() {
        let mut f = Function::new("s");
        let a = f.add_param("A", Type::PTR);
        let x = f.add_param("x", Type::I64);
        let i = f.add_param("i", Type::I64);
        let s0 = store_at(&mut f, a, i, 0, x);
        let s1 = store_at(&mut f, a, i, 1, x);
        let _lone = store_at(&mut f, a, i, 4, x); // isolated: in no chain
        let s6 = store_at(&mut f, a, i, 6, x);
        let s7 = store_at(&mut f, a, i, 7, x);
        let addr = AddrInfo::analyze(&f);
        let chains = collect_store_chains(&f, &addr);
        assert_eq!(chains.len(), 2);
        assert_eq!(chains[0].stores, vec![s0, s1]);
        assert_eq!(chains[1].stores, vec![s6, s7]);
    }

    #[test]
    fn different_arrays_do_not_mix() {
        let mut f = Function::new("s");
        let a = f.add_param("A", Type::PTR);
        let b_ = f.add_param("B", Type::PTR);
        let x = f.add_param("x", Type::I64);
        let i = f.add_param("i", Type::I64);
        store_at(&mut f, a, i, 0, x);
        store_at(&mut f, b_, i, 1, x);
        let addr = AddrInfo::analyze(&f);
        assert!(collect_store_chains(&f, &addr).is_empty());
    }

    #[test]
    fn mixed_widths_do_not_mix() {
        let mut f = Function::new("s");
        let a = f.add_param("A", Type::PTR);
        let x32 = f.add_param("x", Type::Scalar(ScalarType::I32));
        let y64 = f.add_param("y", Type::I64);
        let i = f.add_param("i", Type::I64);
        {
            let mut b = FunctionBuilder::new(&mut f);
            let g = b.gep(a, i, 8);
            b.store(x32, g);
        }
        {
            let mut b = FunctionBuilder::new(&mut f);
            let one = b.func().const_i64(1);
            let idx = b.add(i, one);
            let g = b.gep(a, idx, 8);
            b.store(y64, g);
        }
        let addr = AddrInfo::analyze(&f);
        assert!(collect_store_chains(&f, &addr).is_empty());
    }

    #[test]
    fn duplicate_addresses_break_runs() {
        let mut f = Function::new("s");
        let a = f.add_param("A", Type::PTR);
        let x = f.add_param("x", Type::I64);
        let i = f.add_param("i", Type::I64);
        let s0 = store_at(&mut f, a, i, 0, x);
        let s1 = store_at(&mut f, a, i, 1, x);
        let _dup = store_at(&mut f, a, i, 1, x);
        let addr = AddrInfo::analyze(&f);
        let chains = collect_store_chains(&f, &addr);
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].stores, vec![s0, s1]);
    }
}
