//! Constant folding.
//!
//! Replaces instructions whose operands are all constants with interned
//! constants. Together with [`crate::simplify`], [`crate::cse`] and
//! [`crate::dce`] this forms the scalar `-O3`-style pipeline that precedes
//! the vectorizer (see [`crate::pipeline`]).

use lslp_ir::{
    Constant, FloatPred, Function, InstAttr, IntPred, Module, Opcode, ScalarType, ValueId,
};

fn sext(v: i64, bits: u32) -> i64 {
    if bits >= 64 {
        v
    } else {
        (v << (64 - bits)) >> (64 - bits)
    }
}

fn zext(v: i64, bits: u32) -> u64 {
    if bits >= 64 {
        v as u64
    } else {
        (v as u64) & ((1u64 << bits) - 1)
    }
}

/// Evaluate an integer binary op with wrapping semantics; `None` when the
/// operation traps (division by zero) and must be left in place.
fn eval_int(op: Opcode, bits: u32, a: i64, b: i64) -> Option<i64> {
    let shift = (b & (bits - 1) as i64) as u32;
    let r = match op {
        Opcode::Add => a.wrapping_add(b),
        Opcode::Sub => a.wrapping_sub(b),
        Opcode::Mul => a.wrapping_mul(b),
        Opcode::SDiv => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        Opcode::UDiv => {
            if b == 0 {
                return None;
            }
            (zext(a, bits) / zext(b, bits)) as i64
        }
        Opcode::SRem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        Opcode::URem => {
            if b == 0 {
                return None;
            }
            (zext(a, bits) % zext(b, bits)) as i64
        }
        Opcode::And => a & b,
        Opcode::Or => a | b,
        Opcode::Xor => a ^ b,
        Opcode::Shl => a.wrapping_shl(shift),
        Opcode::LShr => (zext(a, bits) >> shift) as i64,
        Opcode::AShr => sext(a, bits) >> shift,
        Opcode::SMin => a.min(b),
        Opcode::SMax => a.max(b),
        _ => return None,
    };
    Some(sext(r, bits))
}

fn eval_float(op: Opcode, a: f64, b: f64) -> Option<f64> {
    Some(match op {
        Opcode::FAdd => a + b,
        Opcode::FSub => a - b,
        Opcode::FMul => a * b,
        Opcode::FDiv => a / b,
        Opcode::FMin => a.min(b),
        Opcode::FMax => a.max(b),
        _ => return None,
    })
}

fn eval_icmp(p: IntPred, bits: u32, a: i64, b: i64) -> bool {
    let (ua, ub) = (zext(a, bits), zext(b, bits));
    match p {
        IntPred::Eq => a == b,
        IntPred::Ne => a != b,
        IntPred::Slt => a < b,
        IntPred::Sle => a <= b,
        IntPred::Sgt => a > b,
        IntPred::Sge => a >= b,
        IntPred::Ult => ua < ub,
        IntPred::Ule => ua <= ub,
        IntPred::Ugt => ua > ub,
        IntPred::Uge => ua >= ub,
    }
}

fn eval_fcmp(p: FloatPred, a: f64, b: f64) -> bool {
    match p {
        FloatPred::Oeq => a == b,
        FloatPred::One => a != b && !a.is_nan() && !b.is_nan(),
        FloatPred::Olt => a < b,
        FloatPred::Ole => a <= b,
        FloatPred::Ogt => a > b,
        FloatPred::Oge => a >= b,
    }
}

fn fold_scalar(
    op: Opcode,
    ty: ScalarType,
    attr: &InstAttr,
    a: &Constant,
    b: &Constant,
) -> Option<Constant> {
    match (op, attr) {
        (Opcode::ICmp, InstAttr::IntPred(p)) => {
            let bits = a.scalar_ty()?.bits();
            Some(Constant::int(
                ScalarType::I8,
                eval_icmp(*p, bits, a.as_int()?, b.as_int()?) as i64,
            ))
        }
        (Opcode::FCmp, InstAttr::FloatPred(p)) => {
            Some(Constant::int(ScalarType::I8, eval_fcmp(*p, a.as_f64()?, b.as_f64()?) as i64))
        }
        _ if ty.is_float() => {
            let r = eval_float(op, a.as_f64()?, b.as_f64()?)?;
            Some(Constant::float(ty, if ty == ScalarType::F32 { r as f32 as f64 } else { r }))
        }
        _ if ty.is_int() => {
            Some(Constant::int(ty, eval_int(op, ty.bits(), a.as_int()?, b.as_int()?)?))
        }
        _ => None,
    }
}

/// Fold one instruction's constant result, if computable.
fn fold_inst(f: &Function, id: ValueId) -> Option<Constant> {
    let inst = f.inst(id)?;
    let consts: Option<Vec<&Constant>> = inst.args.iter().map(|&a| f.as_const(a)).collect();
    let consts = consts?;
    match inst.op {
        op if op.is_binary() || matches!(op, Opcode::ICmp | Opcode::FCmp) => {
            let elem = match op {
                Opcode::ICmp | Opcode::FCmp => f.ty(inst.args[0]).elem()?,
                _ => inst.ty.elem()?,
            };
            if inst.ty.is_vector() {
                return None; // vector folding handled lane-wise elsewhere
            }
            fold_scalar(op, elem, &inst.attr, consts[0], consts[1])
        }
        Opcode::Select => {
            let c = consts[0].as_int()?;
            Some(if c != 0 { consts[1].clone() } else { consts[2].clone() })
        }
        op if op.is_cast() => {
            if inst.ty.is_vector() {
                return None;
            }
            let dst = inst.ty.elem()?;
            let src = f.ty(inst.args[0]).elem()?;
            match op {
                Opcode::Sext | Opcode::Trunc => Some(Constant::int(dst, consts[0].as_int()?)),
                Opcode::Zext => {
                    let bits = src.bits();
                    let z = if bits >= 64 {
                        consts[0].as_int()? as u64
                    } else {
                        (consts[0].as_int()? as u64) & ((1u64 << bits) - 1)
                    };
                    Some(Constant::int(dst, z as i64))
                }
                Opcode::Sitofp => Some(Constant::float(dst, consts[0].as_int()? as f64)),
                Opcode::Fpext => Some(Constant::float(dst, consts[0].as_f64()?)),
                Opcode::Fptrunc => Some(Constant::float(dst, consts[0].as_f64()? as f32 as f64)),
                // fptosi saturation duplicated from the interpreter would be
                // another source of divergence; leave it to runtime.
                _ => None,
            }
        }
        _ => None,
    }
}

/// Run constant folding to a fixed point; returns the number of
/// instructions folded. Folded instructions are left in the body for
/// [`crate::dce::run`] to sweep.
pub fn run(f: &mut Function) -> usize {
    let mut folded = 0;
    loop {
        let mut changed = false;
        for id in f.body().to_vec() {
            if let Some(c) = fold_inst(f, id) {
                let k = f.constant(c);
                f.replace_uses(id, k);
                // Remove the now-unused instruction eagerly so repeated
                // rounds terminate.
                let mut dead = std::collections::HashSet::new();
                dead.insert(id);
                f.remove_from_body(&dead);
                folded += 1;
                changed = true;
            }
        }
        if !changed {
            return folded;
        }
    }
}

/// Fold every function of a module; returns total folds.
pub fn run_module(m: &mut Module) -> usize {
    m.functions.iter_mut().map(run).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lslp_ir::{FunctionBuilder, Type};

    #[test]
    fn folds_integer_chains() {
        let mut f = Function::new("t");
        let p = f.add_param("P", Type::PTR);
        let mut b = FunctionBuilder::new(&mut f);
        let c2 = b.func().const_i64(2);
        let c3 = b.func().const_i64(3);
        let x = b.add(c2, c3); // 5
        let y = b.mul(x, x); // 25
        b.store(y, p);
        assert_eq!(run(&mut f), 2);
        let text = lslp_ir::print_function(&f);
        assert!(text.contains("store i64 25"), "{text}");
    }

    #[test]
    fn folds_float_and_cmp_and_select() {
        let mut f = Function::new("t");
        let p = f.add_param("P", Type::PTR);
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.func().const_float(ScalarType::F64, 0.5);
        let q = b.func().const_float(ScalarType::F64, 0.25);
        let s = b.fadd(h, q); // 0.75
        let c = b.fcmp(FloatPred::Ogt, s, q); // true
        let one = b.func().const_i64(1);
        let two = b.func().const_i64(2);
        let m = b.select(c, one, two); // 1
        b.store(m, p);
        assert_eq!(run(&mut f), 3);
        let text = lslp_ir::print_function(&f);
        assert!(text.contains("store i64 1"), "{text}");
    }

    #[test]
    fn division_by_zero_is_not_folded() {
        let mut f = Function::new("t");
        let p = f.add_param("P", Type::PTR);
        let mut b = FunctionBuilder::new(&mut f);
        let c1 = b.func().const_i64(1);
        let c0 = b.func().const_i64(0);
        let d = b.sdiv(c1, c0);
        b.store(d, p);
        assert_eq!(run(&mut f), 0);
        assert_eq!(f.body_len(), 2);
    }

    #[test]
    fn narrow_widths_wrap() {
        let mut f = Function::new("t");
        let p = f.add_param("P", Type::PTR);
        let mut b = FunctionBuilder::new(&mut f);
        let a = b.func().const_int(ScalarType::I8, 100);
        let c = b.func().const_int(ScalarType::I8, 100);
        let s = b.add(a, c); // 200 wraps to -56
        b.store(s, p);
        run(&mut f);
        let text = lslp_ir::print_function(&f);
        assert!(text.contains("store i8 -56"), "{text}");
    }

    #[test]
    fn non_constant_operands_are_left_alone() {
        let mut f = Function::new("t");
        let x = f.add_param("x", Type::I64);
        let p = f.add_param("P", Type::PTR);
        let mut b = FunctionBuilder::new(&mut f);
        let c = b.func().const_i64(3);
        let s = b.add(x, c);
        b.store(s, p);
        assert_eq!(run(&mut f), 0);
    }
}
