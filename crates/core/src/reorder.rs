//! Operand reordering strategies.
//!
//! The input is the operand matrix of a (multi-)node: for each lane, the
//! list of frontier operands (freely permutable because the owning
//! instructions are commutative). The output is the `slots × lanes`
//! `final_order` array of paper Listing 5: operands assigned to slots so
//! that each slot's lane values form the next vectorization candidates.
//!
//! Three strategies (selected by [`ReorderStrategy`]):
//!
//! * **NoReorder** (`SLP-NR`): keep the original order.
//! * **Opcode** (vanilla SLP): a per-lane swap of the two operands when the
//!   immediate opcodes differ and swapping matches the previous lane better
//!   — deliberately blind beyond one level, reproducing the failure modes of
//!   the paper's Listings 1–2.
//! * **LookAhead** (LSLP): the single-pass mode-tracking algorithm of
//!   Listing 5, with `get_best` (Listing 6) consulting the recursive
//!   look-ahead score of Listing 7 to break ties.

use lslp_analysis::AddrInfo;
use lslp_ir::{Function, Opcode, ValueId};

use crate::config::{ReorderStrategy, VectorizerConfig};
use crate::score::{consecutive_or_match, la_score_weighted};

/// Per-slot search state (paper Table 1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OperandMode {
    /// Look for a constant.
    Const,
    /// Look for a load consecutive to the previous lane's.
    Load,
    /// Look for an instruction of the same opcode.
    Opcode,
    /// Look for the exact same value (broadcast).
    Splat,
    /// Vectorization failed for this slot; defer to other slots.
    Failed,
}

fn initial_mode(f: &Function, v: ValueId) -> OperandMode {
    if f.is_const(v) {
        OperandMode::Const
    } else if f.opcode(v) == Some(Opcode::Load) {
        OperandMode::Load
    } else {
        OperandMode::Opcode
    }
}

/// Listing 6: pick the best candidate for one slot in one lane.
///
/// Returns the chosen value (removed from `candidates`) and the slot's new
/// mode. `None` means the slot defers: either it was already failed, or no
/// candidate matched (newly failed) — leftovers are assigned afterwards.
fn get_best(
    f: &Function,
    addr: &AddrInfo,
    mode: OperandMode,
    last: ValueId,
    candidates: &mut Vec<ValueId>,
    cfg: &VectorizerConfig,
) -> (Option<ValueId>, OperandMode) {
    match mode {
        OperandMode::Failed => (None, OperandMode::Failed),
        OperandMode::Splat => {
            if let Some(pos) = candidates.iter().position(|&c| c == last) {
                let v = candidates.remove(pos);
                (Some(v), OperandMode::Splat)
            } else {
                // The broadcast is broken; degrade to generic matching.
                get_best(f, addr, OperandMode::Opcode, last, candidates, cfg)
            }
        }
        OperandMode::Const | OperandMode::Load | OperandMode::Opcode => {
            let matches: Vec<usize> = candidates
                .iter()
                .enumerate()
                .filter(|&(_, &c)| consecutive_or_match(f, addr, last, c))
                .map(|(i, _)| i)
                .collect();
            match matches.len() {
                0 => (None, OperandMode::Failed),
                1 => (Some(candidates.remove(matches[0])), mode),
                _ => {
                    let mut best = matches[0];
                    if mode == OperandMode::Opcode {
                        // Look-ahead tie-breaking over increasing levels.
                        for level in 1..=cfg.la_depth {
                            let scores: Vec<i64> = matches
                                .iter()
                                .map(|&ix| {
                                    la_score_weighted(
                                        f,
                                        addr,
                                        last,
                                        candidates[ix],
                                        level,
                                        cfg.score_agg,
                                        &cfg.score_weights,
                                    )
                                })
                                .collect();
                            if scores.windows(2).any(|w| w[0] != w[1]) {
                                let hi = scores
                                    .iter()
                                    .enumerate()
                                    .max_by_key(|&(_, s)| *s)
                                    .map(|(i, _)| i)
                                    .unwrap();
                                best = matches[hi];
                                break;
                            }
                        }
                    }
                    (Some(candidates.remove(best)), mode)
                }
            }
        }
    }
}

/// Listing 5: LSLP's top-level operand reordering.
///
/// `lane_operands[lane]` lists that lane's frontier operands; all lanes must
/// have the same length. Returns `final_order[slot][lane]`.
pub fn reorder_lookahead(
    f: &Function,
    addr: &AddrInfo,
    lane_operands: &[Vec<ValueId>],
    cfg: &VectorizerConfig,
) -> Vec<Vec<ValueId>> {
    let lanes = lane_operands.len();
    let nops = lane_operands[0].len();
    debug_assert!(lane_operands.iter().all(|l| l.len() == nops));

    let mut final_order: Vec<Vec<Option<ValueId>>> = vec![vec![None; lanes]; nops];
    let mut mode = Vec::with_capacity(nops);
    // 1. Strip the first lane: accept its operands in their original order.
    for (i, &v) in lane_operands[0].iter().enumerate() {
        final_order[i][0] = Some(v);
        mode.push(initial_mode(f, v));
    }
    // 2. For every other lane, find the best candidate per slot.
    for lane in 1..lanes {
        let mut candidates = lane_operands[lane].clone();
        for (i, m) in mode.iter_mut().enumerate() {
            if *m == OperandMode::Failed {
                continue;
            }
            let last = final_order[i][lane - 1].expect("previous lane filled");
            let (best, new_mode) = get_best(f, addr, *m, last, &mut candidates, cfg);
            *m = new_mode;
            if let Some(b) = best {
                final_order[i][lane] = Some(b);
                if cfg.splat_mode && b == last && *m != OperandMode::Failed {
                    *m = OperandMode::Splat;
                }
            }
        }
        // Failed (and newly-failed) slots take the leftovers in order.
        let mut leftovers = candidates.into_iter();
        for slot in final_order.iter_mut() {
            if slot[lane].is_none() {
                slot[lane] = Some(leftovers.next().expect("operand counts are equal per lane"));
            }
        }
        debug_assert!(leftovers.next().is_none(), "every candidate must be placed");
    }
    final_order
        .into_iter()
        .map(|slot| slot.into_iter().map(|v| v.expect("slot filled")).collect())
        .collect()
}

/// Transpose `lane_operands[lane][op]` into `final_order[slot][lane]`
/// without any reordering (the `SLP-NR` configuration).
pub fn reorder_none(lane_operands: &[Vec<ValueId>]) -> Vec<Vec<ValueId>> {
    let lanes = lane_operands.len();
    let nops = lane_operands[0].len();
    (0..nops).map(|i| (0..lanes).map(|l| lane_operands[l][i]).collect()).collect()
}

/// Vanilla SLP reordering: for each lane beyond the first, swap the two
/// operands when doing so better matches the *previous lane's* chosen
/// operands by immediate opcode (or load consecutiveness). Ties keep the
/// original order — which is exactly why vanilla SLP cannot decide
/// Listing 2's all-`mul` case or Figure 2's all-`shl` case.
pub fn reorder_vanilla(
    f: &Function,
    addr: &AddrInfo,
    lane_operands: &[Vec<ValueId>],
) -> Vec<Vec<ValueId>> {
    if lane_operands[0].len() != 2 {
        return reorder_none(lane_operands);
    }
    let lanes = lane_operands.len();
    let mut out: Vec<Vec<ValueId>> = (0..2).map(|_| Vec::with_capacity(lanes)).collect();
    out[0].push(lane_operands[0][0]);
    out[1].push(lane_operands[0][1]);
    for lane in 1..lanes {
        let (a, b) = (lane_operands[lane][0], lane_operands[lane][1]);
        let (p0, p1) = (out[0][lane - 1], out[1][lane - 1]);
        let keep = consecutive_or_match(f, addr, p0, a) as i64
            + consecutive_or_match(f, addr, p1, b) as i64;
        let swapped = consecutive_or_match(f, addr, p0, b) as i64
            + consecutive_or_match(f, addr, p1, a) as i64;
        if swapped > keep {
            out[0].push(b);
            out[1].push(a);
        } else {
            out[0].push(a);
            out[1].push(b);
        }
    }
    out
}

/// Dispatch on the configured strategy. Non-commutative callers should not
/// invoke this; the graph builder recurses in operand order for those.
pub fn reorder_operands(
    f: &Function,
    addr: &AddrInfo,
    lane_operands: &[Vec<ValueId>],
    cfg: &VectorizerConfig,
) -> Vec<Vec<ValueId>> {
    match cfg.reorder {
        ReorderStrategy::NoReorder => reorder_none(lane_operands),
        ReorderStrategy::Opcode => reorder_vanilla(f, addr, lane_operands),
        ReorderStrategy::LookAhead => reorder_lookahead(f, addr, lane_operands, cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lslp_ir::{FunctionBuilder, Type};

    /// Asserts each lane of the result is a permutation of the input lane.
    fn assert_permutation(lane_operands: &[Vec<ValueId>], result: &[Vec<ValueId>]) {
        for (lane, ops) in lane_operands.iter().enumerate() {
            let mut got: Vec<ValueId> = result.iter().map(|slot| slot[lane]).collect();
            let mut want = ops.clone();
            got.sort();
            want.sort();
            assert_eq!(got, want, "lane {lane} is not a permutation");
        }
    }

    /// Listing 1: `sub1 + load1` / `load2 + sub2` — vanilla swaps lane 1.
    #[test]
    fn vanilla_fixes_listing1() {
        let mut f = Function::new("l1");
        let a = f.add_param("A", Type::PTR);
        let x = f.add_param("x", Type::I64);
        let i = f.add_param("i", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let one = b.func().const_i64(1);
        let p0 = b.gep(a, i, 8);
        let load1 = b.load(Type::I64, p0);
        let i1 = b.add(i, one);
        let p1 = b.gep(a, i1, 8);
        let load2 = b.load(Type::I64, p1);
        let sub1 = b.sub(x, one);
        let sub2 = b.sub(x, x);
        let addr = AddrInfo::analyze(&f);
        let lanes = vec![vec![sub1, load1], vec![load2, sub2]];
        let out = reorder_vanilla(&f, &addr, &lanes);
        assert_permutation(&lanes, &out);
        assert_eq!(out[0], vec![sub1, sub2]);
        assert_eq!(out[1], vec![load1, load2]);
    }

    /// Listing 2: all operands are `mul` — vanilla keeps the (wrong) order,
    /// look-ahead picks the right pairing.
    #[test]
    fn lookahead_fixes_listing2_where_vanilla_fails() {
        let mut f = Function::new("l2");
        let pa = f.add_param("A", Type::PTR);
        let pb = f.add_param("B", Type::PTR);
        let pc = f.add_param("C", Type::PTR);
        let pd = f.add_param("D", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let one = b.func().const_i64(1);
        let i1 = b.add(i, one);
        let ld = |b: &mut FunctionBuilder, arr, idx| {
            let p = b.gep(arr, idx, 8);
            b.load(Type::I64, p)
        };
        let a0 = ld(&mut b, pa, i);
        let b0 = ld(&mut b, pb, i);
        let c0 = ld(&mut b, pc, i);
        let d0 = ld(&mut b, pd, i);
        let a1 = ld(&mut b, pa, i1);
        let b1 = ld(&mut b, pb, i1);
        let c1 = ld(&mut b, pc, i1);
        let d1 = ld(&mut b, pd, i1);
        let mul11 = b.mul(a0, b0);
        let mul12 = b.mul(c0, d0);
        let mul21 = b.mul(a1, b1);
        let mul22 = b.mul(c1, d1);
        let addr = AddrInfo::analyze(&f);
        // Lane 0: mul11 + mul12; lane 1 arrives swapped: mul22 + mul21.
        let lanes = vec![vec![mul11, mul12], vec![mul22, mul21]];

        let vanilla = reorder_vanilla(&f, &addr, &lanes);
        assert_permutation(&lanes, &vanilla);
        assert_eq!(vanilla[0], vec![mul11, mul22], "vanilla keeps the bad order");

        let cfg = VectorizerConfig::lslp();
        let la = reorder_lookahead(&f, &addr, &lanes, &cfg);
        assert_permutation(&lanes, &la);
        assert_eq!(la[0], vec![mul11, mul21], "look-ahead pairs A*B with A*B");
        assert_eq!(la[1], vec![mul12, mul22]);
    }

    /// Figure 2: both operands are shifts; look-ahead sees the loads behind
    /// them and swaps lane 1 so the loads line up.
    #[test]
    fn lookahead_fixes_fig2_load_mismatch() {
        let mut f = Function::new("fig2");
        let pb = f.add_param("B", Type::PTR);
        let pc = f.add_param("C", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let consts: Vec<ValueId> = (1..=4).map(|k| b.func().const_i64(k)).collect();
        let one = consts[0];
        let i1 = b.add(i, one);
        let ld = |b: &mut FunctionBuilder, arr, idx| {
            let p = b.gep(arr, idx, 8);
            b.load(Type::I64, p)
        };
        let b0 = ld(&mut b, pb, i);
        let c0 = ld(&mut b, pc, i);
        let b1 = ld(&mut b, pb, i1);
        let c1 = ld(&mut b, pc, i1);
        let s_b0 = b.shl(b0, consts[0]);
        let s_c0 = b.shl(c0, consts[1]);
        let s_c1 = b.shl(c1, consts[2]);
        let s_b1 = b.shl(b1, consts[3]);
        let addr = AddrInfo::analyze(&f);
        // Lane 0: B<<1 & C<<2; lane 1: C<<3 & B<<4.
        let lanes = vec![vec![s_b0, s_c0], vec![s_c1, s_b1]];

        let vanilla = reorder_vanilla(&f, &addr, &lanes);
        assert_eq!(vanilla[0], vec![s_b0, s_c1], "vanilla cannot break the tie");

        let cfg = VectorizerConfig::lslp();
        let la = reorder_lookahead(&f, &addr, &lanes, &cfg);
        assert_eq!(la[0], vec![s_b0, s_b1], "look-ahead aligns the B-loads");
        assert_eq!(la[1], vec![s_c0, s_c1], "look-ahead aligns the C-loads");
    }

    #[test]
    fn const_mode_fails_on_missing_constant() {
        // Slot seeded with a constant; next lane offers none.
        let mut f = Function::new("cm");
        let x = f.add_param("x", Type::I64);
        let y = f.add_param("y", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let c = b.func().const_i64(7);
        let s0 = b.add(x, y);
        let s1 = b.add(y, x);
        let t0 = b.mul(x, y);
        let addr = AddrInfo::analyze(&f);
        let lanes = vec![vec![c, s0], vec![s1, t0]];
        let cfg = VectorizerConfig::lslp();
        let out = reorder_lookahead(&f, &addr, &lanes, &cfg);
        assert_permutation(&lanes, &out);
        // Slot 1 (seeded with add) must take the add; slot 0 fails and takes
        // the leftover mul.
        assert_eq!(out[1], vec![s0, s1]);
        assert_eq!(out[0], vec![c, t0]);
    }

    #[test]
    fn splat_mode_prefers_repeated_value() {
        let mut f = Function::new("sp");
        let x = f.add_param("x", Type::I64);
        let y = f.add_param("y", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let s = b.add(x, y); // the splat value
        let t1 = b.mul(x, y);
        let t2 = b.mul(y, x);
        let t3 = b.mul(x, x);
        let addr = AddrInfo::analyze(&f);
        // Three lanes; `s` appears in all of them.
        let lanes = vec![vec![s, t1], vec![t2, s], vec![s, t3]];
        let cfg = VectorizerConfig::lslp();
        let out = reorder_lookahead(&f, &addr, &lanes, &cfg);
        assert_permutation(&lanes, &out);
        assert_eq!(out[0], vec![s, s, s], "slot 0 collects the splat");
        assert_eq!(out[1], vec![t1, t2, t3]);
    }

    #[test]
    fn no_reorder_is_identity_transpose() {
        let mut f = Function::new("nr");
        let x = f.add_param("x", Type::I64);
        let y = f.add_param("y", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let s0 = b.add(x, y);
        let s1 = b.add(y, x);
        let lanes = vec![vec![x, s0], vec![s1, y]];
        let out = reorder_none(&lanes);
        assert_eq!(out[0], vec![x, s1]);
        assert_eq!(out[1], vec![s0, y]);
    }

    #[test]
    fn lookahead_depth_zero_takes_first_match() {
        // With la_depth == 0 ties are not broken: first matching candidate
        // wins, reproducing LSLP-LA0's near-SLP behaviour.
        let mut f = Function::new("la0");
        let pa = f.add_param("A", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let x = f.add_param("x", Type::I64);
        let y = f.add_param("y", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let one = b.func().const_i64(1);
        let i1 = b.add(i, one);
        let p0 = b.gep(pa, i, 8);
        let l0 = b.load(Type::I64, p0);
        let p1 = b.gep(pa, i1, 8);
        let l1 = b.load(Type::I64, p1);
        let m0 = b.mul(l0, x);
        let m1 = b.mul(l1, x);
        let m2 = b.mul(y, y);
        let addr = AddrInfo::analyze(&f);
        let lanes = vec![vec![m0, m2], vec![m2, m1]];
        let cfg = VectorizerConfig { la_depth: 0, ..VectorizerConfig::lslp() };
        let out = reorder_lookahead(&f, &addr, &lanes, &cfg);
        // First match in candidate order for slot 0 lane 1 is m2.
        assert_eq!(out[0][1], m2);
        // With depth > 0 the load-backed mul wins instead.
        let cfg = VectorizerConfig::lslp();
        let out = reorder_lookahead(&f, &addr, &lanes, &cfg);
        assert_eq!(out[0][1], m1);
    }

    #[test]
    fn multinode_width_matrices_are_permuted_correctly() {
        // Four operands per lane (a 3-instruction multi-node frontier).
        let mut f = Function::new("mn");
        let pa = f.add_param("A", Type::PTR);
        let pb = f.add_param("B", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let x = f.add_param("x", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let one = b.func().const_i64(1);
        let i1 = b.add(i, one);
        let ld = |b: &mut FunctionBuilder, arr, idx| {
            let p = b.gep(arr, idx, 8);
            b.load(Type::I64, p)
        };
        let a0 = ld(&mut b, pa, i);
        let a1 = ld(&mut b, pa, i1);
        let b0 = ld(&mut b, pb, i);
        let b1 = ld(&mut b, pb, i1);
        let c = b.func().const_i64(9);
        let addr = AddrInfo::analyze(&f);
        let lanes = vec![vec![a0, b0, c, x], vec![x, c, b1, a1]];
        let cfg = VectorizerConfig::lslp();
        let out = reorder_lookahead(&f, &addr, &lanes, &cfg);
        assert_permutation(&lanes, &out);
        assert_eq!(out[0], vec![a0, a1], "A-loads pair up");
        assert_eq!(out[1], vec![b0, b1], "B-loads pair up");
        assert_eq!(out[2], vec![c, c], "constants pair up");
        assert_eq!(out[3], vec![x, x], "splat arg pairs up");
    }
}

#[cfg(test)]
mod fig8_tests {
    use super::*;
    use crate::config::VectorizerConfig;
    use lslp_ir::{FunctionBuilder, Type};

    /// Reconstructs the multi-node reordering example of Figure 8: four
    /// lanes, operand slots [shl, load, const, shl]; lane 2 offers a load
    /// where a constant is expected (slot 2 transitions to FAILED); the two
    /// shifts per lane are distinguishable only by look-ahead into their
    /// loads (B[i+k] vs C[i+k]).
    #[test]
    fn figure8_multinode_reordering() {
        let mut f = Function::new("fig8");
        let pb = f.add_param("B", Type::PTR);
        let pc = f.add_param("C", Type::PTR);
        let pd = f.add_param("D", Type::PTR);
        let pe = f.add_param("E", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let c1 = b.func().const_i64(1);
        let c2 = b.func().const_i64(2);

        let mut lanes_ops: Vec<Vec<ValueId>> = Vec::new();
        let mut b_shifts = Vec::new();
        let mut c_shifts = Vec::new();
        let mut d_loads = Vec::new();
        let ld = |b: &mut FunctionBuilder, arr, k: i64| {
            let off = b.func().const_i64(k);
            let idx = b.add(i, off);
            let p = b.gep(arr, idx, 8);
            b.load(Type::I64, p)
        };
        for k in 0..4i64 {
            let lb = ld(&mut b, pb, k);
            let sb = b.shl(lb, c1);
            let lc = ld(&mut b, pc, k);
            let sc = b.shl(lc, c2);
            let ldk = ld(&mut b, pd, k);
            // Lane 2's "constant" slot holds a load of E[0] instead
            // (Figure 8's yellow load that flips slot 2 to FAILED).
            let third = if k == 2 { ld(&mut b, pe, 0) } else { c1 };
            b_shifts.push(sb);
            c_shifts.push(sc);
            d_loads.push(ldk);
            // Present the operands in a per-lane shuffled order so the
            // reordering has real work to do.
            let ops = match k {
                0 => vec![sb, ldk, third, sc],
                1 => vec![ldk, sc, sb, third],
                2 => vec![third, sb, sc, ldk],
                _ => vec![sc, third, ldk, sb],
            };
            lanes_ops.push(ops);
        }

        let addr = AddrInfo::analyze(&f);
        let cfg = VectorizerConfig::lslp();
        let out = reorder_lookahead(&f, &addr, &lanes_ops, &cfg);

        // Slot 0 collects the B-shifts across all four lanes (look-ahead
        // sees the consecutive B-loads), slot 3 the C-shifts.
        assert_eq!(out[0], b_shifts, "slot 0 must gather the B-side shifts");
        assert_eq!(out[3], c_shifts, "slot 3 must gather the C-side shifts");
        // Slot 1 collects the consecutive D-loads.
        assert_eq!(out[1], d_loads, "slot 1 must gather the D loads");
        // Slot 2 starts in CONST mode, fails at lane 2 (a load appears),
        // and takes the leftovers from then on: [1, 1, E-load, 1].
        assert_eq!(out[2][0], c1);
        assert_eq!(out[2][1], c1);
        assert!(f.opcode(out[2][2]) == Some(Opcode::Load), "lane 2 leftover is the E load");
        assert_eq!(out[2][3], c1);
    }
}
