//! The stable embedding API: validated [`CompileOptions`], the
//! [`Session`] facade, and the consolidated [`LslpError`] type.
//!
//! Everything a host program needs to drive the compiler lives here:
//!
//! ```
//! use lslp::api::{CompileOptions, Session};
//!
//! let opts = CompileOptions::preset("lslp")
//!     .target("avx512")
//!     .look_ahead(3)
//!     .time_budget_ms(50)
//!     .build()
//!     .unwrap();
//! let mut session = Session::new(opts);
//! let artifact = session
//!     .compile("kernel k(f64* A, f64* B, i64 i) { for o in 0..4 { A[i+o] = B[i+o] * B[i+o]; } }")
//!     .unwrap();
//! assert!(artifact.ir().contains("<4 x f64>"));
//! ```
//!
//! The builder validates *combinations*, not just individual values:
//! asking for look-ahead tuning on a preset that never reorders, or
//! paranoid differential execution with the guard off, is rejected with a
//! typed [`OptionsError`] instead of being silently ignored.
//!
//! [`LslpError`] consolidates the failure taxonomy that used to be split
//! between the CLI driver and the compile daemon. Every error carries a
//! stable [`ErrorClass`] with a fixed process exit code: `Usage` → 2,
//! `Input` → 3, `Internal` → 1.

use std::fmt;

use lslp_analysis::AnalysisManager;
use lslp_ir::Module;
use lslp_target::{TargetParseError, TargetSpec};

use crate::config::{PackingStrategy, ReorderStrategy, Sabotage, ScoreWeights, VectorizerConfig};
use crate::guard::{GuardMode, RollbackStrategy};
use crate::pipeline::{try_run_pipeline_with, try_run_vectorize_only, PipelineReport};

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// How a failure should be classified at the process boundary, so scripts
/// and the compile service can tell user error from compiler bug.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ErrorClass {
    /// Bad invocation or inconsistent options: exit 2.
    Usage,
    /// The *input* is at fault (SLC parse/type/verify error): exit 3.
    Input,
    /// The compiler itself failed (strict-guard abort, runtime failure):
    /// exit 1.
    Internal,
}

impl ErrorClass {
    /// The stable process exit code for this class.
    pub fn exit_code(self) -> i32 {
        match self {
            ErrorClass::Usage => 2,
            ErrorClass::Input => 3,
            ErrorClass::Internal => 1,
        }
    }
}

/// Why a [`CompileOptions`] build was rejected.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum OptionsError {
    /// The preset name matches no known configuration.
    UnknownPreset(String),
    /// The target spec string did not parse (unknown name or feature).
    BadTarget(TargetParseError),
    /// The guard mode name matches no known mode.
    UnknownGuard(String),
    /// A value is out of its legal range.
    BadValue {
        /// The option at fault.
        option: &'static str,
        /// What was wrong with it.
        why: String,
    },
    /// Two settings contradict each other (e.g. look-ahead tuning on a
    /// preset that never reorders).
    Inconsistent {
        /// The option that cannot take effect.
        option: &'static str,
        /// Why the combination is contradictory.
        why: String,
    },
}

impl fmt::Display for OptionsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptionsError::UnknownPreset(name) => {
                write!(f, "unknown configuration `{name}` (try O3, SLP-NR, SLP, LSLP)")
            }
            OptionsError::BadTarget(e) => write!(f, "{e}"),
            OptionsError::UnknownGuard(name) => {
                write!(
                    f,
                    "unknown guard mode `{name}` (try off, rollback, strict, snapshot, differential)"
                )
            }
            OptionsError::BadValue { option, why } => write!(f, "bad {option} value: {why}"),
            OptionsError::Inconsistent { option, why } => {
                write!(f, "inconsistent options: {option} {why}")
            }
        }
    }
}

impl std::error::Error for OptionsError {}

/// The one error type of the public API: options, input, and compiler
/// failures, each with a stable [`ErrorClass`] and exit code.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LslpError {
    /// Rejected options ([`ErrorClass::Usage`]).
    Options(OptionsError),
    /// Other bad invocation, e.g. an unknown flag value
    /// ([`ErrorClass::Usage`]).
    Usage(String),
    /// The submitted source does not lex/parse/verify
    /// ([`ErrorClass::Input`]).
    Input(String),
    /// The compiler itself failed: strict-guard abort, runtime failure
    /// ([`ErrorClass::Internal`]).
    Internal(String),
}

impl LslpError {
    /// Classify for exit-code mapping.
    pub fn class(&self) -> ErrorClass {
        match self {
            LslpError::Options(_) | LslpError::Usage(_) => ErrorClass::Usage,
            LslpError::Input(_) => ErrorClass::Input,
            LslpError::Internal(_) => ErrorClass::Internal,
        }
    }

    /// The stable process exit code (Usage → 2, Input → 3, Internal → 1).
    pub fn exit_code(&self) -> i32 {
        self.class().exit_code()
    }
}

impl fmt::Display for LslpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LslpError::Options(e) => e.fmt(f),
            LslpError::Usage(m) | LslpError::Input(m) | LslpError::Internal(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for LslpError {}

impl From<OptionsError> for LslpError {
    fn from(e: OptionsError) -> LslpError {
        LslpError::Options(e)
    }
}

// ---------------------------------------------------------------------------
// CompileOptions
// ---------------------------------------------------------------------------

/// Validated, immutable compiler options. Construct through
/// [`CompileOptions::preset`] (the builder); the accessors expose the
/// resolved configuration.
#[derive(Clone, Debug)]
pub struct CompileOptions {
    preset: String,
    config: VectorizerConfig,
    target: TargetSpec,
    pipeline: bool,
}

impl CompileOptions {
    /// Start building options from a named preset (`O3`, `SLP-NR`, `SLP`,
    /// `LSLP`, `LSLP-LA{n}`, `LSLP-Multi{n}`; case-insensitive).
    pub fn preset(name: &str) -> CompileOptionsBuilder {
        CompileOptionsBuilder::new(name)
    }

    /// The preset the options were built from (canonical spelling).
    pub fn preset_name(&self) -> &str {
        &self.preset
    }

    /// The resolved vectorizer configuration.
    pub fn config(&self) -> &VectorizerConfig {
        &self.config
    }

    /// The resolved target machine description.
    pub fn target(&self) -> &TargetSpec {
        &self.target
    }

    /// Whether [`Session::compile`] runs the full scalar+vector pipeline
    /// (default) or the vectorizer alone.
    pub fn pipeline(&self) -> bool {
        self.pipeline
    }
}

impl Default for CompileOptions {
    /// The paper's headline configuration on the default target.
    fn default() -> CompileOptions {
        CompileOptions::preset("LSLP").build().expect("the default preset is valid")
    }
}

/// Resolve a preset name case-insensitively to its canonical spelling,
/// keeping the numeric suffixes of `LSLP-LA{n}` / `LSLP-Multi{n}` intact.
fn canonical_preset(name: &str) -> Option<String> {
    if VectorizerConfig::preset(name).is_some() {
        return Some(name.to_string());
    }
    for fixed in ["O3", "SLP-NR", "SLP", "LSLP", "LSLP-Throttle"] {
        if name.eq_ignore_ascii_case(fixed) {
            return Some(fixed.to_string());
        }
    }
    for prefix in ["LSLP-LA", "LSLP-Multi"] {
        if name.len() > prefix.len() && name[..prefix.len()].eq_ignore_ascii_case(prefix) {
            let candidate = format!("{prefix}{}", &name[prefix.len()..]);
            if VectorizerConfig::preset(&candidate).is_some() {
                return Some(candidate);
            }
        }
    }
    None
}

/// Builder for [`CompileOptions`]; see [`CompileOptions::preset`].
///
/// Setters record intent; [`CompileOptionsBuilder::build`] resolves and
/// validates everything at once, so error reporting can consider the whole
/// combination.
#[derive(Clone, Debug)]
pub struct CompileOptionsBuilder {
    preset: String,
    target: Option<String>,
    look_ahead: Option<u32>,
    multinode_limit: Option<usize>,
    score_weights: Option<ScoreWeights>,
    max_vf: Option<u32>,
    time_budget_ms: Option<u64>,
    max_graph_nodes: Option<usize>,
    guard: Option<String>,
    packing: Option<String>,
    paranoid: bool,
    throttle: Option<bool>,
    reductions: Option<bool>,
    pipeline: bool,
    sabotage: Sabotage,
}

impl CompileOptionsBuilder {
    fn new(preset: &str) -> CompileOptionsBuilder {
        CompileOptionsBuilder {
            preset: preset.to_string(),
            target: None,
            look_ahead: None,
            multinode_limit: None,
            score_weights: None,
            max_vf: None,
            time_budget_ms: None,
            max_graph_nodes: None,
            guard: None,
            packing: None,
            paranoid: false,
            throttle: None,
            reductions: None,
            pipeline: true,
            sabotage: Sabotage::None,
        }
    }

    /// Select the target machine by spec string, e.g. `"avx512"` or
    /// `"sse4.2+fast-div"` (see `lslp_target::TargetSpec::parse`).
    pub fn target(mut self, spec: &str) -> Self {
        self.target = Some(spec.to_string());
        self
    }

    /// Override the look-ahead depth (only meaningful for presets that
    /// reorder with look-ahead; rejected otherwise).
    pub fn look_ahead(mut self, depth: u32) -> Self {
        self.look_ahead = Some(depth);
        self
    }

    /// Cap the per-lane multi-node size (LSLP presets only).
    pub fn multinode_limit(mut self, max_insts: usize) -> Self {
        self.multinode_limit = Some(max_insts);
        self
    }

    /// Override the look-ahead leaf-match weights (look-ahead presets
    /// only).
    pub fn score_weights(mut self, weights: ScoreWeights) -> Self {
        self.score_weights = Some(weights);
        self
    }

    /// Cap the vector factor below the target's register width.
    pub fn max_vf(mut self, vf: u32) -> Self {
        self.max_vf = Some(vf);
        self
    }

    /// Wall-clock compile budget per function, in milliseconds.
    pub fn time_budget_ms(mut self, ms: u64) -> Self {
        self.time_budget_ms = Some(ms);
        self
    }

    /// Node-count fuel per seed attempt.
    pub fn max_graph_nodes(mut self, nodes: usize) -> Self {
        self.max_graph_nodes = Some(nodes);
        self
    }

    /// Guard mode by name (`off` | `rollback` | `strict`), or a rollback
    /// *strategy* spelling: `snapshot` (rollback mode restoring from a full
    /// pre-pass clone — the debug fallback) or `differential` (rollback mode
    /// that performs the delta rollback *and* checks it against a snapshot,
    /// panicking on divergence). Plain `rollback`/`strict` use the default
    /// delta-log strategy.
    pub fn guard(mut self, mode: &str) -> Self {
        self.guard = Some(mode.to_string());
        self
    }

    /// Statement-packing strategy by name (`greedy` | `global`): greedy
    /// per-lane-cheapest commit (the paper's algorithm, the default) or
    /// goSLP-style global pack-set selection, which is never costlier
    /// than greedy on the same input (see `docs/PACKING.md`).
    pub fn packing(mut self, strategy: &str) -> Self {
        self.packing = Some(strategy.to_string());
        self
    }

    /// Differentially execute every committed transform against its
    /// pre-transform snapshot (slow; requires the guard to be on).
    pub fn paranoid(mut self, on: bool) -> Self {
        self.paranoid = on;
        self
    }

    /// Enable or disable SLP-graph throttling.
    pub fn throttle(mut self, on: bool) -> Self {
        self.throttle = Some(on);
        self
    }

    /// Enable or disable horizontal-reduction vectorization.
    pub fn reductions(mut self, on: bool) -> Self {
        self.reductions = Some(on);
        self
    }

    /// Run only the vectorizer in [`Session::compile`], skipping the
    /// scalar passes (the `--pipeline`-off path of `lslpc`).
    pub fn vectorize_only(mut self) -> Self {
        self.pipeline = false;
        self
    }

    /// Test-only fault injection (see [`crate::config::Sabotage`]):
    /// deliberately miscompile so the oracle test suite can prove it
    /// would catch the bug. Not part of the supported API surface.
    #[doc(hidden)]
    pub fn sabotage(mut self, s: Sabotage) -> Self {
        self.sabotage = s;
        self
    }

    /// Resolve and validate the whole combination.
    ///
    /// # Errors
    ///
    /// Returns the first [`OptionsError`] found: unknown preset/target/
    /// guard names, out-of-range values, or contradictory combinations.
    pub fn build(self) -> Result<CompileOptions, OptionsError> {
        let preset = canonical_preset(&self.preset)
            .ok_or_else(|| OptionsError::UnknownPreset(self.preset.clone()))?;
        let mut cfg = VectorizerConfig::preset(&preset).expect("canonical names resolve");
        let target = match &self.target {
            Some(spec) => TargetSpec::parse(spec).map_err(OptionsError::BadTarget)?,
            None => TargetSpec::default(),
        };

        // Reordering knobs only make sense where reordering happens.
        let look_ahead_capable = cfg.reorder == ReorderStrategy::LookAhead;
        if self.look_ahead.is_some() && !look_ahead_capable {
            return Err(OptionsError::Inconsistent {
                option: "look_ahead",
                why: format!("preset `{preset}` does not use look-ahead reordering"),
            });
        }
        if self.score_weights.is_some() && !look_ahead_capable {
            return Err(OptionsError::Inconsistent {
                option: "score_weights",
                why: format!("preset `{preset}` never consults the look-ahead score"),
            });
        }
        if self.multinode_limit.is_some() && !look_ahead_capable {
            return Err(OptionsError::Inconsistent {
                option: "multinode_limit",
                why: format!("preset `{preset}` does not form multi-nodes"),
            });
        }
        if !cfg.enabled {
            for (set, option) in [
                (self.max_vf.is_some(), "max_vf"),
                (self.max_graph_nodes.is_some(), "max_graph_nodes"),
                (self.throttle == Some(true), "throttle"),
                (self.reductions == Some(true), "reductions"),
            ] {
                if set {
                    return Err(OptionsError::Inconsistent {
                        option,
                        why: format!("preset `{preset}` disables the vectorizer"),
                    });
                }
            }
        }
        if let Some(limit) = self.multinode_limit {
            if limit == 0 {
                return Err(OptionsError::BadValue {
                    option: "multinode_limit",
                    why: "must be at least 1 (1 disables multi-node formation)".into(),
                });
            }
            cfg.max_multinode_insts = limit;
        }
        if let Some(depth) = self.look_ahead {
            cfg.la_depth = depth;
        }
        if let Some(w) = self.score_weights {
            cfg.score_weights = w;
        }
        if let Some(vf) = self.max_vf {
            if vf < 2 {
                return Err(OptionsError::BadValue {
                    option: "max_vf",
                    why: format!("{vf} leaves nothing to vectorize (minimum 2)"),
                });
            }
            cfg.max_vf = vf;
        }
        if let Some(ms) = self.time_budget_ms {
            if ms == 0 {
                return Err(OptionsError::BadValue {
                    option: "time_budget_ms",
                    why: "a zero budget would reject every seed".into(),
                });
            }
            cfg.time_budget_ms = Some(ms);
        }
        if let Some(nodes) = self.max_graph_nodes {
            if nodes == 0 {
                return Err(OptionsError::BadValue {
                    option: "max_graph_nodes",
                    why: "a zero budget would gather every bundle".into(),
                });
            }
            cfg.max_graph_nodes = nodes;
        }
        if let Some(mode) = &self.guard {
            // `snapshot` / `differential` select a rollback *strategy* on top
            // of rollback mode; the plain mode names keep the delta default.
            match mode.as_str() {
                "snapshot" => {
                    cfg.guard = GuardMode::Rollback;
                    cfg.rollback = RollbackStrategy::Snapshot;
                }
                "differential" => {
                    cfg.guard = GuardMode::Rollback;
                    cfg.rollback = RollbackStrategy::Differential;
                }
                _ => {
                    cfg.guard = GuardMode::parse(mode)
                        .ok_or_else(|| OptionsError::UnknownGuard(mode.clone()))?;
                }
            }
        }
        if let Some(p) = &self.packing {
            // The knob parses like every other strategy knob
            // (`ReorderStrategy`, `TargetSpec::parse`): exact lowercase
            // spellings, typed error listing the alternatives.
            if !cfg.enabled {
                return Err(OptionsError::Inconsistent {
                    option: "packing",
                    why: format!("preset `{preset}` disables the vectorizer"),
                });
            }
            cfg.packing = p
                .parse::<PackingStrategy>()
                .map_err(|e| OptionsError::BadValue { option: "packing", why: e.to_string() })?;
        }
        if self.paranoid && cfg.guard == GuardMode::Off {
            return Err(OptionsError::Inconsistent {
                option: "paranoid",
                why: "requires the guard (paranoid checks run against guard snapshots)".into(),
            });
        }
        cfg.paranoid = self.paranoid;
        if let Some(t) = self.throttle {
            cfg.throttle = t;
        }
        if let Some(r) = self.reductions {
            cfg.enable_reductions = r;
        }
        cfg.sabotage = self.sabotage;

        Ok(CompileOptions { preset, config: cfg, target, pipeline: self.pipeline })
    }
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

/// The result of one [`Session::compile`]: the optimized module plus the
/// per-function pipeline reports.
#[derive(Clone, Debug)]
pub struct Artifact {
    /// The optimized module.
    pub module: Module,
    /// One report per function, in module order.
    pub reports: Vec<PipelineReport>,
}

impl Artifact {
    /// The optimized IR as text.
    pub fn ir(&self) -> String {
        lslp_ir::print_module(&self.module)
    }

    /// Total trees vectorized across all functions.
    pub fn trees_vectorized(&self) -> usize {
        self.reports.iter().map(|r| r.vectorize.trees_vectorized).sum()
    }
}

/// A compilation session: owns the options, the analysis cache, and the
/// pass pipeline. Feed it SLC source with [`Session::compile`]; reuse one
/// session for many compiles to keep the analysis-cache counters
/// cumulative.
#[derive(Clone, Debug)]
pub struct Session {
    options: CompileOptions,
    am: AnalysisManager,
}

impl Session {
    /// A session over validated options.
    pub fn new(options: CompileOptions) -> Session {
        Session { options, am: AnalysisManager::new() }
    }

    /// The session's options.
    pub fn options(&self) -> &CompileOptions {
        &self.options
    }

    /// The session's target machine description.
    pub fn target(&self) -> &TargetSpec {
        self.options.target()
    }

    /// Cumulative analysis-cache counters across every compile so far.
    pub fn cache_stats(&self) -> lslp_analysis::CacheStats {
        self.am.cache_stats()
    }

    /// Compile SLC source to an optimized [`Artifact`].
    ///
    /// # Errors
    ///
    /// [`LslpError::Input`] when the source does not parse or verify;
    /// [`LslpError::Internal`] when a strict-mode guard aborts.
    pub fn compile(&mut self, src: &str) -> Result<Artifact, LslpError> {
        let module = lslp_frontend::compile(src).map_err(|e| LslpError::Input(e.to_string()))?;
        self.optimize(module)
    }

    /// Optimize an already-built module under the session options.
    ///
    /// # Errors
    ///
    /// [`LslpError::Internal`] when a strict-mode guard aborts; the failing
    /// function is left rolled back.
    pub fn optimize(&mut self, mut module: Module) -> Result<Artifact, LslpError> {
        let cfg = self.options.config().clone();
        let tm = self.options.target().clone();
        let mut reports = Vec::with_capacity(module.functions.len());
        for f in &mut module.functions {
            // The analysis cache is keyed by mutation epoch, which is
            // process-wide unique, so sharing one manager across functions
            // is safe: a different function always misses.
            let r = if self.options.pipeline() {
                try_run_pipeline_with(f, &cfg, &tm, &mut self.am)
            } else {
                try_run_vectorize_only(f, &cfg, &tm)
            };
            reports.push(r.map_err(|e| LslpError::Internal(format!("@{}: {e}", f.name())))?);
        }
        Ok(Artifact { module, reports })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "kernel k(f64* A, f64* B, i64 i) {
                           for o in 0..4 { A[i+o] = B[i+o] * B[i+o]; }
                       }";

    #[test]
    fn builder_happy_path() {
        let opts = CompileOptions::preset("lslp")
            .target("avx512")
            .look_ahead(3)
            .time_budget_ms(50)
            .build()
            .unwrap();
        assert_eq!(opts.preset_name(), "LSLP");
        assert_eq!(opts.target().name, "avx512");
        assert_eq!(opts.config().la_depth, 3);
        assert_eq!(opts.config().time_budget_ms, Some(50));
        assert!(opts.pipeline());
    }

    #[test]
    fn preset_names_are_case_insensitive() {
        for (given, canon) in
            [("o3", "O3"), ("slp-nr", "SLP-NR"), ("Slp", "SLP"), ("lslp-la2", "LSLP-LA2")]
        {
            let opts = CompileOptions::preset(given).build().unwrap();
            assert_eq!(opts.preset_name(), canon, "{given}");
        }
        assert!(matches!(
            CompileOptions::preset("gcc").build(),
            Err(OptionsError::UnknownPreset(_))
        ));
    }

    #[test]
    fn target_and_features_resolve() {
        let opts = CompileOptions::preset("LSLP").target("sse4.2+fast-div").build().unwrap();
        assert_eq!(opts.target().register_bits, 128);
        assert_eq!(opts.target().spec_string(), "sse4.2+fast-div");
        assert!(matches!(
            CompileOptions::preset("LSLP").target("itanium").build(),
            Err(OptionsError::BadTarget(_))
        ));
    }

    #[test]
    fn lookahead_knobs_rejected_on_non_lookahead_presets() {
        // The combination the redesign exists to catch: SLP-NR never
        // reorders, so look-ahead tuning on it is a contradiction, not a
        // silent no-op.
        for build in [
            CompileOptions::preset("SLP-NR").look_ahead(4).build(),
            CompileOptions::preset("SLP-NR").score_weights(ScoreWeights::llvm_like()).build(),
            CompileOptions::preset("SLP").multinode_limit(2).build(),
        ] {
            assert!(matches!(build, Err(OptionsError::Inconsistent { .. })), "{build:?}");
        }
        // The same knobs are fine where look-ahead actually runs.
        assert!(CompileOptions::preset("LSLP")
            .look_ahead(4)
            .score_weights(ScoreWeights::llvm_like())
            .multinode_limit(2)
            .build()
            .is_ok());
    }

    #[test]
    fn vectorizer_knobs_rejected_on_o3() {
        assert!(matches!(
            CompileOptions::preset("O3").max_vf(4).build(),
            Err(OptionsError::Inconsistent { option: "max_vf", .. })
        ));
        assert!(CompileOptions::preset("O3").build().is_ok());
    }

    #[test]
    fn paranoid_requires_the_guard() {
        assert!(matches!(
            CompileOptions::preset("LSLP").guard("off").paranoid(true).build(),
            Err(OptionsError::Inconsistent { option: "paranoid", .. })
        ));
        assert!(CompileOptions::preset("LSLP").guard("rollback").paranoid(true).build().is_ok());
        assert!(matches!(
            CompileOptions::preset("LSLP").guard("yolo").build(),
            Err(OptionsError::UnknownGuard(_))
        ));
    }

    #[test]
    fn guard_strategy_spellings_resolve() {
        let opts = CompileOptions::preset("LSLP").guard("snapshot").build().unwrap();
        assert_eq!(opts.config.guard, GuardMode::Rollback);
        assert_eq!(opts.config.rollback, RollbackStrategy::Snapshot);

        let opts = CompileOptions::preset("LSLP").guard("differential").build().unwrap();
        assert_eq!(opts.config.guard, GuardMode::Rollback);
        assert_eq!(opts.config.rollback, RollbackStrategy::Differential);

        // Plain mode names keep the delta default.
        let opts = CompileOptions::preset("LSLP").guard("strict").build().unwrap();
        assert_eq!(opts.config.guard, GuardMode::Strict);
        assert_eq!(opts.config.rollback, RollbackStrategy::Delta);
    }

    #[test]
    fn packing_strategy_spellings_resolve() {
        let opts = CompileOptions::preset("LSLP").packing("global").build().unwrap();
        assert_eq!(opts.config.packing, PackingStrategy::Global);
        let opts = CompileOptions::preset("LSLP").packing("greedy").build().unwrap();
        assert_eq!(opts.config.packing, PackingStrategy::Greedy);
        // Unset keeps the greedy default.
        let opts = CompileOptions::preset("LSLP").build().unwrap();
        assert_eq!(opts.config.packing, PackingStrategy::Greedy);
    }

    #[test]
    fn bad_packing_spelling_is_a_typed_error() {
        let err = CompileOptions::preset("LSLP").packing("Global").build().unwrap_err();
        let Err(OptionsError::BadValue { option: "packing", why }) =
            CompileOptions::preset("LSLP").packing("exhaustive").build()
        else {
            panic!("{err:?}");
        };
        assert!(why.contains("greedy, global"), "{why}");
        // And a preset with the vectorizer off has nothing to pack.
        assert!(matches!(
            CompileOptions::preset("O3").packing("global").build(),
            Err(OptionsError::Inconsistent { option: "packing", .. })
        ));
    }

    #[test]
    fn out_of_range_values_are_typed_errors() {
        assert!(matches!(
            CompileOptions::preset("LSLP").max_vf(1).build(),
            Err(OptionsError::BadValue { option: "max_vf", .. })
        ));
        assert!(matches!(
            CompileOptions::preset("LSLP").time_budget_ms(0).build(),
            Err(OptionsError::BadValue { option: "time_budget_ms", .. })
        ));
        assert!(matches!(
            CompileOptions::preset("LSLP").max_graph_nodes(0).build(),
            Err(OptionsError::BadValue { option: "max_graph_nodes", .. })
        ));
    }

    #[test]
    fn session_compiles_and_reports() {
        let mut s = Session::new(CompileOptions::default());
        let artifact = s.compile(SRC).unwrap();
        assert!(artifact.ir().contains("<4 x f64>"), "{}", artifact.ir());
        assert_eq!(artifact.trees_vectorized(), 1);
        assert_eq!(artifact.reports.len(), 1);
    }

    #[test]
    fn session_respects_the_target() {
        // On a 128-bit target the 4×f64 store chain must split: the widest
        // legal f64 vector is <2 x f64>.
        let opts = CompileOptions::preset("LSLP").target("sse4.2").build().unwrap();
        let artifact = Session::new(opts).compile(SRC).unwrap();
        let ir = artifact.ir();
        assert!(ir.contains("<2 x f64>"), "{ir}");
        assert!(!ir.contains("<4 x f64>"), "{ir}");
    }

    #[test]
    fn session_errors_classify_and_map_to_exit_codes() {
        let mut s = Session::new(CompileOptions::default());
        let err = s.compile("kernel broken(").unwrap_err();
        assert_eq!(err.class(), ErrorClass::Input);
        assert_eq!(err.exit_code(), 3);
        let opts_err: LslpError = CompileOptions::preset("GCC").build().unwrap_err().into();
        assert_eq!(opts_err.class(), ErrorClass::Usage);
        assert_eq!(opts_err.exit_code(), 2);
        assert_eq!(LslpError::Internal("x".into()).exit_code(), 1);
    }

    #[test]
    fn vectorize_only_session_skips_scalar_passes() {
        let opts = CompileOptions::preset("LSLP").vectorize_only().build().unwrap();
        let artifact = Session::new(opts).compile(SRC).unwrap();
        assert_eq!(artifact.reports[0].simplified, 0);
        assert!(artifact.ir().contains("<4 x f64>"));
    }

    #[test]
    fn session_cache_survives_across_compiles() {
        let mut s = Session::new(CompileOptions::default());
        s.compile(SRC).unwrap();
        let after_one = s.cache_stats().hits;
        s.compile(SRC).unwrap();
        assert!(s.cache_stats().hits >= after_one, "counters are cumulative");
    }
}
