//! Vector code generation (paper §2.2, steps 6–7).
//!
//! Each vectorizable graph node becomes one vector instruction (a chain of
//! them for multi-nodes), emitted at the body position of the node's last
//! member (first member for hoisted loads). Gather leaves become constant
//! vectors or `insertelement` chains placed just before their user. Scalar
//! seed stores are deleted; every other scalar is left in place — external
//! uses after the vector instruction are rewired to `extractelement`s and
//! the dead remainder is swept by [`crate::dce`].
//!
//! This "natural liveness" strategy keeps code generation trivially sound:
//! the vector code is inserted *alongside* the scalar code, uses migrate
//! only where the vector value dominates them, and DCE reclaims whatever
//! became unreachable.

use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use lslp_analysis::{AnalysisManager, PositionMap};
use lslp_ir::{Constant, Function, InstAttr, Opcode, Type, ValueId};
use lslp_target::TargetSpec;

use crate::graph::{NodeId, NodeKind, Placement, SlpGraph};

/// Statistics from one code generation run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CodegenStats {
    /// Vector instructions emitted (loads, stores, ALU, shuffles, inserts).
    pub vector_insts: usize,
    /// Extract instructions emitted for external users.
    pub extracts: usize,
    /// Scalar stores deleted (replaced by vector stores).
    pub stores_deleted: usize,
}

struct Codegen<'a> {
    f: &'a mut Function,
    graph: &'a SlpGraph,
    tm: &'a TargetSpec,
    positions: Rc<PositionMap>,
    /// Original uses snapshot (before any new instruction was pushed).
    uses: Rc<lslp_ir::UseMap>,
    /// New instructions to splice in *after* the original body index.
    queued: HashMap<usize, Vec<ValueId>>,
    vec_vals: HashMap<NodeId, ValueId>,
    emit_pos: HashMap<NodeId, usize>,
    dead_stores: HashSet<ValueId>,
    stats: CodegenStats,
}

impl<'a> Codegen<'a> {
    fn queue(&mut self, at: usize, inst: ValueId) {
        self.queued.entry(at).or_default().push(inst);
    }

    fn member_pos(&self, node: NodeId) -> (usize, usize) {
        let scalars = &self.graph.node(node).scalars;
        let mut lo = usize::MAX;
        let mut hi = 0;
        for s in scalars {
            let p = self.positions[s];
            lo = lo.min(p);
            hi = hi.max(p);
        }
        (lo, hi)
    }

    fn vec_ty(&self, node: NodeId) -> Type {
        let n = self.graph.node(node);
        let lane0 = n.scalars[0];
        let scalar_ty = match self.f.opcode(lane0) {
            Some(Opcode::Store) => self.f.ty(self.f.args_of(lane0)[0]),
            _ => self.f.ty(lane0),
        };
        scalar_ty.with_lanes(n.lanes() as u32)
    }

    /// Emit the vector value of `node`, and everything it depends on.
    /// `gather_at` is the body position to use if this node is a gather
    /// (gathers have no position of their own).
    fn emit(&mut self, node: NodeId, gather_at: usize) -> ValueId {
        if let Some(&v) = self.vec_vals.get(&node) {
            return v;
        }
        let kind = self.graph.node(node).kind.clone();
        let scalars = self.graph.node(node).scalars.clone();
        let lanes = scalars.len() as u32;
        let val = match kind {
            NodeKind::Load { placement } => {
                let (lo, hi) = self.member_pos(node);
                let at = match placement {
                    Placement::Sink => hi,
                    Placement::Hoist => lo,
                };
                let ty = self.vec_ty(node);
                let ptr = self.f.args_of(scalars[0])[0];
                let v = self.f.push(Opcode::Load, ty, vec![ptr], InstAttr::None);
                self.stats.vector_insts += 1;
                self.queue(at, v);
                self.emit_pos.insert(node, at);
                v
            }
            NodeKind::Store => {
                let (_, hi) = self.member_pos(node);
                let child = self.graph.node(node).operands[0];
                let val = self.emit(child, hi);
                let elem = self.vec_ty(node).elem().expect("store lanes have data types");
                let max = self.tm.max_vf(elem) as usize;
                let n_lanes = lanes as usize;
                let v = if n_lanes > max {
                    // The target cannot hold the bundle in one register:
                    // legalize by splitting into register-sized chunk
                    // stores, each fed by a shuffle extracting its lanes.
                    let mut last = val;
                    let mut start = 0;
                    while start < n_lanes {
                        let chunk = max.min(n_lanes - start);
                        let mask: Vec<u32> = (start..start + chunk).map(|l| l as u32).collect();
                        let chunk_ty = Type::Scalar(elem).with_lanes(chunk as u32);
                        let part = self.f.push(
                            Opcode::ShuffleVector,
                            chunk_ty,
                            vec![val, val],
                            InstAttr::Mask(mask),
                        );
                        self.queue(hi, part);
                        let ptr = self.f.args_of(scalars[start])[1];
                        last =
                            self.f.push(Opcode::Store, Type::Void, vec![part, ptr], InstAttr::None);
                        self.queue(hi, last);
                        self.stats.vector_insts += 2;
                        start += chunk;
                    }
                    last
                } else {
                    let ptr = self.f.args_of(scalars[0])[1];
                    let v = self.f.push(Opcode::Store, Type::Void, vec![val, ptr], InstAttr::None);
                    self.stats.vector_insts += 1;
                    self.queue(hi, v);
                    v
                };
                self.emit_pos.insert(node, hi);
                for &s in &scalars {
                    self.dead_stores.insert(s);
                }
                self.stats.stores_deleted += scalars.len();
                v
            }
            NodeKind::Vector { op } => {
                let (_, hi) = self.member_pos(node);
                let children = self.graph.node(node).operands.clone();
                let args: Vec<ValueId> = children.iter().map(|&c| self.emit(c, hi)).collect();
                let ty = self.vec_ty(node);
                let attr = self.f.inst(scalars[0]).expect("member").attr.clone();
                let v = self.f.push(op, ty, args, attr);
                self.stats.vector_insts += 1;
                self.queue(hi, v);
                self.emit_pos.insert(node, hi);
                v
            }
            NodeKind::MultiNode { op, .. } => {
                let (_, hi) = self.member_pos(node);
                let children = self.graph.node(node).operands.clone();
                let cols: Vec<ValueId> = children.iter().map(|&c| self.emit(c, hi)).collect();
                let ty = self.vec_ty(node);
                // Re-associate: fold all frontier columns left-to-right.
                let mut acc = self.f.push(op, ty, vec![cols[0], cols[1]], InstAttr::None);
                self.stats.vector_insts += 1;
                self.queue(hi, acc);
                for &c in &cols[2..] {
                    acc = self.f.push(op, ty, vec![acc, c], InstAttr::None);
                    self.stats.vector_insts += 1;
                    self.queue(hi, acc);
                }
                self.emit_pos.insert(node, hi);
                acc
            }
            NodeKind::Gather { .. } => {
                // Place the gather after its latest instruction member.
                // Every lane member is an operand of the corresponding lane
                // of every parent, so max(member pos) strictly precedes
                // every parent's emission point — which keeps the gather
                // valid even when several parents share it. `gather_at` is
                // only a fallback for all-const/arg gathers.
                let at = scalars
                    .iter()
                    .filter(|&&s| self.f.is_inst(s))
                    .filter_map(|s| self.positions.get(s).copied())
                    .max()
                    .unwrap_or(0);
                debug_assert!(at <= gather_at, "gather member must dominate its users");
                let v = self.emit_gather(&scalars, lanes, at);
                self.emit_pos.insert(node, at);
                v
            }
        };
        self.vec_vals.insert(node, val);
        val
    }

    fn emit_gather(&mut self, scalars: &[ValueId], lanes: u32, at: usize) -> ValueId {
        let elem = self.f.ty(scalars[0]).elem().expect("gather lanes have data types");
        // Base constant vector: constant lanes in place, zeros elsewhere.
        let base_lanes: Vec<Constant> = scalars
            .iter()
            .map(|&s| match self.f.as_const(s) {
                Some(c) => c.clone(),
                None => Constant::zero(elem),
            })
            .collect();
        let mut cur = self.f.constant(Constant::vector(base_lanes));
        let ty = Type::Scalar(elem).with_lanes(lanes);
        let non_const: Vec<(u32, ValueId)> = scalars
            .iter()
            .enumerate()
            .filter(|&(_, &s)| !self.f.is_const(s))
            .map(|(l, &s)| (l as u32, s))
            .collect();
        if non_const.is_empty() {
            return cur; // pure constant vector, no instructions
        }
        let splat = non_const.len() == lanes as usize
            && non_const.iter().all(|&(_, s)| s == non_const[0].1);
        if splat {
            // One insert plus a zero-lane broadcast shuffle.
            let lane0 = self.f.const_i64(0);
            cur = self.f.push(
                Opcode::InsertElement,
                ty,
                vec![cur, non_const[0].1, lane0],
                InstAttr::None,
            );
            self.queue(at, cur);
            let mask = vec![0u32; lanes as usize];
            cur = self.f.push(Opcode::ShuffleVector, ty, vec![cur, cur], InstAttr::Mask(mask));
            self.queue(at, cur);
            self.stats.vector_insts += 2;
        } else {
            for (lane, s) in non_const {
                let idx = self.f.const_i64(lane as i64);
                cur = self.f.push(Opcode::InsertElement, ty, vec![cur, s, idx], InstAttr::None);
                self.queue(at, cur);
                self.stats.vector_insts += 1;
            }
        }
        cur
    }

    /// Rewire external uses of vectorized scalars through extracts when the
    /// user is positioned after the node's vector instruction.
    fn rewire_external_uses(&mut self) {
        let mut per_scalar_extract: HashMap<ValueId, ValueId> = HashMap::new();
        // Deterministic order: walk nodes, then lanes.
        for (node_id, node) in self.graph.nodes().iter().enumerate() {
            if !node.is_vectorizable() {
                continue;
            }
            let Some(&node_pos) = self.emit_pos.get(&node_id) else { continue };
            let Some(&vec_val) = self.vec_vals.get(&node_id) else { continue };
            for (lane, &s) in node.scalars.iter().enumerate() {
                if self.f.ty(s).is_void() {
                    continue;
                }
                let uses: Vec<_> = self
                    .uses
                    .uses(s)
                    .iter()
                    .filter(|u| !self.graph.contains(u.user))
                    .filter(|u| self.positions.get(&u.user).is_some_and(|&p| p > node_pos))
                    .copied()
                    .collect();
                if uses.is_empty() {
                    continue;
                }
                let ext = *per_scalar_extract.entry(s).or_insert_with(|| {
                    let elem = self.f.ty(s);
                    let idx = self.f.const_i64(lane as i64);
                    let e = self.f.push(
                        Opcode::ExtractElement,
                        elem,
                        vec![vec_val, idx],
                        InstAttr::None,
                    );
                    self.queue(node_pos, e);
                    self.stats.extracts += 1;
                    e
                });
                for u in uses {
                    if let Some(inst) = self.f.inst_mut(u.user) {
                        inst.args[u.index] = ext;
                    }
                }
            }
        }
    }

    fn splice(&mut self) {
        // Everything past the original body length was pushed by this run.
        let orig: Vec<ValueId> = self.f.body()[..self.positions.len()].to_vec();
        let mut new_body = Vec::with_capacity(self.f.body_len());
        for (p, v) in orig.iter().enumerate() {
            if !self.dead_stores.contains(v) {
                new_body.push(*v);
            }
            if let Some(q) = self.queued.remove(&p) {
                new_body.extend(q);
            }
        }
        debug_assert!(self.queued.is_empty(), "queued instructions out of range");
        self.f.rebuild_body(new_body);
    }
}

/// The result of materializing one graph as vector code.
#[derive(Clone, Debug)]
pub struct GeneratedTree {
    /// Emission statistics.
    pub stats: CodegenStats,
    /// The root node's vector value (`None` for store roots, which produce
    /// no value).
    pub root_value: Option<ValueId>,
}

/// Replace the scalars of `graph` with vector code inside `f`,
/// legalizing for target `tm` (seed stores wider than one of its
/// registers are split into chunk stores).
///
/// The graph must have been built against the *current* state of `f`
/// (positions are captured internally). Dead scalars are left for
/// [`crate::dce::run`].
pub fn generate(f: &mut Function, graph: &SlpGraph, tm: &TargetSpec) -> CodegenStats {
    generate_tree(f, graph, tm).stats
}

/// [`generate`], pulling the position/use maps from `am`'s cache instead
/// of recomputing them (the pass driver's hot path).
pub fn generate_with(
    f: &mut Function,
    graph: &SlpGraph,
    tm: &TargetSpec,
    am: &mut AnalysisManager,
) -> CodegenStats {
    generate_tree_with(f, graph, tm, am).stats
}

/// Like [`generate`], additionally returning the root's vector value so
/// callers (e.g. horizontal-reduction codegen) can consume it.
pub fn generate_tree(f: &mut Function, graph: &SlpGraph, tm: &TargetSpec) -> GeneratedTree {
    let positions = Rc::new(f.position_map());
    let uses = Rc::new(f.use_map());
    generate_tree_cached(f, graph, tm, positions, uses)
}

/// [`generate_tree`] with analyses supplied by the [`AnalysisManager`].
pub fn generate_tree_with(
    f: &mut Function,
    graph: &SlpGraph,
    tm: &TargetSpec,
    am: &mut AnalysisManager,
) -> GeneratedTree {
    let positions = am.positions(f);
    let uses = am.use_map(f);
    generate_tree_cached(f, graph, tm, positions, uses)
}

fn generate_tree_cached(
    f: &mut Function,
    graph: &SlpGraph,
    tm: &TargetSpec,
    positions: Rc<PositionMap>,
    uses: Rc<lslp_ir::UseMap>,
) -> GeneratedTree {
    let mut cg = Codegen {
        f,
        graph,
        tm,
        positions,
        uses,
        queued: HashMap::new(),
        vec_vals: HashMap::new(),
        emit_pos: HashMap::new(),
        dead_stores: HashSet::new(),
        stats: CodegenStats::default(),
    };
    let root = graph.root();
    let (_, root_hi) = cg.member_pos(root);
    let val = cg.emit(root, root_hi);
    cg.rewire_external_uses();
    cg.splice();
    let root_value = (!cg.f.ty(val).is_void()).then_some(val);
    GeneratedTree { stats: cg.stats, root_value }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VectorizerConfig;
    use crate::graph::GraphBuilder;
    use lslp_analysis::AddrInfo;
    use lslp_ir::{verify_function, FunctionBuilder};

    fn vectorize(f: &mut Function, cfg: &VectorizerConfig, seeds: &[ValueId]) -> CodegenStats {
        vectorize_on(f, cfg, &TargetSpec::default(), seeds)
    }

    fn vectorize_on(
        f: &mut Function,
        cfg: &VectorizerConfig,
        tm: &TargetSpec,
        seeds: &[ValueId],
    ) -> CodegenStats {
        let addr = AddrInfo::analyze(f);
        let positions = f.position_map();
        let use_map = f.use_map();
        let graph = GraphBuilder::new(f, cfg, tm, &addr, &positions, &use_map).build(seeds);
        generate(f, &graph, tm)
    }

    fn simple_kernel() -> (Function, Vec<ValueId>) {
        let mut f = Function::new("k");
        let pa = f.add_param("A", Type::PTR);
        let pb = f.add_param("B", Type::PTR);
        let pc = f.add_param("C", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let mut stores = Vec::new();
        for o in 0..2i64 {
            let mut b = FunctionBuilder::new(&mut f);
            let off = b.func().const_i64(o);
            let idx = b.add(i, off);
            let gb = b.gep(pb, idx, 8);
            let lb = b.load(Type::I64, gb);
            let gc = b.gep(pc, idx, 8);
            let lc = b.load(Type::I64, gc);
            let s = b.add(lb, lc);
            let ga = b.gep(pa, idx, 8);
            stores.push(b.store(s, ga));
        }
        (f, stores)
    }

    #[test]
    fn generated_code_verifies() {
        let (mut f, stores) = simple_kernel();
        let stats = vectorize(&mut f, &VectorizerConfig::slp(), &stores);
        verify_function(&f).expect("vectorized code must verify");
        assert_eq!(stats.stores_deleted, 2);
        assert_eq!(stats.extracts, 0);
        // vector store + vector add + 2 vector loads.
        assert_eq!(stats.vector_insts, 4);
        let text = lslp_ir::print_function(&f);
        assert!(text.contains("load <2 x i64>"), "{text}");
        assert!(text.contains("store <2 x i64>"), "{text}");
    }

    #[test]
    fn dce_sweeps_dead_scalars_afterwards() {
        let (mut f, stores) = simple_kernel();
        let before = f.body_len();
        vectorize(&mut f, &VectorizerConfig::slp(), &stores);
        crate::dce::run(&mut f);
        verify_function(&f).expect("post-DCE code must verify");
        // 2 geps + vload ×2, vadd, 2 geps? — lane-0 geps for A survive; all
        // scalar loads/adds/stores are gone. The exact count: 4 vector insts
        // + 3 live geps (B, C, A lane 0) + 1 lane-0 idx add = 8.
        let after = f.body_len();
        assert!(after < before, "DCE must shrink the body ({before} -> {after})");
        let text = lslp_ir::print_function(&f);
        assert!(!text.contains("load i64"), "scalar loads must be gone:\n{text}");
    }

    #[test]
    fn hoisted_load_placement_is_correct() {
        // A[i] = A[i] + 1; A[i+1] = A[i+1] + 1 — needs hoist placement.
        let mut f = Function::new("k");
        let pa = f.add_param("A", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let mut stores = Vec::new();
        for o in 0..2i64 {
            let mut b = FunctionBuilder::new(&mut f);
            let off = b.func().const_i64(o);
            let one = b.func().const_i64(1);
            let idx = b.add(i, off);
            let ga = b.gep(pa, idx, 8);
            let l = b.load(Type::I64, ga);
            let v = b.add(l, one);
            stores.push(b.store(v, ga));
        }
        vectorize(&mut f, &VectorizerConfig::lslp(), &stores);
        verify_function(&f).expect("hoisted code must verify");
        let text = lslp_ir::print_function(&f);
        // The vector load must appear before the (deleted) first store's
        // position — i.e. before the vector store.
        let vload = text.find("load <2 x i64>").expect("vector load");
        let vstore = text.find("store <2 x i64>").expect("vector store");
        assert!(vload < vstore, "{text}");
    }

    #[test]
    fn gather_of_mixed_lanes_inserts() {
        // A[i+o] = x ^ B[i+o]: operand slot holds [x, x] (splat arg).
        let mut f = Function::new("k");
        let pa = f.add_param("A", Type::PTR);
        let pb = f.add_param("B", Type::PTR);
        let x = f.add_param("x", Type::I64);
        let i = f.add_param("i", Type::I64);
        let mut stores = Vec::new();
        for o in 0..2i64 {
            let mut b = FunctionBuilder::new(&mut f);
            let off = b.func().const_i64(o);
            let idx = b.add(i, off);
            let gb = b.gep(pb, idx, 8);
            let lb = b.load(Type::I64, gb);
            let v = b.xor(x, lb);
            let ga = b.gep(pa, idx, 8);
            stores.push(b.store(v, ga));
        }
        vectorize(&mut f, &VectorizerConfig::lslp(), &stores);
        verify_function(&f).unwrap();
        let text = lslp_ir::print_function(&f);
        assert!(text.contains("insertelement"), "{text}");
        assert!(text.contains("shufflevector"), "splat should broadcast:\n{text}");
    }

    #[test]
    fn external_user_reads_through_extract() {
        let mut f = Function::new("k");
        let pa = f.add_param("A", Type::PTR);
        let pb = f.add_param("B", Type::PTR);
        let px = f.add_param("X", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let mut stores = Vec::new();
        let mut sum0 = None;
        for o in 0..2i64 {
            let mut b = FunctionBuilder::new(&mut f);
            let off = b.func().const_i64(o);
            let idx = b.add(i, off);
            let gb = b.gep(pb, idx, 8);
            let lb = b.load(Type::I64, gb);
            let s = b.add(lb, lb);
            sum0.get_or_insert(s);
            let ga = b.gep(pa, idx, 8);
            stores.push(b.store(s, ga));
        }
        {
            let mut b = FunctionBuilder::new(&mut f);
            let gx = b.gep(px, i, 8);
            b.store(sum0.unwrap(), gx);
        }
        let stats = vectorize(&mut f, &VectorizerConfig::lslp(), &stores);
        verify_function(&f).unwrap();
        assert_eq!(stats.extracts, 1);
        let text = lslp_ir::print_function(&f);
        assert!(text.contains("extractelement"), "{text}");
    }

    #[test]
    fn multinode_codegen_folds_chain() {
        // A[i+o] = B[i+o] & C[i+o] & D[i+o]: 2-instruction chain per lane.
        let mut f = Function::new("k");
        let arrays: Vec<ValueId> =
            ["A", "B", "C", "D"].iter().map(|n| f.add_param(*n, Type::PTR)).collect();
        let i = f.add_param("i", Type::I64);
        let mut stores = Vec::new();
        for o in 0..2i64 {
            let mut b = FunctionBuilder::new(&mut f);
            let off = b.func().const_i64(o);
            let idx = b.add(i, off);
            let mut loads = Vec::new();
            for &arr in &arrays[1..] {
                let p = b.gep(arr, idx, 8);
                loads.push(b.load(Type::I64, p));
            }
            let inner = b.and(loads[0], loads[1]);
            let outer = b.and(inner, loads[2]);
            let ga = b.gep(arrays[0], idx, 8);
            stores.push(b.store(outer, ga));
        }
        vectorize(&mut f, &VectorizerConfig::lslp(), &stores);
        crate::dce::run(&mut f);
        verify_function(&f).unwrap();
        let text = lslp_ir::print_function(&f);
        let ands = text.matches("and <2 x i64>").count();
        assert_eq!(ands, 2, "chain of 2 folds into 2 vector ands:\n{text}");
        assert_eq!(text.matches("load <2 x i64>").count(), 3, "{text}");
    }
}

#[cfg(test)]
mod cmp_select_tests {
    use super::*;
    use crate::config::VectorizerConfig;
    use crate::graph::GraphBuilder;
    use lslp_analysis::AddrInfo;
    use lslp_ir::{verify_function, FunctionBuilder, IntPred, ScalarType};

    fn vectorize(f: &mut Function, seeds: &[ValueId]) {
        let cfg = VectorizerConfig::lslp();
        let tm = TargetSpec::default();
        let addr = AddrInfo::analyze(f);
        let positions = f.position_map();
        let use_map = f.use_map();
        let graph = GraphBuilder::new(f, &cfg, &tm, &addr, &positions, &use_map).build(seeds);
        generate(f, &graph, &tm);
    }

    /// `A[i+o] = max(B[i+o], C[i+o])` via icmp+select, 4 lanes.
    #[test]
    fn cmp_select_lanes_vectorize() {
        let mut f = Function::new("vmax");
        let pa = f.add_param("A", Type::PTR);
        let pb = f.add_param("B", Type::PTR);
        let pc = f.add_param("C", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let mut stores = Vec::new();
        for o in 0..4i64 {
            let mut b = FunctionBuilder::new(&mut f);
            let off = b.func().const_i64(o);
            let idx = b.add(i, off);
            let gb = b.gep(pb, idx, 8);
            let lb = b.load(Type::I64, gb);
            let gc = b.gep(pc, idx, 8);
            let lc = b.load(Type::I64, gc);
            let c = b.icmp(IntPred::Sgt, lb, lc);
            let m = b.select(c, lb, lc);
            let ga = b.gep(pa, idx, 8);
            stores.push(b.store(m, ga));
        }
        vectorize(&mut f, &stores);
        crate::dce::run(&mut f);
        verify_function(&f).unwrap();
        let text = lslp_ir::print_function(&f);
        assert!(text.contains("icmp sgt <4 x i64>"), "{text}");
        assert!(text.contains("select <4 x i64>"), "{text}");
        assert!(!text.contains("select i64"), "scalars must be gone:\n{text}");
    }

    /// Mixed predicates must not group.
    #[test]
    fn mismatched_predicates_gather() {
        let mut f = Function::new("mixed");
        let pa = f.add_param("A", Type::PTR);
        let pb = f.add_param("B", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let mut stores = Vec::new();
        for o in 0..2i64 {
            let mut b = FunctionBuilder::new(&mut f);
            let off = b.func().const_i64(o);
            let idx = b.add(i, off);
            let gb = b.gep(pb, idx, 8);
            let lb = b.load(Type::I64, gb);
            let pred = if o == 0 { IntPred::Sgt } else { IntPred::Slt };
            let zero = b.func().const_i64(0);
            let c = b.icmp(pred, lb, zero);
            let one = b.func().const_i64(1);
            let m = b.select(c, lb, one);
            let ga = b.gep(pa, idx, 8);
            stores.push(b.store(m, ga));
        }
        let cfg = VectorizerConfig::lslp();
        let tm = TargetSpec::default();
        let addr = AddrInfo::analyze(&f);
        let positions = f.position_map();
        let use_map = f.use_map();
        let graph = GraphBuilder::new(&f, &cfg, &tm, &addr, &positions, &use_map).build(&stores);
        let gathers = graph.nodes().iter().filter(|n| !n.is_vectorizable()).count();
        assert!(gathers > 0, "differing predicates cannot form a group:\n{}", graph.dump(&f));
    }

    /// i16 elements pack 16 lanes into 256 bits end to end.
    #[test]
    fn narrow_integers_use_wide_vectors() {
        let mut f = Function::new("i16x16");
        let pa = f.add_param("A", Type::PTR);
        let pb = f.add_param("B", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let ty16 = Type::Scalar(ScalarType::I16);
        let mut stores = Vec::new();
        for o in 0..16i64 {
            let mut b = FunctionBuilder::new(&mut f);
            let off = b.func().const_i64(o);
            let idx = b.add(i, off);
            let gb = b.gep(pb, idx, 2);
            let lb = b.load(ty16, gb);
            let s = b.add(lb, lb);
            let ga = b.gep(pa, idx, 2);
            stores.push(b.store(s, ga));
        }
        vectorize(&mut f, &stores);
        verify_function(&f).unwrap();
        let text = lslp_ir::print_function(&f);
        assert!(text.contains("<16 x i16>"), "{text}");
    }

    /// A seed store chain wider than the target's registers is legalized
    /// by splitting into chunk stores the target can hold.
    #[test]
    fn over_wide_store_splits_into_register_chunks() {
        let mut f = Function::new("wide");
        let pa = f.add_param("A", Type::PTR);
        let pb = f.add_param("B", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let mut stores = Vec::new();
        for o in 0..4i64 {
            let mut b = FunctionBuilder::new(&mut f);
            let off = b.func().const_i64(o);
            let idx = b.add(i, off);
            let gb = b.gep(pb, idx, 8);
            let lb = b.load(Type::I64, gb);
            let s = b.add(lb, lb);
            let ga = b.gep(pa, idx, 8);
            stores.push(b.store(s, ga));
        }
        // sse4.2 holds two i64 lanes: the 4-lane seed store must become
        // two shuffle+store pairs of <2 x i64>.
        let cfg = VectorizerConfig::lslp();
        let sse = lslp_target::TargetSpec::sse42();
        vectorize_on_target(&mut f, &cfg, &sse, &stores);
        verify_function(&f).unwrap();
        let text = lslp_ir::print_function(&f);
        assert_eq!(text.matches("store <2 x i64>").count(), 2, "{text}");
        assert_eq!(text.matches("shufflevector").count(), 2, "{text}");
        assert!(!text.contains("store <4 x i64>"), "{text}");
    }

    fn vectorize_on_target(
        f: &mut Function,
        cfg: &VectorizerConfig,
        tm: &lslp_target::TargetSpec,
        seeds: &[ValueId],
    ) {
        let addr = AddrInfo::analyze(f);
        let positions = f.position_map();
        let use_map = f.use_map();
        let graph = GraphBuilder::new(f, cfg, tm, &addr, &positions, &use_map).build(seeds);
        generate(f, &graph, tm);
    }
}
