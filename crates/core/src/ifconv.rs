//! If-conversion: branch diamonds become `select`s.
//!
//! The frontend lowers `if`/`else` expressions to a branch diamond — a
//! block ending in [`Terminator::Br`] whose two edges reconverge at a join
//! block that receives the chosen values as block parameters. The
//! vectorizer only sees straight-line code, so this pass rewrites each
//! diamond into speculated arm instructions plus one `select` per join
//! parameter, then (when the whole CFG has collapsed to a linear chain of
//! jumps) dissolves the CFG back into a straight-line body.
//!
//! ## Legality
//!
//! Both arms are *speculated*: their instructions execute regardless of the
//! condition. An arm therefore qualifies only when every instruction in it
//! is safe to execute unconditionally — no memory access (`load`/`store`)
//! and no trapping arithmetic (`sdiv`/`udiv`/`srem`/`urem`). Float division
//! does not trap (it produces ±inf/NaN) and address arithmetic (`gep`)
//! merely computes a value, so both speculate fine. Each arm must also be
//! either the join itself (an empty arm: the edge carries the values
//! directly) or a block with a single predecessor and no parameters that
//! ends in a jump to the join — anything richer (nested control flow in an
//! arm) is converted inside-out by the fixpoint loop below.

use std::collections::HashSet;

use lslp_ir::{BlockId, Function, InstAttr, Module, Opcode, Terminator, ValueId};

/// Can this instruction be executed unconditionally?
fn speculatable(op: Opcode) -> bool {
    !matches!(
        op,
        Opcode::Load | Opcode::Store | Opcode::SDiv | Opcode::UDiv | Opcode::SRem | Opcode::URem
    )
}

/// One resolved arm of a diamond: the join it reaches, the values it sends,
/// and the block to hoist from (`None` when the edge goes to the join
/// directly).
struct Arm {
    join: BlockId,
    args: Vec<ValueId>,
    hoist: Option<BlockId>,
}

/// Resolve one edge of a `br` into an [`Arm`], or `None` when it cannot be
/// if-converted.
fn resolve_arm(
    f: &Function,
    from: BlockId,
    target: BlockId,
    args: &[ValueId],
    preds: &[usize],
) -> Option<Arm> {
    let blk = f.block(target);
    // Case 1: the edge reaches the join directly; the args are the values.
    // Distinguishing "join" from "arm" is simple: an arm has no parameters,
    // carries no edge arguments, and ends in a jump.
    match blk.term() {
        Terminator::Jump { target: join, args: send }
            if args.is_empty()
                && blk.params().is_empty()
                && preds[target.index()] == 1
                && target != from =>
        {
            // Case 2: a one-block arm. Every instruction must speculate.
            let ok =
                blk.insts().iter().all(|&id| f.inst(id).is_some_and(|inst| speculatable(inst.op)));
            if !ok {
                return None;
            }
            Some(Arm { join: *join, args: send.clone(), hoist: Some(target) })
        }
        _ => Some(Arm { join: target, args: args.to_vec(), hoist: None }),
    }
}

/// Predecessor counts per block, over every block's terminator (stale
/// unreachable edges only make the single-predecessor test conservative).
fn pred_counts(f: &Function) -> Vec<usize> {
    let cfg = f.cfg().expect("CFG function");
    let mut preds = vec![0usize; cfg.num_blocks()];
    for b in cfg.block_ids() {
        for s in cfg.block(b).term().successors() {
            preds[s.index()] += 1;
        }
    }
    preds
}

/// If-convert every eligible diamond in `f`, then collapse the CFG to a
/// straight-line body if only linear jumps remain. Returns the number of
/// diamonds converted. No-op on straight-line functions.
pub fn run(f: &mut Function) -> usize {
    run_with(f, false)
}

/// [`run`] with fault injection: `swap_arms` implements
/// [`crate::config::Sabotage::SwapIfArms`] (each select picks the
/// else-value when the condition holds). Production callers pass `false`.
pub fn run_with(f: &mut Function, swap_arms: bool) -> usize {
    if f.cfg().is_none() {
        return 0;
    }
    let mut converted = 0;
    // Fixpoint: converting an inner diamond can linearise the arm of an
    // outer one. Bounded by the block count — each round converts at least
    // one branch or stops.
    while let Some(b) = find_candidate(f) {
        convert(f, b, swap_arms);
        converted += 1;
    }
    flatten_linear_cfg(f);
    converted
}

/// Find one convertible diamond, preferring later blocks so nested
/// diamonds convert inside-out.
fn find_candidate(f: &Function) -> Option<BlockId> {
    let cfg = f.cfg()?;
    let preds = pred_counts(f);
    for b in cfg.block_ids().rev() {
        let Terminator::Br { then_to, then_args, else_to, else_args, .. } = cfg.block(b).term()
        else {
            continue;
        };
        let Some(t) = resolve_arm(f, b, *then_to, then_args, &preds) else { continue };
        let Some(e) = resolve_arm(f, b, *else_to, else_args, &preds) else { continue };
        if t.join != e.join || t.args.len() != e.args.len() || t.join == b {
            continue;
        }
        return Some(b);
    }
    None
}

/// Rewrite the diamond at `b`: hoist the arms, emit selects, and replace
/// the branch with an unconditional jump to the join.
fn convert(f: &mut Function, b: BlockId, swap_arms: bool) {
    let preds = pred_counts(f);
    let Terminator::Br { cond, then_to, then_args, else_to, else_args } = f.block(b).term().clone()
    else {
        unreachable!("candidate must end in br");
    };
    let t = resolve_arm(f, b, then_to, &then_args, &preds).expect("candidate arm");
    let e = resolve_arm(f, b, else_to, &else_args, &preds).expect("candidate arm");

    // Hoist the arm instructions into `b`, then-arm first. Arms are
    // independent single-predecessor blocks, so order between them is
    // irrelevant; both only depend on values visible in `b`.
    let mut insts = f.block(b).insts().to_vec();
    for arm in [&t, &e] {
        if let Some(src) = arm.hoist {
            insts.extend_from_slice(f.block(src).insts());
            f.set_block_insts(src, Vec::new());
        }
    }
    f.set_block_insts(b, insts);

    // One select per join parameter; identical operands short-circuit.
    let join = t.join;
    let mut out = Vec::with_capacity(t.args.len());
    for (&tv, &ev) in t.args.iter().zip(&e.args) {
        if tv == ev {
            out.push(tv);
        } else {
            let ty = f.ty(tv);
            let (a, b2) = if swap_arms { (ev, tv) } else { (tv, ev) };
            out.push(f.push_in_block(b, Opcode::Select, ty, vec![cond, a, b2], InstAttr::None));
        }
    }
    f.set_term(b, Terminator::Jump { target: join, args: out });
}

/// If the reachable CFG is a linear chain of jumps ending in `ret`,
/// substitute block parameters with the values their unique edge carries
/// and dissolve the CFG into a straight-line body. Returns whether the
/// function is straight-line afterwards.
pub(crate) fn flatten_linear_cfg(f: &mut Function) -> bool {
    let Some(cfg) = f.cfg() else { return true };
    // Read-only scan first: mutate nothing until the whole chain is known
    // to be linear, so a bail-out leaves the function untouched.
    let mut chain = Vec::new();
    let mut visited = HashSet::new();
    let mut cur = cfg.entry();
    loop {
        if !visited.insert(cur) {
            return false; // jump cycle
        }
        chain.push(cur);
        match cfg.block(cur).term() {
            Terminator::Ret => break,
            Terminator::Jump { target, .. } => cur = *target,
            _ => return false, // br / loop / continue: still real control flow
        }
    }
    // Substitute parameters and collect the linearised body.
    let mut body = Vec::new();
    for &b in &chain {
        body.extend_from_slice(f.block(b).insts());
        if let Terminator::Jump { target, args } = f.block(b).term().clone() {
            let params = f.block(target).params().to_vec();
            debug_assert_eq!(params.len(), args.len(), "verified edge arity");
            for (p, a) in params.into_iter().zip(args) {
                f.replace_uses(p, a);
            }
            f.set_block_params(target, Vec::new());
        }
    }
    f.dissolve_cfg(body);
    true
}

/// Run if-conversion over every function of a module; returns the total
/// number of diamonds converted.
pub fn run_module(m: &mut Module) -> usize {
    m.functions.iter_mut().map(run).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lslp_ir::{parse_function, print_function};

    fn converted(src: &str) -> (Function, usize) {
        let mut f = parse_function(src).unwrap();
        lslp_ir::verify_function(&f).unwrap();
        let n = run(&mut f);
        lslp_ir::verify_function(&f).unwrap();
        (f, n)
    }

    #[test]
    fn empty_arm_diamond_becomes_select() {
        let (f, n) = converted(
            "func @max(%A: ptr) {
bb0:
  %x = load i64, %A
  %p = gep %A, 1, 8
  %y = load i64, %p
  %c = icmp sgt i64 %x, %y
  br %c, bb1(%x), bb1(%y)
bb1(%m: i64):
  store i64 %m, %A
  ret
}",
        );
        assert_eq!(n, 1);
        let text = print_function(&f);
        assert!(f.cfg().is_none(), "must flatten:\n{text}");
        assert!(text.contains("select i64 %c, %x, %y"), "{text}");
    }

    #[test]
    fn one_block_arms_are_hoisted() {
        let (f, n) = converted(
            "func @clamp(%A: ptr) {
bb0:
  %x = load i64, %A
  %c = icmp slt i64 %x, 0
  br %c, bb1, bb2
bb1:
  %neg = sub i64 0, %x
  jump bb3(%neg)
bb2:
  %dbl = add i64 %x, %x
  jump bb3(%dbl)
bb3(%v: i64):
  store i64 %v, %A
  ret
}",
        );
        assert_eq!(n, 1);
        let text = print_function(&f);
        assert!(f.cfg().is_none(), "must flatten:\n{text}");
        assert!(text.contains("sub"), "then-arm speculated: {text}");
        assert!(text.contains("add"), "else-arm speculated: {text}");
        assert!(text.contains("select"), "{text}");
    }

    #[test]
    fn memory_access_in_arm_blocks_conversion() {
        let (f, n) = converted(
            "func @guarded(%A: ptr) {
bb0:
  %x = load i64, %A
  %c = icmp sgt i64 %x, 0
  br %c, bb1, bb2
bb1:
  %p = gep %A, %x, 8
  %v = load i64, %p
  jump bb3(%v)
bb2:
  jump bb3(0)
bb3(%r: i64):
  store i64 %r, %A
  ret
}",
        );
        assert_eq!(n, 0, "a load must not be speculated");
        assert!(f.cfg().is_some(), "CFG must survive");
    }

    #[test]
    fn nested_diamonds_convert_inside_out() {
        let (f, n) = converted(
            "func @nest(%A: ptr) {
bb0:
  %x = load i64, %A
  %c0 = icmp sgt i64 %x, 0
  br %c0, bb1, bb4(0)
bb1:
  %c1 = icmp sgt i64 %x, 10
  br %c1, bb2, bb3
bb2:
  jump bb4(10)
bb3:
  jump bb4(%x)
bb4(%r: i64):
  store i64 %r, %A
  ret
}",
        );
        assert_eq!(n, 2, "both diamonds must convert");
        assert!(f.cfg().is_none(), "must flatten:\n{}", print_function(&f));
    }

    #[test]
    fn straight_line_functions_are_untouched() {
        let mut f = parse_function(
            "func @k(%A: ptr) {
               %x = load i64, %A
               store i64 %x, %A
             }",
        )
        .unwrap();
        let before = print_function(&f);
        assert_eq!(run(&mut f), 0);
        assert_eq!(print_function(&f), before);
    }
}
