//! Transactional pass guard: verified checkpoints, panic isolation, and
//! scalar fallback for the vectorizer pipeline.
//!
//! Every pass invocation and per-seed vectorization attempt can run as a
//! *transaction*: the function is snapshotted, the transform runs inside
//! [`std::panic::catch_unwind`], and the result is checked before it is
//! committed — [`lslp_ir::verify_function`] always (release builds
//! included), plus a differential execution against the scalar original
//! with the [`lslp_interp`] oracle when *paranoid* mode is on. Any panic,
//! verifier error, or oracle mismatch rolls the function back to the
//! snapshot bit-for-bit, records a structured [`Incident`], and lets
//! compilation continue with the scalar code — a miscompiling or crashing
//! transform degrades to a missed optimization instead of a wrong program
//! or a dead compiler.
//!
//! The [`GuardMode`] knob selects the failure semantics:
//!
//! * [`GuardMode::Rollback`] (default) — roll back, record, continue;
//! * [`GuardMode::Strict`] — abort the pass with a [`GuardError`] on the
//!   first incident (for CI and debugging, where a rollback would hide
//!   the bug);
//! * [`GuardMode::Off`] — the historical behavior: no snapshot, no panic
//!   isolation, verification only via `debug_assert!` at the call sites.
//!
//! See `DESIGN.md` § "Pass guard & failure semantics".

use std::any::Any;
use std::cell::Cell;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

use lslp_interp::{run_function, Memory, Value};
use lslp_ir::{Function, ScalarType, Type};

/// Failure semantics of the transactional pass guard.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum GuardMode {
    /// No guard: transforms run unchecked, panics propagate, verification
    /// happens only in debug builds (the historical behavior).
    Off,
    /// Roll back to the pre-transform snapshot on any incident, record it,
    /// and continue with the scalar code.
    #[default]
    Rollback,
    /// Abort with a [`GuardError`] on the first incident.
    Strict,
}

impl GuardMode {
    /// Parse a CLI spelling (`off`, `rollback`, `strict`).
    pub fn parse(s: &str) -> Option<GuardMode> {
        match s {
            "off" => Some(GuardMode::Off),
            "rollback" => Some(GuardMode::Rollback),
            "strict" => Some(GuardMode::Strict),
            _ => None,
        }
    }
}

impl fmt::Display for GuardMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            GuardMode::Off => "off",
            GuardMode::Rollback => "rollback",
            GuardMode::Strict => "strict",
        })
    }
}

/// What kind of failure a guarded transaction hit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IncidentKind {
    /// The transform panicked; the unwind was caught.
    Panic,
    /// The transformed function failed IR verification.
    VerifyError,
    /// Paranoid mode: the transformed function computed a different memory
    /// state than the pre-transform function on synthesized inputs.
    OracleMismatch,
    /// A compile-fuel budget (wall-clock or graph node count) ran out and
    /// the work was truncated or abandoned.
    FuelExhausted,
    /// A seed group the vectorizer cannot process (e.g. a store whose
    /// stored value has no element type); skipped.
    UnsupportedSeed,
}

impl fmt::Display for IncidentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IncidentKind::Panic => "panic",
            IncidentKind::VerifyError => "verify error",
            IncidentKind::OracleMismatch => "oracle mismatch",
            IncidentKind::FuelExhausted => "fuel exhausted",
            IncidentKind::UnsupportedSeed => "unsupported seed",
        })
    }
}

/// A structured record of one guarded-transaction failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Incident {
    /// Which pass (or pass stage) was running, e.g. `"vectorize"`,
    /// `"simplify"`.
    pub pass: String,
    /// The seed group description for per-seed transactions, if any.
    pub seed: Option<String>,
    /// The failure class.
    pub kind: IncidentKind,
    /// Human-readable details (panic message, verifier error, mismatch
    /// location).
    pub detail: String,
}

impl fmt::Display for Incident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.kind, self.pass)?;
        if let Some(seed) = &self.seed {
            write!(f, " (seed {seed})")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// The error [`GuardMode::Strict`] aborts with: the first incident.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GuardError(pub Incident);

impl fmt::Display for GuardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "guard (strict): {}", self.0)
    }
}

impl std::error::Error for GuardError {}

thread_local! {
    /// Set while a guarded body runs, so the panic hook stays silent for
    /// panics the guard is about to catch and convert into incidents.
    static GUARD_ACTIVE: Cell<bool> = const { Cell::new(false) };
}

/// Install (once, process-wide) a panic hook that suppresses the default
/// stderr report for panics occurring inside a guarded transaction on this
/// thread; all other panics keep the previous hook's behavior.
fn install_quiet_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !GUARD_ACTIVE.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A lazily evaluated seed description: only rendered when an incident is
/// actually recorded, so the hot path never pays the formatting cost.
pub type SeedDesc<'a> = &'a dyn Fn(&Function) -> String;

/// Pass-instrumentation hooks: the snapshot / verify / rollback machinery
/// of the transactional guard, factored out so the pass manager
/// (`crate::pm::PassManager`) wraps whole passes with the same
/// before/after-pass protocol that per-seed vectorization transactions
/// use, instead of every call site re-implementing the wrapping.
///
/// Protocol:
///
/// 1. [`GuardInstrumentation::before_pass`] — snapshot the function;
/// 2. run the transform (under [`GuardInstrumentation::catch_panics`] when
///    panic isolation is wanted);
/// 3. [`GuardInstrumentation::after_pass`] — verify the mutated function
///    (plus the differential-execution oracle in paranoid mode) and either
///    commit (`None`) or roll back to the snapshot and return the
///    [`Incident`].
///
/// The caller applies the [`GuardMode`] policy to a returned incident via
/// [`record`]; [`GuardInstrumentation::transact`] bundles all of the above
/// for one-shot transactions.
pub struct GuardInstrumentation {
    mode: GuardMode,
    paranoid: bool,
    snapshot: Option<Function>,
}

impl GuardInstrumentation {
    /// Instrumentation for the given failure semantics. Installs the quiet
    /// panic hook once per process when the guard is active.
    pub fn new(mode: GuardMode, paranoid: bool) -> GuardInstrumentation {
        if mode != GuardMode::Off {
            install_quiet_hook();
        }
        GuardInstrumentation { mode, paranoid, snapshot: None }
    }

    /// The failure semantics this instrumentation applies.
    pub fn mode(&self) -> GuardMode {
        self.mode
    }

    /// Before-pass hook: snapshot `f` so `after_pass` can roll back.
    /// No-op (no snapshot cost) in [`GuardMode::Off`].
    pub fn before_pass(&mut self, f: &Function) {
        if self.mode != GuardMode::Off {
            self.snapshot = Some(f.clone());
        }
    }

    /// Run `body` with panics caught and the default panic report
    /// suppressed (the guard converts the payload into an incident).
    pub fn catch_panics<T>(&self, body: impl FnOnce() -> T) -> Result<T, Box<dyn Any + Send>> {
        GUARD_ACTIVE.with(|g| g.set(true));
        let r = panic::catch_unwind(AssertUnwindSafe(body));
        GUARD_ACTIVE.with(|g| g.set(false));
        r
    }

    /// After-pass hook. `outcome` is `Ok(mutated)` when the transform
    /// completed (`mutated` says whether `f` changed, so clean read-only
    /// runs skip verification and oracle costs) or `Err(payload)` when it
    /// panicked. Returns `None` on commit; on any failure restores `f`
    /// from the `before_pass` snapshot bit-for-bit and returns the
    /// incident. `seed` is evaluated lazily, only when an incident is
    /// built (after rollback, so it describes the pre-transform state).
    pub fn after_pass(
        &mut self,
        pass: &str,
        seed: Option<SeedDesc>,
        f: &mut Function,
        outcome: Result<bool, Box<dyn Any + Send>>,
    ) -> Option<Incident> {
        let snapshot = self.snapshot.take();
        if self.mode == GuardMode::Off {
            if let Err(payload) = outcome {
                panic::resume_unwind(payload);
            }
            return None;
        }
        let snapshot = snapshot.expect("before_pass must run before after_pass");
        let fail = |f: &mut Function, kind: IncidentKind, detail: String| {
            *f = snapshot.clone();
            Incident { pass: pass.to_string(), seed: seed.map(|d| d(f)), kind, detail }
        };
        let incident = match outcome {
            Err(payload) => fail(f, IncidentKind::Panic, panic_message(payload)),
            Ok(mutated) => {
                if !mutated {
                    return None;
                }
                if let Err(e) = lslp_ir::verify_function(f) {
                    fail(f, IncidentKind::VerifyError, e.to_string())
                } else if let Err(detail) = oracle_check(self.paranoid, &snapshot, f) {
                    fail(f, IncidentKind::OracleMismatch, detail)
                } else {
                    return None;
                }
            }
        };
        Some(incident)
    }

    /// One complete guarded transaction over `f`: snapshot, run `body`
    /// (which returns `(result, mutated)`), verify, commit or roll back.
    /// In [`GuardMode::Off`] the body runs unguarded and panics propagate.
    ///
    /// # Errors
    ///
    /// Returns the [`Incident`] when the transaction was rolled back; the
    /// caller decides between recording and aborting (see [`record`]).
    pub fn transact<T>(
        &mut self,
        pass: &str,
        seed: Option<SeedDesc>,
        f: &mut Function,
        body: impl FnOnce(&mut Function) -> (T, bool),
    ) -> Result<T, Incident> {
        if self.mode == GuardMode::Off {
            let (t, _mutated) = body(f);
            return Ok(t);
        }
        self.before_pass(f);
        let (value, flag) = match self.catch_panics(AssertUnwindSafe(|| body(f))) {
            Ok((t, mutated)) => (Some(t), Ok(mutated)),
            Err(payload) => (None, Err(payload)),
        };
        match self.after_pass(pass, seed, f, flag) {
            None => Ok(value.expect("commit implies the body completed")),
            Some(incident) => Err(incident),
        }
    }
}

/// Run `body` over `f` as a guarded transaction (convenience wrapper over
/// [`GuardInstrumentation::transact`] + [`record`]).
///
/// `body` returns `(result, mutated)`; `mutated` tells the guard whether
/// `f` was actually changed, so clean read-only attempts skip the
/// verification and oracle costs. On commit the result is returned as
/// `Ok(Some(result))`. On an incident:
///
/// * [`GuardMode::Rollback`] restores `f` from the snapshot, pushes the
///   incident onto `incidents`, and returns `Ok(None)`;
/// * [`GuardMode::Strict`] restores `f` and returns `Err(GuardError)`;
/// * [`GuardMode::Off`] never produces incidents — `body` runs unguarded
///   and panics propagate.
///
/// # Errors
///
/// Returns [`GuardError`] carrying the incident in strict mode.
pub fn run_guarded<T>(
    f: &mut Function,
    mode: GuardMode,
    paranoid: bool,
    pass: &str,
    seed: Option<SeedDesc>,
    incidents: &mut Vec<Incident>,
    body: impl FnOnce(&mut Function) -> (T, bool),
) -> Result<Option<T>, GuardError> {
    let mut gi = GuardInstrumentation::new(mode, paranoid);
    match gi.transact(pass, seed, f, body) {
        Ok(t) => Ok(Some(t)),
        Err(incident) => {
            record(mode, incidents, incident)?;
            Ok(None)
        }
    }
}

/// Record an incident according to `mode`: push it in rollback mode, turn
/// it into a [`GuardError`] in strict mode. (For failures that need no
/// rollback, like unsupported seeds and exhausted budgets.)
///
/// # Errors
///
/// Returns [`GuardError`] carrying the incident in strict mode.
pub fn record(
    mode: GuardMode,
    incidents: &mut Vec<Incident>,
    incident: Incident,
) -> Result<(), GuardError> {
    match mode {
        GuardMode::Strict => Err(GuardError(incident)),
        _ => {
            incidents.push(incident);
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------------
// Differential execution oracle (paranoid mode)
// ---------------------------------------------------------------------------

/// Bytes allocated per pointer parameter for oracle runs — 64 elements of
/// the widest scalar, comfortably covering the constant offsets straight-
/// line kernels use.
const ORACLE_BUF_BYTES: usize = 64 * 8;

fn touches_float(f: &Function) -> bool {
    (0..f.num_values()).any(|i| {
        matches!(
            f.ty(lslp_ir::ValueId::from_raw(i as u32)).elem(),
            Some(ScalarType::F32 | ScalarType::F64)
        )
    })
}

/// Build deterministic inputs for `f`: one zero-based buffer per pointer
/// parameter (filled with a fixed pseudo-random pattern), index/scalar
/// parameters set to small constants. Both sides of the differential run
/// get bit-identical initial states.
fn synth_inputs(f: &Function, float_mode: bool) -> (Memory, Vec<Value>) {
    let mut mem = Memory::new();
    let mut args = Vec::new();
    for (k, &param) in f.params().iter().enumerate() {
        let ty = f.ty(param);
        if ty == Type::PTR {
            // Stable per-position names: parameter names can repeat or be
            // absent, and both runs must agree on the buffer identity.
            let name = format!("p{k}");
            let n = ORACLE_BUF_BYTES / 8;
            let ptr = if float_mode {
                let init: Vec<f64> = (0..n)
                    .map(|j| 0.25 + ((j as u64 * 37 + k as u64 * 11) % 64) as f64 / 16.0)
                    .collect();
                mem.alloc_f64(&name, &init)
            } else {
                let init: Vec<i64> = (0..n)
                    .map(|j| ((j as u64 * 2654435761 + k as u64 * 97) % 1021) as i64 - 300)
                    .collect();
                mem.alloc_i64(&name, &init)
            };
            args.push(ptr);
        } else {
            match ty.elem() {
                Some(ScalarType::F32 | ScalarType::F64) => args.push(Value::Float(1.5)),
                _ => args.push(Value::Int(0)),
            }
        }
    }
    (mem, args)
}

fn capture(f: &Function, float_mode: bool) -> Option<Memory> {
    let (mut mem, args) = synth_inputs(f, float_mode);
    run_function(f, &args, &mut mem).ok()?;
    Some(mem)
}

/// Differential execution: run `before` and `after` on identical
/// synthesized inputs and compare final memory states — bit-exact for
/// integer programs, within relative tolerance for float programs (the
/// vectorizer reassociates under fast-math). A `before` that does not
/// execute (e.g. out-of-bounds under the synthesized inputs) makes the
/// oracle inconclusive, which counts as agreement.
fn oracle_check(paranoid: bool, before: &Function, after: &Function) -> Result<(), String> {
    if !paranoid {
        return Ok(());
    }
    let float_mode = touches_float(before);
    let Some(pre) = capture(before, float_mode) else {
        return Ok(());
    };
    let Some(post) = capture(after, float_mode) else {
        return Err("transformed function failed to execute".to_string());
    };
    for name in pre.buffer_names() {
        let a = pre.bytes(name).expect("buffer exists");
        let b = post.bytes(name).ok_or_else(|| format!("buffer {name} disappeared"))?;
        if a == b {
            continue;
        }
        if !float_mode {
            return Err(format!("integer buffer {name} differs"));
        }
        for (idx, (ca, cb)) in a.chunks(8).zip(b.chunks(8)).enumerate() {
            let x = f64::from_le_bytes(ca.try_into().expect("8-byte chunk"));
            let y = f64::from_le_bytes(cb.try_into().expect("8-byte chunk"));
            let tol = 1e-8 * x.abs().max(y.abs()).max(1.0);
            if (x - y).abs() > tol {
                return Err(format!("{name}[{idx}] = {x} vs {y}"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lslp_ir::{FunctionBuilder, Type};

    fn store_kernel() -> Function {
        let mut f = Function::new("k");
        let pa = f.add_param("A", Type::PTR);
        let x = f.add_param("x", Type::I64);
        let i = f.add_param("i", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let g = b.gep(pa, i, 8);
        b.store(x, g);
        f
    }

    #[test]
    fn commit_passes_result_through() {
        let mut f = store_kernel();
        let mut incidents = Vec::new();
        let r =
            run_guarded(&mut f, GuardMode::Rollback, false, "test", None, &mut incidents, |_| {
                (42, false)
            });
        assert_eq!(r.unwrap(), Some(42));
        assert!(incidents.is_empty());
    }

    #[test]
    fn panic_rolls_back_and_records() {
        let mut f = store_kernel();
        let before = lslp_ir::print_function(&f);
        let mut incidents = Vec::new();
        let desc = |_: &Function| "A[+0..+8)".to_string();
        let r = run_guarded(
            &mut f,
            GuardMode::Rollback,
            false,
            "test",
            Some(&desc as SeedDesc),
            &mut incidents,
            |f| {
                f.add_param("junk", Type::I64); // partial mutation, then...
                panic!("injected panic");
                #[allow(unreachable_code)]
                ((), true)
            },
        );
        assert_eq!(r.unwrap(), None);
        assert_eq!(lslp_ir::print_function(&f), before, "must restore bit-for-bit");
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].kind, IncidentKind::Panic);
        assert_eq!(incidents[0].detail, "injected panic");
        assert_eq!(incidents[0].seed.as_deref(), Some("A[+0..+8)"));
    }

    #[test]
    fn strict_mode_aborts_with_error() {
        let mut f = store_kernel();
        let before = lslp_ir::print_function(&f);
        let mut incidents = Vec::new();
        let r = run_guarded(
            &mut f,
            GuardMode::Strict,
            false,
            "test",
            None,
            &mut incidents,
            |_| -> ((), bool) { panic!("boom") },
        );
        let err = r.unwrap_err();
        assert_eq!(err.0.kind, IncidentKind::Panic);
        assert_eq!(lslp_ir::print_function(&f), before);
        assert!(incidents.is_empty(), "strict reports via Err, not the list");
    }

    #[test]
    fn off_mode_is_unguarded() {
        let mut f = store_kernel();
        let mut incidents = Vec::new();
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_guarded(
                &mut f,
                GuardMode::Off,
                false,
                "test",
                None,
                &mut incidents,
                |_| -> ((), bool) { panic!("boom") },
            )
        }));
        assert!(r.is_err(), "off mode must let panics propagate");
    }

    #[test]
    fn instrumentation_hooks_compose() {
        let mut f = store_kernel();
        let before = lslp_ir::print_function(&f);
        let mut gi = GuardInstrumentation::new(GuardMode::Rollback, false);
        gi.before_pass(&f);
        let outcome: Result<(), _> = gi.catch_panics(|| {
            f.add_param("junk", Type::I64);
            panic!("late panic");
        });
        assert!(outcome.is_err());
        let incident = gi
            .after_pass("hooked", None, &mut f, outcome.map(|_| true))
            .expect("panic must produce an incident");
        assert_eq!(incident.kind, IncidentKind::Panic);
        assert_eq!(incident.pass, "hooked");
        assert_eq!(lslp_ir::print_function(&f), before, "after_pass must roll back");
    }

    #[test]
    fn transact_commits_clean_mutations() {
        let mut f = store_kernel();
        let mut gi = GuardInstrumentation::new(GuardMode::Strict, false);
        let r = gi.transact("test", None, &mut f, |f| {
            let n = f.num_values();
            f.add_param("extra", Type::I64);
            (n, true)
        });
        assert!(r.is_ok(), "valid mutation must commit even in strict mode");
        assert_eq!(f.params().len(), 4, "mutation survives the transaction");
    }

    #[test]
    fn mode_parsing_round_trips() {
        for mode in [GuardMode::Off, GuardMode::Rollback, GuardMode::Strict] {
            assert_eq!(GuardMode::parse(&mode.to_string()), Some(mode));
        }
        assert_eq!(GuardMode::parse("paranoid"), None);
        assert_eq!(GuardMode::default(), GuardMode::Rollback);
    }

    #[test]
    fn incident_display_is_readable() {
        let i = Incident {
            pass: "vectorize".into(),
            seed: Some("A[+0..+16)".into()),
            kind: IncidentKind::VerifyError,
            detail: "operand out of range".into(),
        };
        assert_eq!(
            i.to_string(),
            "[verify error] vectorize (seed A[+0..+16)): operand out of range"
        );
    }
}
