//! Transactional pass guard: verified checkpoints, panic isolation, and
//! scalar fallback for the vectorizer pipeline.
//!
//! Every pass invocation and per-seed vectorization attempt can run as a
//! *transaction*: a rollback point is established, the transform runs
//! inside [`std::panic::catch_unwind`], and the result is checked before
//! it is committed — IR verification always (release builds included),
//! plus a differential execution against the scalar original with the
//! [`lslp_interp`] oracle when *paranoid* mode is on. Any panic, verifier
//! error, or oracle mismatch rolls the function back to the rollback
//! point bit-for-bit, records a structured [`Incident`], and lets
//! compilation continue with the scalar code — a miscompiling or crashing
//! transform degrades to a missed optimization instead of a wrong program
//! or a dead compiler.
//!
//! The [`GuardMode`] knob selects the failure semantics:
//!
//! * [`GuardMode::Rollback`] (default) — roll back, record, continue;
//! * [`GuardMode::Strict`] — abort the pass with a [`GuardError`] on the
//!   first incident (for CI and debugging, where a rollback would hide
//!   the bug);
//! * [`GuardMode::Off`] — the historical behavior: no rollback point, no
//!   panic isolation, verification only via `debug_assert!` at the call
//!   sites.
//!
//! Orthogonally, [`RollbackStrategy`] selects the rollback *mechanism*:
//!
//! * [`RollbackStrategy::Delta`] (default) — open an IR transaction
//!   ([`Function::begin_txn`]); rollback replays the delta log in reverse,
//!   so a committed attempt costs ~nothing and a rollback costs
//!   O(touched instructions) instead of O(function). Commits verify
//!   incrementally ([`lslp_ir::verify_function_touched`]).
//! * [`RollbackStrategy::Snapshot`] — the historical mechanism: a full
//!   `Function::clone()` before the transform, restored by move on
//!   failure. Kept as a debug fallback (`--guard snapshot`).
//! * [`RollbackStrategy::Differential`] — run *both* mechanisms and
//!   assert on every rollback that the delta-restored function is
//!   bit-identical (printed form and epoch) to the snapshot. A divergence
//!   is a bug in the delta log and panics immediately.
//!
//! See `DESIGN.md` § "Pass guard & failure semantics" and `docs/IR.md`
//! § "Transactions" for the underlying delta-log contract.

use std::any::Any;
use std::cell::Cell;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

use lslp_interp::{run_function, Memory, Value};
use lslp_ir::{Function, ScalarType, TxnMark, Type};

/// Failure semantics of the transactional pass guard.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum GuardMode {
    /// No guard: transforms run unchecked, panics propagate, verification
    /// happens only in debug builds (the historical behavior).
    Off,
    /// Roll back to the pre-transform snapshot on any incident, record it,
    /// and continue with the scalar code.
    #[default]
    Rollback,
    /// Abort with a [`GuardError`] on the first incident.
    Strict,
}

impl GuardMode {
    /// Parse a CLI spelling (`off`, `rollback`, `strict`).
    pub fn parse(s: &str) -> Option<GuardMode> {
        match s {
            "off" => Some(GuardMode::Off),
            "rollback" => Some(GuardMode::Rollback),
            "strict" => Some(GuardMode::Strict),
            _ => None,
        }
    }
}

impl fmt::Display for GuardMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            GuardMode::Off => "off",
            GuardMode::Rollback => "rollback",
            GuardMode::Strict => "strict",
        })
    }
}

/// The mechanism a guarded transaction uses to restore the pre-transform
/// state on failure. Orthogonal to [`GuardMode`] (which decides what
/// *happens* after a failure).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RollbackStrategy {
    /// Delta-undo log (default): open an IR transaction; rollback replays
    /// only the touched records, commit discards the log. O(changes), not
    /// O(function).
    #[default]
    Delta,
    /// Full `Function::clone()` snapshot, restored by move on failure.
    /// The historical mechanism; kept as a debug fallback.
    Snapshot,
    /// Run both mechanisms and assert delta-rollback ≡ snapshot-rollback
    /// (printed form and epoch) on every rollback. Debug/CI mode; a
    /// divergence panics.
    Differential,
}

impl RollbackStrategy {
    /// Parse a CLI spelling (`delta`, `snapshot`, `differential`).
    pub fn parse(s: &str) -> Option<RollbackStrategy> {
        match s {
            "delta" => Some(RollbackStrategy::Delta),
            "snapshot" => Some(RollbackStrategy::Snapshot),
            "differential" => Some(RollbackStrategy::Differential),
            _ => None,
        }
    }
}

impl fmt::Display for RollbackStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RollbackStrategy::Delta => "delta",
            RollbackStrategy::Snapshot => "snapshot",
            RollbackStrategy::Differential => "differential",
        })
    }
}

/// The complete guard configuration: failure semantics, rollback
/// mechanism, and whether the differential-execution oracle runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct GuardPolicy {
    /// What happens after an incident (rollback / abort / nothing).
    pub mode: GuardMode,
    /// How the pre-transform state is restored.
    pub strategy: RollbackStrategy,
    /// Whether to run the differential-execution oracle on every commit.
    /// Paranoid mode keeps a snapshot for the oracle's "before" side even
    /// under [`RollbackStrategy::Delta`].
    pub paranoid: bool,
}

impl GuardPolicy {
    /// A policy with the given failure semantics and default mechanism.
    pub fn new(mode: GuardMode) -> GuardPolicy {
        GuardPolicy { mode, ..GuardPolicy::default() }
    }

    /// Replace the rollback mechanism.
    pub fn strategy(mut self, strategy: RollbackStrategy) -> GuardPolicy {
        self.strategy = strategy;
        self
    }

    /// Enable or disable the paranoid oracle.
    pub fn paranoid(mut self, paranoid: bool) -> GuardPolicy {
        self.paranoid = paranoid;
        self
    }
}

/// What kind of failure a guarded transaction hit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IncidentKind {
    /// The transform panicked; the unwind was caught.
    Panic,
    /// The transformed function failed IR verification.
    VerifyError,
    /// Paranoid mode: the transformed function computed a different memory
    /// state than the pre-transform function on synthesized inputs.
    OracleMismatch,
    /// A compile-fuel budget (wall-clock or graph node count) ran out and
    /// the work was truncated or abandoned.
    FuelExhausted,
    /// A seed group the vectorizer cannot process (e.g. a store whose
    /// stored value has no element type); skipped.
    UnsupportedSeed,
}

impl fmt::Display for IncidentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IncidentKind::Panic => "panic",
            IncidentKind::VerifyError => "verify error",
            IncidentKind::OracleMismatch => "oracle mismatch",
            IncidentKind::FuelExhausted => "fuel exhausted",
            IncidentKind::UnsupportedSeed => "unsupported seed",
        })
    }
}

/// A structured record of one guarded-transaction failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Incident {
    /// Which pass (or pass stage) was running, e.g. `"vectorize"`,
    /// `"simplify"`.
    pub pass: String,
    /// The seed group description for per-seed transactions, if any.
    pub seed: Option<String>,
    /// The failure class.
    pub kind: IncidentKind,
    /// Human-readable details (panic message, verifier error, mismatch
    /// location).
    pub detail: String,
}

impl fmt::Display for Incident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.kind, self.pass)?;
        if let Some(seed) = &self.seed {
            write!(f, " (seed {seed})")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// The error [`GuardMode::Strict`] aborts with: the first incident.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GuardError(pub Incident);

impl fmt::Display for GuardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "guard (strict): {}", self.0)
    }
}

impl std::error::Error for GuardError {}

thread_local! {
    /// Set while a guarded body runs, so the panic hook stays silent for
    /// panics the guard is about to catch and convert into incidents.
    static GUARD_ACTIVE: Cell<bool> = const { Cell::new(false) };
}

/// Install (once, process-wide) a panic hook that suppresses the default
/// stderr report for panics occurring inside a guarded transaction on this
/// thread; all other panics keep the previous hook's behavior.
fn install_quiet_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !GUARD_ACTIVE.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A lazily evaluated seed description: only rendered when an incident is
/// actually recorded, so the hot path never pays the formatting cost.
pub type SeedDesc<'a> = &'a dyn Fn(&Function) -> String;

/// Pass-instrumentation hooks: the rollback-point / verify / rollback
/// machinery of the transactional guard, factored out so the pass manager
/// (`crate::pm::PassManager`) wraps whole passes with the same
/// before/after-pass protocol that per-seed vectorization transactions
/// use, instead of every call site re-implementing the wrapping.
///
/// Protocol:
///
/// 1. [`GuardInstrumentation::before_pass`] — establish the rollback
///    point (open an IR transaction and/or take a snapshot, per
///    [`RollbackStrategy`]);
/// 2. run the transform (under [`GuardInstrumentation::catch_panics`] when
///    panic isolation is wanted);
/// 3. [`GuardInstrumentation::after_pass`] — verify the mutated function
///    (plus the differential-execution oracle in paranoid mode) and either
///    commit (`None`) or roll back and return the [`Incident`].
///
/// The caller applies the [`GuardMode`] policy to a returned incident via
/// [`record`]; [`GuardInstrumentation::transact`] bundles all of the above
/// for one-shot transactions.
pub struct GuardInstrumentation {
    policy: GuardPolicy,
    snapshot: Option<Function>,
    txn: Option<TxnMark>,
}

impl GuardInstrumentation {
    /// Instrumentation for the given policy. Installs the quiet panic hook
    /// once per process when the guard is active.
    pub fn new(policy: GuardPolicy) -> GuardInstrumentation {
        if policy.mode != GuardMode::Off {
            install_quiet_hook();
        }
        GuardInstrumentation { policy, snapshot: None, txn: None }
    }

    /// The failure semantics this instrumentation applies.
    pub fn mode(&self) -> GuardMode {
        self.policy.mode
    }

    /// The full guard policy this instrumentation applies.
    pub fn policy(&self) -> GuardPolicy {
        self.policy
    }

    /// Before-pass hook: establish the rollback point. Under
    /// [`RollbackStrategy::Delta`] this opens an IR transaction (no clone);
    /// under [`RollbackStrategy::Snapshot`] it clones `f`; under
    /// [`RollbackStrategy::Differential`] it does both. Paranoid mode
    /// additionally keeps a snapshot in any strategy — the oracle needs the
    /// pre-transform function to execute. No-op in [`GuardMode::Off`].
    pub fn before_pass(&mut self, f: &mut Function) {
        if self.policy.mode == GuardMode::Off {
            return;
        }
        if self.policy.strategy != RollbackStrategy::Snapshot {
            self.txn = Some(f.begin_txn());
        }
        if self.policy.strategy != RollbackStrategy::Delta || self.policy.paranoid {
            self.snapshot = Some(f.clone());
        }
    }

    /// Run `body` with panics caught and the default panic report
    /// suppressed (the guard converts the payload into an incident).
    pub fn catch_panics<T>(&self, body: impl FnOnce() -> T) -> Result<T, Box<dyn Any + Send>> {
        GUARD_ACTIVE.with(|g| g.set(true));
        let r = panic::catch_unwind(AssertUnwindSafe(body));
        GUARD_ACTIVE.with(|g| g.set(false));
        r
    }

    /// After-pass hook. `outcome` is `Ok(mutated)` when the transform
    /// completed (`mutated` says whether `f` changed, so clean read-only
    /// runs skip verification and oracle costs) or `Err(payload)` when it
    /// panicked. Returns `None` on commit (closing the IR transaction and
    /// discarding the rollback point); on any failure restores `f` to the
    /// `before_pass` state bit-for-bit and returns the incident. `seed` is
    /// evaluated lazily, only when an incident is built (after rollback,
    /// so it describes the pre-transform state).
    ///
    /// Commits under [`RollbackStrategy::Delta`] verify incrementally:
    /// only instructions whose payload (or operand payload) the
    /// transaction touched get the full per-opcode type check.
    pub fn after_pass(
        &mut self,
        pass: &str,
        seed: Option<SeedDesc>,
        f: &mut Function,
        outcome: Result<bool, Box<dyn Any + Send>>,
    ) -> Option<Incident> {
        let snapshot = self.snapshot.take();
        let txn = self.txn.take();
        if self.policy.mode == GuardMode::Off {
            if let Err(payload) = outcome {
                panic::resume_unwind(payload);
            }
            return None;
        }
        if self.policy.strategy != RollbackStrategy::Snapshot {
            assert!(txn.is_some(), "before_pass must run before after_pass");
        } else {
            assert!(snapshot.is_some(), "before_pass must run before after_pass");
        }
        let commit = |f: &mut Function| {
            if let Some(mark) = txn {
                f.commit_txn(mark);
            }
        };
        let failure = match outcome {
            Err(payload) => Some((IncidentKind::Panic, panic_message(payload))),
            Ok(mutated) => {
                if !mutated {
                    commit(f);
                    return None;
                }
                let verdict = match txn {
                    Some(mark) => lslp_ir::verify_function_touched(f, &f.touched_since(mark)),
                    None => lslp_ir::verify_function(f),
                };
                match verdict {
                    Err(e) => Some((IncidentKind::VerifyError, e.to_string())),
                    Ok(()) => oracle_check(self.policy.paranoid, snapshot.as_ref(), f)
                        .err()
                        .map(|detail| (IncidentKind::OracleMismatch, detail)),
                }
            }
        };
        match failure {
            None => {
                commit(f);
                None
            }
            Some((kind, detail)) => {
                restore(self.policy.strategy, f, txn, snapshot, pass);
                Some(Incident { pass: pass.to_string(), seed: seed.map(|d| d(f)), kind, detail })
            }
        }
    }

    /// One complete guarded transaction over `f`: snapshot, run `body`
    /// (which returns `(result, mutated)`), verify, commit or roll back.
    /// In [`GuardMode::Off`] the body runs unguarded and panics propagate.
    ///
    /// # Errors
    ///
    /// Returns the [`Incident`] when the transaction was rolled back; the
    /// caller decides between recording and aborting (see [`record`]).
    pub fn transact<T>(
        &mut self,
        pass: &str,
        seed: Option<SeedDesc>,
        f: &mut Function,
        body: impl FnOnce(&mut Function) -> (T, bool),
    ) -> Result<T, Incident> {
        if self.policy.mode == GuardMode::Off {
            let (t, _mutated) = body(f);
            return Ok(t);
        }
        self.before_pass(f);
        let (value, flag) = match self.catch_panics(AssertUnwindSafe(|| body(f))) {
            Ok((t, mutated)) => (Some(t), Ok(mutated)),
            Err(payload) => (None, Err(payload)),
        };
        match self.after_pass(pass, seed, f, flag) {
            None => Ok(value.expect("commit implies the body completed")),
            Some(incident) => Err(incident),
        }
    }
}

/// Restore `f` to its pre-transform state using the given mechanism.
/// Under [`RollbackStrategy::Differential`], both mechanisms run and any
/// divergence between them panics — that is the mode's purpose.
fn restore(
    strategy: RollbackStrategy,
    f: &mut Function,
    txn: Option<TxnMark>,
    snapshot: Option<Function>,
    pass: &str,
) {
    match strategy {
        RollbackStrategy::Delta => {
            f.rollback_txn(txn.expect("delta guard holds an open transaction"));
        }
        RollbackStrategy::Snapshot => {
            // Restore by move: the snapshot is owned here and consumed by
            // exactly one rollback, so no second clone is needed.
            *f = snapshot.expect("snapshot guard holds a snapshot");
        }
        RollbackStrategy::Differential => {
            let snap = snapshot.expect("differential guard holds a snapshot");
            f.rollback_txn(txn.expect("differential guard holds an open transaction"));
            let delta_print = lslp_ir::print_function(f);
            let snap_print = lslp_ir::print_function(&snap);
            assert!(
                delta_print == snap_print,
                "differential guard: delta-rollback diverged from snapshot-rollback \
                 in pass {pass}\n--- delta-restored ---\n{delta_print}\
                 --- snapshot ---\n{snap_print}"
            );
            assert_eq!(
                f.epoch(),
                snap.epoch(),
                "differential guard: delta-rollback restored a different epoch \
                 than the snapshot in pass {pass}"
            );
        }
    }
}

/// Run `body` over `f` as a guarded transaction (convenience wrapper over
/// [`GuardInstrumentation::transact`] + [`record`]).
///
/// `body` returns `(result, mutated)`; `mutated` tells the guard whether
/// `f` was actually changed, so clean read-only attempts skip the
/// verification and oracle costs. On commit the result is returned as
/// `Ok(Some(result))`. On an incident:
///
/// * [`GuardMode::Rollback`] restores `f` from the snapshot, pushes the
///   incident onto `incidents`, and returns `Ok(None)`;
/// * [`GuardMode::Strict`] restores `f` and returns `Err(GuardError)`;
/// * [`GuardMode::Off`] never produces incidents — `body` runs unguarded
///   and panics propagate.
///
/// # Errors
///
/// Returns [`GuardError`] carrying the incident in strict mode.
pub fn run_guarded<T>(
    f: &mut Function,
    policy: GuardPolicy,
    pass: &str,
    seed: Option<SeedDesc>,
    incidents: &mut Vec<Incident>,
    body: impl FnOnce(&mut Function) -> (T, bool),
) -> Result<Option<T>, GuardError> {
    let mut gi = GuardInstrumentation::new(policy);
    match gi.transact(pass, seed, f, body) {
        Ok(t) => Ok(Some(t)),
        Err(incident) => {
            record(policy.mode, incidents, incident)?;
            Ok(None)
        }
    }
}

/// Record an incident according to `mode`: push it in rollback mode, turn
/// it into a [`GuardError`] in strict mode. (For failures that need no
/// rollback, like unsupported seeds and exhausted budgets.)
///
/// # Errors
///
/// Returns [`GuardError`] carrying the incident in strict mode.
pub fn record(
    mode: GuardMode,
    incidents: &mut Vec<Incident>,
    incident: Incident,
) -> Result<(), GuardError> {
    match mode {
        GuardMode::Strict => Err(GuardError(incident)),
        _ => {
            incidents.push(incident);
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------------
// Differential execution oracle (paranoid mode)
// ---------------------------------------------------------------------------

/// Bytes allocated per pointer parameter for oracle runs — 64 elements of
/// the widest scalar, comfortably covering the constant offsets straight-
/// line kernels use.
const ORACLE_BUF_BYTES: usize = 64 * 8;

fn touches_float(f: &Function) -> bool {
    (0..f.num_values()).any(|i| {
        matches!(
            f.ty(lslp_ir::ValueId::from_raw(i as u32)).elem(),
            Some(ScalarType::F32 | ScalarType::F64)
        )
    })
}

/// Build deterministic inputs for `f`: one zero-based buffer per pointer
/// parameter (filled with a fixed pseudo-random pattern), index/scalar
/// parameters set to small constants. Both sides of the differential run
/// get bit-identical initial states.
fn synth_inputs(f: &Function, float_mode: bool) -> (Memory, Vec<Value>) {
    let mut mem = Memory::new();
    let mut args = Vec::new();
    for (k, &param) in f.params().iter().enumerate() {
        let ty = f.ty(param);
        if ty == Type::PTR {
            // Stable per-position names: parameter names can repeat or be
            // absent, and both runs must agree on the buffer identity.
            let name = format!("p{k}");
            let n = ORACLE_BUF_BYTES / 8;
            let ptr = if float_mode {
                let init: Vec<f64> = (0..n)
                    .map(|j| 0.25 + ((j as u64 * 37 + k as u64 * 11) % 64) as f64 / 16.0)
                    .collect();
                mem.alloc_f64(&name, &init)
            } else {
                let init: Vec<i64> = (0..n)
                    .map(|j| ((j as u64 * 2654435761 + k as u64 * 97) % 1021) as i64 - 300)
                    .collect();
                mem.alloc_i64(&name, &init)
            };
            args.push(ptr);
        } else {
            match ty.elem() {
                Some(ScalarType::F32 | ScalarType::F64) => args.push(Value::Float(1.5)),
                _ => args.push(Value::Int(0)),
            }
        }
    }
    (mem, args)
}

fn capture(f: &Function, float_mode: bool) -> Option<Memory> {
    let (mut mem, args) = synth_inputs(f, float_mode);
    run_function(f, &args, &mut mem).ok()?;
    Some(mem)
}

/// Differential execution: run `before` and `after` on identical
/// synthesized inputs and compare final memory states — bit-exact for
/// integer programs, within relative tolerance for float programs (the
/// vectorizer reassociates under fast-math). A `before` that does not
/// execute (e.g. out-of-bounds under the synthesized inputs) makes the
/// oracle inconclusive, which counts as agreement. `before` is the
/// paranoid-mode snapshot; it is always present when `paranoid` is set
/// (see [`GuardInstrumentation::before_pass`]).
fn oracle_check(paranoid: bool, before: Option<&Function>, after: &Function) -> Result<(), String> {
    if !paranoid {
        return Ok(());
    }
    let before = before.expect("paranoid mode keeps a snapshot for the oracle");
    let float_mode = touches_float(before);
    let Some(pre) = capture(before, float_mode) else {
        return Ok(());
    };
    let Some(post) = capture(after, float_mode) else {
        return Err("transformed function failed to execute".to_string());
    };
    for name in pre.buffer_names() {
        let a = pre.bytes(name).expect("buffer exists");
        let b = post.bytes(name).ok_or_else(|| format!("buffer {name} disappeared"))?;
        if a == b {
            continue;
        }
        if !float_mode {
            return Err(format!("integer buffer {name} differs"));
        }
        for (idx, (ca, cb)) in a.chunks(8).zip(b.chunks(8)).enumerate() {
            let x = f64::from_le_bytes(ca.try_into().expect("8-byte chunk"));
            let y = f64::from_le_bytes(cb.try_into().expect("8-byte chunk"));
            let tol = 1e-8 * x.abs().max(y.abs()).max(1.0);
            if (x - y).abs() > tol {
                return Err(format!("{name}[{idx}] = {x} vs {y}"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lslp_ir::{FunctionBuilder, Type};

    fn store_kernel() -> Function {
        let mut f = Function::new("k");
        let pa = f.add_param("A", Type::PTR);
        let x = f.add_param("x", Type::I64);
        let i = f.add_param("i", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let g = b.gep(pa, i, 8);
        b.store(x, g);
        f
    }

    #[test]
    fn commit_passes_result_through() {
        let mut f = store_kernel();
        let mut incidents = Vec::new();
        let policy = GuardPolicy::new(GuardMode::Rollback);
        let r = run_guarded(&mut f, policy, "test", None, &mut incidents, |_| (42, false));
        assert_eq!(r.unwrap(), Some(42));
        assert!(incidents.is_empty());
    }

    #[test]
    fn panic_rolls_back_and_records() {
        let mut f = store_kernel();
        let before = lslp_ir::print_function(&f);
        let mut incidents = Vec::new();
        let desc = |_: &Function| "A[+0..+8)".to_string();
        let r = run_guarded(
            &mut f,
            GuardPolicy::new(GuardMode::Rollback),
            "test",
            Some(&desc as SeedDesc),
            &mut incidents,
            |f| {
                f.add_param("junk", Type::I64); // partial mutation, then...
                panic!("injected panic");
                #[allow(unreachable_code)]
                ((), true)
            },
        );
        assert_eq!(r.unwrap(), None);
        assert_eq!(lslp_ir::print_function(&f), before, "must restore bit-for-bit");
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].kind, IncidentKind::Panic);
        assert_eq!(incidents[0].detail, "injected panic");
        assert_eq!(incidents[0].seed.as_deref(), Some("A[+0..+8)"));
    }

    #[test]
    fn strict_mode_aborts_with_error() {
        let mut f = store_kernel();
        let before = lslp_ir::print_function(&f);
        let mut incidents = Vec::new();
        let r = run_guarded(
            &mut f,
            GuardPolicy::new(GuardMode::Strict),
            "test",
            None,
            &mut incidents,
            |_| -> ((), bool) { panic!("boom") },
        );
        let err = r.unwrap_err();
        assert_eq!(err.0.kind, IncidentKind::Panic);
        assert_eq!(lslp_ir::print_function(&f), before);
        assert!(incidents.is_empty(), "strict reports via Err, not the list");
    }

    #[test]
    fn off_mode_is_unguarded() {
        let mut f = store_kernel();
        let mut incidents = Vec::new();
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_guarded(
                &mut f,
                GuardPolicy::new(GuardMode::Off),
                "test",
                None,
                &mut incidents,
                |_| -> ((), bool) { panic!("boom") },
            )
        }));
        assert!(r.is_err(), "off mode must let panics propagate");
    }

    #[test]
    fn instrumentation_hooks_compose() {
        let mut f = store_kernel();
        let before = lslp_ir::print_function(&f);
        let mut gi = GuardInstrumentation::new(GuardPolicy::new(GuardMode::Rollback));
        gi.before_pass(&mut f);
        let outcome: Result<(), _> = gi.catch_panics(|| {
            f.add_param("junk", Type::I64);
            panic!("late panic");
        });
        assert!(outcome.is_err());
        let incident = gi
            .after_pass("hooked", None, &mut f, outcome.map(|_| true))
            .expect("panic must produce an incident");
        assert_eq!(incident.kind, IncidentKind::Panic);
        assert_eq!(incident.pass, "hooked");
        assert_eq!(lslp_ir::print_function(&f), before, "after_pass must roll back");
    }

    #[test]
    fn transact_commits_clean_mutations() {
        let mut f = store_kernel();
        let mut gi = GuardInstrumentation::new(GuardPolicy::new(GuardMode::Strict));
        let r = gi.transact("test", None, &mut f, |f| {
            let n = f.num_values();
            f.add_param("extra", Type::I64);
            (n, true)
        });
        assert!(r.is_ok(), "valid mutation must commit even in strict mode");
        assert_eq!(f.params().len(), 4, "mutation survives the transaction");
    }

    #[test]
    fn mode_parsing_round_trips() {
        for mode in [GuardMode::Off, GuardMode::Rollback, GuardMode::Strict] {
            assert_eq!(GuardMode::parse(&mode.to_string()), Some(mode));
        }
        assert_eq!(GuardMode::parse("paranoid"), None);
        assert_eq!(GuardMode::default(), GuardMode::Rollback);
    }

    #[test]
    fn strategy_parsing_round_trips() {
        for s in
            [RollbackStrategy::Delta, RollbackStrategy::Snapshot, RollbackStrategy::Differential]
        {
            assert_eq!(RollbackStrategy::parse(&s.to_string()), Some(s));
        }
        assert_eq!(RollbackStrategy::parse("clone"), None);
        assert_eq!(RollbackStrategy::default(), RollbackStrategy::Delta);
    }

    #[test]
    fn delta_is_the_default_and_opens_a_txn() {
        let mut f = store_kernel();
        let mut gi = GuardInstrumentation::new(GuardPolicy::new(GuardMode::Rollback));
        gi.before_pass(&mut f);
        assert!(f.in_txn(), "delta guard opens an IR transaction");
        let incident = gi.after_pass("t", None, &mut f, Ok(false));
        assert!(incident.is_none());
        assert!(!f.in_txn(), "after_pass closes the transaction");
    }

    #[test]
    fn snapshot_strategy_restores_bit_for_bit() {
        let mut f = store_kernel();
        let before = lslp_ir::print_function(&f);
        let e0 = f.epoch();
        let mut incidents = Vec::new();
        let policy = GuardPolicy::new(GuardMode::Rollback).strategy(RollbackStrategy::Snapshot);
        let r = run_guarded(&mut f, policy, "test", None, &mut incidents, |f| {
            f.add_param("junk", Type::I64);
            panic!("boom");
            #[allow(unreachable_code)]
            ((), true)
        });
        assert_eq!(r.unwrap(), None);
        assert_eq!(lslp_ir::print_function(&f), before);
        assert_eq!(f.epoch(), e0, "snapshot restore keeps the pre-txn epoch");
        assert!(!f.in_txn(), "snapshot strategy never opens a transaction");
        assert_eq!(incidents.len(), 1);
    }

    #[test]
    fn delta_strategy_restores_bit_for_bit() {
        let mut f = store_kernel();
        let before = lslp_ir::print_function(&f);
        let e0 = f.epoch();
        let mut incidents = Vec::new();
        let policy = GuardPolicy::new(GuardMode::Rollback);
        let r = run_guarded(&mut f, policy, "test", None, &mut incidents, |f| {
            // An invalid mutation that completes: exercises the verify-error
            // path (incremental verification, then delta rollback).
            let a = f.params()[1];
            let bad = f.add_param("b", Type::F64);
            f.push(lslp_ir::Opcode::Add, Type::I64, vec![a, bad], lslp_ir::InstAttr::None);
            ((), true)
        });
        assert_eq!(r.unwrap(), None);
        assert_eq!(lslp_ir::print_function(&f), before, "delta rollback is bit-for-bit");
        assert_eq!(f.epoch(), e0, "delta rollback restores the pre-txn epoch");
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].kind, IncidentKind::VerifyError);
    }

    #[test]
    fn differential_strategy_agrees_on_clean_rollbacks() {
        let mut f = store_kernel();
        let before = lslp_ir::print_function(&f);
        let mut incidents = Vec::new();
        let policy = GuardPolicy::new(GuardMode::Rollback).strategy(RollbackStrategy::Differential);
        for _ in 0..3 {
            let r = run_guarded(&mut f, policy, "test", None, &mut incidents, |f| {
                f.add_param("junk", Type::I64);
                panic!("boom");
                #[allow(unreachable_code)]
                ((), true)
            });
            assert_eq!(r.unwrap(), None);
        }
        assert_eq!(lslp_ir::print_function(&f), before);
        assert_eq!(incidents.len(), 3);
        // A committing transaction under differential also works.
        let r = run_guarded(&mut f, policy, "test", None, &mut incidents, |f| {
            f.add_param("extra", Type::I64);
            ((), true)
        });
        assert_eq!(r.unwrap(), Some(()));
        assert_eq!(f.params().len(), 4);
    }

    #[test]
    fn incident_display_is_readable() {
        let i = Incident {
            pass: "vectorize".into(),
            seed: Some("A[+0..+16)".into()),
            kind: IncidentKind::VerifyError,
            detail: "operand out of range".into(),
        };
        assert_eq!(
            i.to_string(),
            "[verify error] vectorize (seed A[+0..+16)): operand out of range"
        );
    }
}
