//! Unroll-and-SLP: fully unroll small counted loops.
//!
//! A [`Terminator::Loop`] region with a compile-time trip count is the
//! frontend's lowering of `loop i in 0..N { … }`. The straight-line
//! vectorizer cannot see across iterations, so this pass peels the region
//! completely: each iteration's instructions are cloned into the loop's
//! header block with the induction variable rewritten to the iteration
//! constant and loop-carried parameters rewritten to the previous
//! iteration's values. Adjacent-store seeding then finds packs *across*
//! iterations — the paper's pipeline applied to loops (unroll, then SLP).
//!
//! ## Eligibility and budget
//!
//! The body region must be a linear chain of blocks ending in `continue`
//! (run [`crate::ifconv`] first — it turns branchy bodies into selects).
//! To keep compile time and code growth bounded, a loop is unrolled only
//! when `trip × body-instructions ≤` [`UNROLL_BUDGET`]; larger loops keep
//! their CFG and simply stay scalar.

use std::collections::{HashMap, HashSet};

use lslp_ir::{BlockId, Function, Module, Terminator, ValueId};

/// Maximum `trip × body-instruction` product a loop may have and still be
/// fully unrolled.
pub const UNROLL_BUDGET: usize = 256;

/// The read-only scan of one loop region: the chain of body blocks and a
/// proof that it is linear.
struct Region {
    /// Body blocks in execution order.
    chain: Vec<BlockId>,
    /// Total instruction count across the chain.
    insts: usize,
}

/// Walk the body region from `body`, requiring a linear `jump` chain that
/// ends in `continue`.
fn scan_region(f: &Function, body: BlockId) -> Option<Region> {
    let cfg = f.cfg()?;
    let mut chain = Vec::new();
    let mut visited = HashSet::new();
    let mut insts = 0;
    let mut cur = body;
    loop {
        if !visited.insert(cur) {
            return None;
        }
        chain.push(cur);
        insts += cfg.block(cur).insts().len();
        match cfg.block(cur).term() {
            Terminator::Continue { .. } => return Some(Region { chain, insts }),
            Terminator::Jump { target, .. } => cur = *target,
            _ => return None, // br/ret/nested loop: not a linear body
        }
    }
}

/// Resolve `v` through the clone map.
fn resolve(map: &HashMap<ValueId, ValueId>, v: ValueId) -> ValueId {
    *map.get(&v).unwrap_or(&v)
}

/// Fully unroll every in-budget counted loop in `f`, then collapse the CFG
/// to a straight-line body if only linear jumps remain. Returns the number
/// of loops unrolled. No-op on straight-line functions.
pub fn run(f: &mut Function) -> usize {
    if f.cfg().is_none() {
        return 0;
    }
    let mut unrolled = 0;
    while let Some((header, region)) = find_candidate(f) {
        unroll_at(f, header, &region);
        unrolled += 1;
    }
    crate::ifconv::flatten_linear_cfg(f);
    unrolled
}

/// Find one unrollable loop header and its scanned region.
fn find_candidate(f: &Function) -> Option<(BlockId, Region)> {
    let cfg = f.cfg()?;
    for b in cfg.block_ids() {
        let Terminator::Loop { trip, .. } = cfg.block(b).term() else { continue };
        let trip = f.as_const(*trip).and_then(|c| c.as_int()).unwrap_or(0);
        if trip < 1 {
            continue;
        }
        let Some(region) = scan_region(
            f,
            match cfg.block(b).term() {
                Terminator::Loop { body, .. } => *body,
                _ => unreachable!(),
            },
        ) else {
            continue;
        };
        if (trip as usize).saturating_mul(region.insts) > UNROLL_BUDGET {
            continue;
        }
        return Some((b, region));
    }
    None
}

/// Clone the region `trip` times into the header block and jump straight
/// to the exit.
fn unroll_at(f: &mut Function, header: BlockId, region: &Region) {
    let Terminator::Loop { trip, body, init, exit } = f.block(header).term().clone() else {
        unreachable!("candidate must end in loop");
    };
    let trip = f.as_const(trip).and_then(|c| c.as_int()).expect("verified constant trip");
    let body_params = f.block(body).params().to_vec();
    let (iv, carried_params) = body_params.split_first().expect("verified iv parameter");

    let mut carried: Vec<ValueId> = init.clone();
    for k in 0..trip {
        let mut map: HashMap<ValueId, ValueId> = HashMap::new();
        let kc = f.const_i64(k);
        map.insert(*iv, kc);
        for (&p, &v) in carried_params.iter().zip(&carried) {
            map.insert(p, v);
        }
        for &blk in &region.chain {
            for id in f.block(blk).insts().to_vec() {
                let inst = f.inst(id).expect("blocks contain instructions").clone();
                let args = inst.args.iter().map(|&a| resolve(&map, a)).collect();
                let clone = f.push_in_block(header, inst.op, inst.ty, args, inst.attr.clone());
                map.insert(id, clone);
            }
            match f.block(blk).term().clone() {
                Terminator::Continue { args } => {
                    carried = args.into_iter().map(|a| resolve(&map, a)).collect();
                }
                Terminator::Jump { target, args } => {
                    let params = f.block(target).params().to_vec();
                    for (p, a) in params.into_iter().zip(args) {
                        let r = resolve(&map, a);
                        map.insert(p, r);
                    }
                }
                _ => unreachable!("scan_region admits only jump/continue"),
            }
        }
    }

    // Wire the final carried values into the exit block's parameters, then
    // bypass the loop entirely.
    let exit_params = f.block(exit).params().to_vec();
    debug_assert_eq!(exit_params.len(), carried.len(), "verified exit arity");
    for (p, v) in exit_params.into_iter().zip(&carried) {
        f.replace_uses(p, *v);
    }
    f.set_block_params(exit, Vec::new());
    // Empty the body blocks so their instructions are not duplicated
    // across blocks (the clones in the header are the program now).
    for &blk in &region.chain {
        f.set_block_insts(blk, Vec::new());
        f.set_term(blk, Terminator::Ret);
    }
    f.set_term(header, Terminator::Jump { target: exit, args: Vec::new() });
}

/// Run unrolling over every function of a module; returns total loops
/// unrolled.
pub fn run_module(m: &mut Module) -> usize {
    m.functions.iter_mut().map(run).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lslp_ir::{parse_function, print_function};

    fn unrolled(src: &str) -> (Function, usize) {
        let mut f = parse_function(src).unwrap();
        lslp_ir::verify_function(&f).unwrap();
        let n = run(&mut f);
        lslp_ir::verify_function(&f).unwrap();
        (f, n)
    }

    #[test]
    fn counted_loop_fully_unrolls() {
        let (f, n) = unrolled(
            "func @cp(%A: ptr, %B: ptr) {
bb0:
  loop 4, bb1, bb2
bb1(%i: i64):
  %p = gep %B, %i, 8
  %x = load i64, %p
  %q = gep %A, %i, 8
  store i64 %x, %q
  continue
bb2:
  ret
}",
        );
        assert_eq!(n, 1);
        let text = print_function(&f);
        assert!(f.cfg().is_none(), "must flatten:\n{text}");
        assert_eq!(f.body_len(), 16, "4 iterations × 4 instructions:\n{text}");
        // The induction variable is rewritten to constants per iteration.
        assert!(text.contains("gep %B, 0") && text.contains("gep %B, 3"), "{text}");
    }

    #[test]
    fn carried_values_chain_across_iterations() {
        let (f, n) = unrolled(
            "func @sum(%A: ptr) {
bb0:
  loop 3, bb1(0), bb2
bb1(%i: i64, %acc: i64):
  %p = gep %A, %i, 8
  %x = load i64, %p
  %next = add i64 %acc, %x
  continue %next
bb2(%total: i64):
  %q = gep %A, 3, 8
  store i64 %total, %q
  ret
}",
        );
        assert_eq!(n, 1);
        let text = print_function(&f);
        assert!(f.cfg().is_none(), "must flatten:\n{text}");
        // Three adds chained through the accumulator, store uses the last.
        assert_eq!(text.matches("add i64").count(), 3, "{text}");
    }

    #[test]
    fn over_budget_loops_are_kept() {
        // trip 64 × 5 insts = 320 > 256.
        let (f, n) = unrolled(
            "func @big(%A: ptr) {
bb0:
  loop 64, bb1(0), bb2
bb1(%i: i64, %acc: i64):
  %p = gep %A, %i, 8
  %x = load i64, %p
  %y = mul i64 %x, 3
  %z = add i64 %y, 1
  %next = add i64 %acc, %z
  continue %next
bb2(%total: i64):
  store i64 %total, %A
  ret
}",
        );
        assert_eq!(n, 0, "budget must hold the line");
        assert!(f.cfg().is_some());
    }

    #[test]
    fn straight_line_functions_are_untouched() {
        let mut f = parse_function(
            "func @k(%A: ptr) {
               %x = load i64, %A
               store i64 %x, %A
             }",
        )
        .unwrap();
        let before = print_function(&f);
        assert_eq!(run(&mut f), 0);
        assert_eq!(print_function(&f), before);
    }
}
