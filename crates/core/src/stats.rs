//! Pass statistics registry (LLVM `-stats` style).
//!
//! Passes report named counters ("how many instructions did CSE merge",
//! "how many trees did the vectorizer commit") through the
//! [`crate::pm::PassContext`] they run under. Counters accumulate per
//! `(pass, counter)` key over one pipeline run and are surfaced through
//! [`crate::PipelineReport::stats`] and `lslpc --stats`.
//!
//! Interior mutability keeps the reporting API usable from `&PassContext`
//! (many passes share the registry within one run); the registry is
//! single-threaded like the rest of the pipeline.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;

/// One reported counter row.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StatRow {
    /// The reporting pass, e.g. `"cse"`.
    pub pass: String,
    /// The counter name, e.g. `"insts-merged"`.
    pub counter: String,
    /// Accumulated value.
    pub value: u64,
}

/// An accumulating registry of named per-pass counters.
#[derive(Clone, Debug, Default)]
pub struct Statistics {
    counters: RefCell<BTreeMap<(String, String), u64>>,
}

impl Statistics {
    /// An empty registry.
    pub fn new() -> Statistics {
        Statistics::default()
    }

    /// Add `n` to the `(pass, counter)` cell (creating it at zero).
    pub fn add(&self, pass: &str, counter: &str, n: u64) {
        if n == 0 {
            return;
        }
        *self.counters.borrow_mut().entry((pass.to_string(), counter.to_string())).or_insert(0) +=
            n;
    }

    /// Current value of a counter (0 when never reported).
    pub fn get(&self, pass: &str, counter: &str) -> u64 {
        self.counters.borrow().get(&(pass.to_string(), counter.to_string())).copied().unwrap_or(0)
    }

    /// Whether no counter was ever reported.
    pub fn is_empty(&self) -> bool {
        self.counters.borrow().is_empty()
    }

    /// All rows, sorted by pass then counter name.
    pub fn rows(&self) -> Vec<StatRow> {
        self.counters
            .borrow()
            .iter()
            .map(|((pass, counter), &value)| StatRow {
                pass: pass.clone(),
                counter: counter.clone(),
                value,
            })
            .collect()
    }

    /// Fold another registry's counters into this one.
    pub fn absorb(&self, other: &Statistics) {
        for row in other.rows() {
            self.add(&row.pass, &row.counter, row.value);
        }
    }
}

impl fmt::Display for Statistics {
    /// LLVM `-stats`-style rendering: `value  pass - counter` lines,
    /// deterministically ordered (sorted by pass, then counter name) so
    /// dumps diff cleanly across runs.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows = self.rows();
        let width = rows.iter().map(|r| r.value.to_string().len()).max().unwrap_or(1);
        for r in rows {
            writeln!(f, "{:>width$}  {} - {}", r.value, r.pass, r.counter)?;
        }
        Ok(())
    }
}

/// A thread-safe [`Statistics`] for concurrent consumers (the `lslpd`
/// compile service, parallel harnesses).
///
/// Same `(pass, counter)` accumulation semantics, but counters live behind
/// a `Mutex` so many worker threads can report into one registry. Use
/// [`SyncStatistics::snapshot`] to obtain a point-in-time [`Statistics`]
/// for rendering (rows stay sorted by pass then counter name, so dumps are
/// deterministic modulo counter values).
#[derive(Debug, Default)]
pub struct SyncStatistics {
    /// Nested pass → counter → value so the hot [`SyncStatistics::add`]
    /// path can look up existing cells by `&str` without allocating the
    /// owned `(String, String)` key a flat map would demand (the compile
    /// service bumps per-request counters on every served request).
    counters: Mutex<BTreeMap<String, BTreeMap<String, u64>>>,
}

impl SyncStatistics {
    /// An empty registry.
    pub fn new() -> SyncStatistics {
        SyncStatistics::default()
    }

    /// Add `n` to the `(pass, counter)` cell (creating it at zero).
    pub fn add(&self, pass: &str, counter: &str, n: u64) {
        if n == 0 {
            return;
        }
        let mut counters = self.counters.lock().expect("statistics lock");
        // Borrowed-key lookup first: the cell exists on every call but the
        // first, and `entry()` would force two String allocations per call.
        if let Some(cell) = counters.get_mut(pass).and_then(|c| c.get_mut(counter)) {
            *cell += n;
            return;
        }
        *counters.entry(pass.to_string()).or_default().entry(counter.to_string()).or_insert(0) += n;
    }

    /// Current value of a counter (0 when never reported).
    pub fn get(&self, pass: &str, counter: &str) -> u64 {
        self.counters
            .lock()
            .expect("statistics lock")
            .get(pass)
            .and_then(|c| c.get(counter))
            .copied()
            .unwrap_or(0)
    }

    /// Fold a single-threaded registry's counters into this one (e.g. a
    /// per-request [`Statistics`] produced by one pipeline run).
    pub fn absorb(&self, other: &Statistics) {
        let mut counters = self.counters.lock().expect("statistics lock");
        for row in other.rows() {
            *counters.entry(row.pass).or_default().entry(row.counter).or_insert(0) += row.value;
        }
    }

    /// A point-in-time copy as a plain [`Statistics`].
    pub fn snapshot(&self) -> Statistics {
        let s = Statistics::new();
        for (pass, cells) in self.counters.lock().expect("statistics lock").iter() {
            for (counter, &value) in cells {
                s.add(pass, counter, value);
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = Statistics::new();
        assert!(s.is_empty());
        s.add("cse", "insts-merged", 2);
        s.add("cse", "insts-merged", 3);
        s.add("dce", "insts-removed", 1);
        assert_eq!(s.get("cse", "insts-merged"), 5);
        assert_eq!(s.get("dce", "insts-removed"), 1);
        assert_eq!(s.get("dce", "never"), 0);
        let rows = s.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].pass, "cse", "sorted by pass");
    }

    #[test]
    fn zero_adds_are_not_recorded() {
        let s = Statistics::new();
        s.add("fold", "constants-folded", 0);
        assert!(s.is_empty(), "zero counters stay out of -stats output");
    }

    #[test]
    fn display_is_llvm_style() {
        let s = Statistics::new();
        s.add("vectorize", "trees-vectorized", 4);
        s.add("simplify", "rewrites", 12);
        let text = s.to_string();
        assert!(text.contains("12  simplify - rewrites"), "{text}");
        assert!(text.contains(" 4  vectorize - trees-vectorized"), "{text}");
    }

    #[test]
    fn dump_order_is_deterministic() {
        // Two registries fed in opposite insertion orders must render
        // byte-identically: service metrics and `--stats` diffs rely on it.
        let a = Statistics::new();
        let b = Statistics::new();
        let rows = [("vectorize", "trees"), ("cse", "insts-merged"), ("cse", "hits"), ("dce", "x")];
        for (pass, counter) in rows {
            a.add(pass, counter, 1);
        }
        for (pass, counter) in rows.iter().rev() {
            b.add(pass, counter, 1);
        }
        assert_eq!(a.to_string(), b.to_string());
        let names: Vec<String> =
            a.rows().into_iter().map(|r| format!("{}/{}", r.pass, r.counter)).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "rows are sorted by pass then counter");
    }

    #[test]
    fn sync_statistics_accumulate_across_threads() {
        let s = SyncStatistics::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        s.add("server", "requests", 1);
                    }
                });
            }
        });
        assert_eq!(s.get("server", "requests"), 400);
        assert_eq!(s.snapshot().get("server", "requests"), 400);
    }

    #[test]
    fn sync_statistics_absorb_and_snapshot() {
        let local = Statistics::new();
        local.add("cse", "insts-merged", 3);
        let global = SyncStatistics::new();
        global.absorb(&local);
        global.absorb(&local);
        global.add("server", "cache-hits", 1);
        let snap = global.snapshot();
        assert_eq!(snap.get("cse", "insts-merged"), 6);
        assert_eq!(snap.get("server", "cache-hits"), 1);
        assert_eq!(snap.rows().len(), 2);
    }

    #[test]
    fn absorb_merges() {
        let a = Statistics::new();
        a.add("cse", "insts-merged", 1);
        let b = Statistics::new();
        b.add("cse", "insts-merged", 2);
        b.add("fold", "constants-folded", 7);
        a.absorb(&b);
        assert_eq!(a.get("cse", "insts-merged"), 3);
        assert_eq!(a.get("fold", "constants-folded"), 7);
    }
}
