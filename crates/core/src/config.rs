//! Vectorizer configuration and the paper's named presets.

use std::fmt;
use std::str::FromStr;

use crate::guard::{GuardMode, GuardPolicy, RollbackStrategy};

/// A strategy knob was given an unknown spelling (the [`FromStr`] error of
/// [`ReorderStrategy`] and [`PackingStrategy`]).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseStrategyError {
    /// Which knob rejected the spelling (`"reorder"` / `"packing"`).
    pub knob: &'static str,
    /// The rejected spelling.
    pub given: String,
    /// The legal spellings, comma-separated.
    pub expected: &'static str,
}

impl fmt::Display for ParseStrategyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown {} strategy `{}` (try {})", self.knob, self.given, self.expected)
    }
}

impl std::error::Error for ParseStrategyError {}

/// Operand-reordering strategy for commutative instruction groups.
///
/// Round-trips through its kebab-case spelling like
/// `lslp_target::TargetSpec::parse`/`spec_string`:
/// `ReorderStrategy::from_str(s).unwrap().name() == s`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReorderStrategy {
    /// No reordering at all — the paper's `SLP-NR` configuration.
    NoReorder,
    /// Vanilla SLP reordering: per-lane swaps driven only by the immediate
    /// operand opcodes (and load consecutiveness), as in LLVM's original
    /// `reorderInputsAccordingToOpcode`.
    Opcode,
    /// LSLP reordering: the single-pass, mode-tracking algorithm of
    /// Listing 5 with look-ahead tie-breaking (Listings 6–7).
    LookAhead,
}

impl ReorderStrategy {
    /// The canonical kebab-case spelling ([`FromStr`] inverts it).
    pub fn name(self) -> &'static str {
        match self {
            ReorderStrategy::NoReorder => "no-reorder",
            ReorderStrategy::Opcode => "opcode",
            ReorderStrategy::LookAhead => "look-ahead",
        }
    }
}

impl fmt::Display for ReorderStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for ReorderStrategy {
    type Err = ParseStrategyError;

    fn from_str(s: &str) -> Result<ReorderStrategy, ParseStrategyError> {
        match s {
            "no-reorder" => Ok(ReorderStrategy::NoReorder),
            "opcode" => Ok(ReorderStrategy::Opcode),
            "look-ahead" => Ok(ReorderStrategy::LookAhead),
            _ => Err(ParseStrategyError {
                knob: "reorder",
                given: s.to_string(),
                expected: "no-reorder, opcode, look-ahead",
            }),
        }
    }
}

/// Pre-rename spelling of [`ReorderStrategy`], kept so existing call sites
/// keep compiling.
#[deprecated(note = "renamed to `ReorderStrategy` for knob-naming coherence")]
pub type ReorderKind = ReorderStrategy;

/// Statement-packing strategy: how costed candidate packs are selected for
/// commitment (see `lslp::packing` for the machinery).
///
/// Round-trips through its spelling like [`ReorderStrategy`]:
/// `PackingStrategy::from_str(s).unwrap().name() == s`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum PackingStrategy {
    /// The paper's greedy bottom-up commit: at each chain position, commit
    /// the cheapest-per-lane profitable VF and restart.
    #[default]
    Greedy,
    /// goSLP-style global selection: enumerate candidate packs across all
    /// seed groups and legal VFs, pick a pack *set* by dynamic programming
    /// over each seed-group chain (with a bounded branch-and-bound
    /// refinement over inter-pack permutation penalties), and keep the
    /// result only when it beats a trial greedy run on the same function —
    /// never costlier than [`PackingStrategy::Greedy`].
    Global,
}

impl PackingStrategy {
    /// The canonical spelling ([`FromStr`] inverts it).
    pub fn name(self) -> &'static str {
        match self {
            PackingStrategy::Greedy => "greedy",
            PackingStrategy::Global => "global",
        }
    }
}

impl fmt::Display for PackingStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for PackingStrategy {
    type Err = ParseStrategyError;

    fn from_str(s: &str) -> Result<PackingStrategy, ParseStrategyError> {
        match s {
            "greedy" => Ok(PackingStrategy::Greedy),
            "global" => Ok(PackingStrategy::Global),
            _ => Err(ParseStrategyError {
                knob: "packing",
                given: s.to_string(),
                expected: "greedy, global",
            }),
        }
    }
}

/// How look-ahead sub-scores are aggregated (paper footnote 4).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScoreAgg {
    /// Sum of all operand-pair scores (the paper's choice).
    Sum,
    /// Maximum over operand-pair scores (the footnoted alternative).
    Max,
}

/// Weights for the look-ahead leaf matches (`lslp::score`).
///
/// The paper scores every trivial match as 1 (Figure 7); mainline LLVM's
/// descendant of this heuristic weights match kinds differently so that a
/// consecutive-load signal outranks a mere opcode match. Defaults are the
/// paper's flat weights.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ScoreWeights {
    /// Two loads at consecutive addresses.
    pub consecutive_load: i64,
    /// Two instructions with the same opcode (non-load).
    pub same_opcode: i64,
    /// Two constants.
    pub constants: i64,
    /// The exact same value in both lanes.
    pub splat: i64,
}

impl ScoreWeights {
    /// The paper's flat scoring: every match kind counts 1.
    pub fn paper() -> ScoreWeights {
        ScoreWeights { consecutive_load: 1, same_opcode: 1, constants: 1, splat: 1 }
    }

    /// Weights approximating LLVM's `TargetTransformInfo`-era look-ahead
    /// heuristics (consecutive loads dominate, splats rank above plain
    /// opcode matches).
    pub fn llvm_like() -> ScoreWeights {
        ScoreWeights { consecutive_load: 4, same_opcode: 2, constants: 2, splat: 3 }
    }
}

impl Default for ScoreWeights {
    fn default() -> ScoreWeights {
        ScoreWeights::paper()
    }
}

/// Test-only fault injection: deliberately miscompile in a controlled way
/// so the self-checking test suite (the `lslp-fuzz` oracles) can prove it
/// would catch a real bug of the same class. Always
/// [`Sabotage::None`] outside the negative tests; hidden from docs
/// because it is not part of the supported configuration surface.
#[doc(hidden)]
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Sabotage {
    /// No fault injected (the only supported production value).
    #[default]
    None,
    /// Permute the lanes of a committed vector store through a planted
    /// lane-swapping shuffle mask: silent wrong-code, caught by
    /// differential and metamorphic execution.
    SwapShuffleMask,
    /// Reverse the VF-exploration candidate order so the *worst* priced
    /// profitable factor commits: caught by the cross-VF consistency
    /// oracle (the code stays semantically correct).
    CommitWorstVf,
    /// Skip the final dead-scalar sweep: caught by the
    /// pipeline-idempotence oracle (a clean recompile removes code the
    /// sabotaged compile left behind).
    SkipFinalDce,
    /// Make [`PackingStrategy::Global`] commit the *empty* pack set and
    /// skip its greedy-trial floor — the maximal-cost legal pack set, since
    /// every profitable pack has negative cost. The code stays correct but
    /// the artifact is costlier than greedy's on any vectorizable input:
    /// caught by the packing-quality oracle.
    CommitWorstPackSet,
    /// Swap the two arms of every if-converted diamond (the `select` picks
    /// the else-value when the condition holds): silent wrong-code on any
    /// input where the arms differ, caught by the differential
    /// scalar-vs-compiled execution oracle.
    SwapIfArms,
}

/// Full configuration of the (L)SLP pass.
///
/// Construct via the named presets ([`VectorizerConfig::slp`],
/// [`VectorizerConfig::lslp`], ...) and adjust fields as needed:
///
/// ```
/// use lslp::VectorizerConfig;
/// let cfg = VectorizerConfig { la_depth: 2, ..VectorizerConfig::lslp() };
/// assert!(cfg.enabled);
/// ```
#[derive(Clone, Debug)]
pub struct VectorizerConfig {
    /// Whether the vectorizer runs at all (`false` = the paper's `O3`
    /// baseline, which has all vectorizers disabled).
    pub enabled: bool,
    /// Operand reordering strategy.
    pub reorder: ReorderStrategy,
    /// Statement-packing strategy: greedy per-lane-cheapest commit (the
    /// paper's algorithm, the default) or goSLP-style global pack-set
    /// selection (see `lslp::packing`).
    pub packing: PackingStrategy,
    /// Maximum look-ahead depth for [`ReorderStrategy::LookAhead`]
    /// (the paper uses 8 by default and sweeps 0–4 in §5.3).
    pub la_depth: u32,
    /// Maximum number of chained commutative instructions collected into a
    /// multi-node *per lane*; `1` disables multi-node formation (vanilla
    /// behaviour), the paper's LSLP default is unbounded.
    pub max_multinode_insts: usize,
    /// Upper bound on the vector factor (lanes); the effective VF is also
    /// limited by the target register width.
    pub max_vf: u32,
    /// Allow floating-point reassociation (the paper compiles with
    /// `-ffast-math`); required for FP multi-node formation.
    pub fast_math: bool,
    /// Vectorize only when the tree cost is strictly below this threshold
    /// (paper: "usually 0").
    pub cost_threshold: i64,
    /// Look-ahead score aggregation.
    pub score_agg: ScoreAgg,
    /// Look-ahead leaf-match weights (paper: all 1).
    pub score_weights: ScoreWeights,
    /// Enable SPLAT mode detection in the reordering (Listing 5, line 23).
    pub splat_mode: bool,
    /// Recursion depth cap for graph building.
    pub max_depth: u32,
    /// Also vectorize horizontal reduction chains (the paper's second seed
    /// class, §2.2; not exercised by its evaluation, so off in the
    /// standard presets — see `lslp::reduce`).
    pub enable_reductions: bool,
    /// Throttle SLP graphs (`lslp::throttle`, after Porpodas & Jones,
    /// PACT'15 — the paper's related work \[22\]): cut cost-harmful subtrees
    /// before the profitability decision. Off in the paper presets.
    pub throttle: bool,
    /// Transactional pass guard semantics (`lslp::guard`): every pass and
    /// per-seed vectorization attempt is snapshotted, panic-isolated, and
    /// verified before committing. Default [`GuardMode::Rollback`].
    pub guard: GuardMode,
    /// Rollback mechanism of the guard: delta-undo transaction log
    /// (default), full-clone snapshot (debug fallback), or differential
    /// (both, asserting they agree on every rollback).
    pub rollback: RollbackStrategy,
    /// Paranoid mode: additionally check every committed transform by
    /// differential execution against the pre-transform function with the
    /// `lslp_interp` oracle on synthesized inputs. Slow; off by default.
    pub paranoid: bool,
    /// Compile fuel: maximum number of SLP graph nodes per seed attempt.
    /// When the builder hits the cap the remaining bundles become gather
    /// leaves and a `FuelExhausted` incident is recorded.
    pub max_graph_nodes: usize,
    /// Compile fuel: wall-clock budget for the whole pass over one
    /// function, in milliseconds. `None` = unlimited. When the budget runs
    /// out the pass stops attempting further seeds (work already committed
    /// is kept) and records a `FuelExhausted` incident.
    pub time_budget_ms: Option<u64>,
    /// Test-only fault injection (see [`Sabotage`]); [`Sabotage::None`]
    /// everywhere outside the oracle negative tests.
    #[doc(hidden)]
    pub sabotage: Sabotage,
}

impl VectorizerConfig {
    fn base() -> VectorizerConfig {
        VectorizerConfig {
            enabled: true,
            reorder: ReorderStrategy::Opcode,
            packing: PackingStrategy::Greedy,
            la_depth: 0,
            max_multinode_insts: 1,
            max_vf: 16,
            fast_math: true,
            cost_threshold: 0,
            score_agg: ScoreAgg::Sum,
            score_weights: ScoreWeights::paper(),
            splat_mode: true,
            max_depth: 24,
            enable_reductions: false,
            throttle: false,
            guard: GuardMode::Rollback,
            rollback: RollbackStrategy::Delta,
            paranoid: false,
            max_graph_nodes: 4096,
            time_budget_ms: None,
            sabotage: Sabotage::None,
        }
    }

    /// `O3`: all vectorizers disabled.
    pub fn o3() -> VectorizerConfig {
        VectorizerConfig { enabled: false, ..Self::base() }
    }

    /// `SLP-NR`: vanilla SLP with operand reordering disabled.
    pub fn slp_nr() -> VectorizerConfig {
        VectorizerConfig { reorder: ReorderStrategy::NoReorder, ..Self::base() }
    }

    /// `SLP`: vanilla bottom-up SLP with opcode-based reordering.
    pub fn slp() -> VectorizerConfig {
        Self::base()
    }

    /// `LSLP`: multi-node formation plus look-ahead reordering (depth 8).
    pub fn lslp() -> VectorizerConfig {
        VectorizerConfig {
            reorder: ReorderStrategy::LookAhead,
            la_depth: 8,
            max_multinode_insts: usize::MAX,
            ..Self::base()
        }
    }

    /// LSLP with a specific look-ahead depth (the `LSLP-LA{n}` bars of
    /// Figure 13; multi-node size unrestricted).
    pub fn lslp_la(depth: u32) -> VectorizerConfig {
        VectorizerConfig { la_depth: depth, ..Self::lslp() }
    }

    /// LSLP with a restricted multi-node size (the `LSLP-Multi{n}` bars of
    /// Figure 13; look-ahead depth kept at 8).
    pub fn lslp_multi(max_insts: usize) -> VectorizerConfig {
        VectorizerConfig { max_multinode_insts: max_insts, ..Self::lslp() }
    }

    /// The guard policy this configuration implies (failure semantics,
    /// rollback mechanism, paranoid oracle), bundled for the guard layer.
    pub fn guard_policy(&self) -> GuardPolicy {
        GuardPolicy { mode: self.guard, strategy: self.rollback, paranoid: self.paranoid }
    }

    /// Look up a preset by the paper's configuration names: `O3`, `SLP-NR`,
    /// `SLP`, `LSLP`, `LSLP-LA{n}`, `LSLP-Multi{n}`.
    pub fn preset(name: &str) -> Option<VectorizerConfig> {
        if let Some(d) = name.strip_prefix("LSLP-LA") {
            return d.parse().ok().map(Self::lslp_la);
        }
        if let Some(d) = name.strip_prefix("LSLP-Multi") {
            return d.parse().ok().map(Self::lslp_multi);
        }
        if name == "LSLP-Throttle" {
            return Some(VectorizerConfig { throttle: true, ..Self::lslp() });
        }
        match name {
            "O3" => Some(Self::o3()),
            "SLP-NR" => Some(Self::slp_nr()),
            "SLP" => Some(Self::slp()),
            "LSLP" => Some(Self::lslp()),
            _ => None,
        }
    }
}

impl Default for VectorizerConfig {
    /// The default configuration is the paper's headline algorithm, LSLP.
    fn default() -> VectorizerConfig {
        VectorizerConfig::lslp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_semantics() {
        assert!(!VectorizerConfig::o3().enabled);
        assert_eq!(VectorizerConfig::slp_nr().reorder, ReorderStrategy::NoReorder);
        let slp = VectorizerConfig::slp();
        assert_eq!(slp.reorder, ReorderStrategy::Opcode);
        assert_eq!(slp.max_multinode_insts, 1);
        let lslp = VectorizerConfig::lslp();
        assert_eq!(lslp.reorder, ReorderStrategy::LookAhead);
        assert_eq!(lslp.la_depth, 8);
        assert_eq!(lslp.max_multinode_insts, usize::MAX);
        // Every preset keeps the paper's greedy packing as the default.
        assert_eq!(lslp.packing, PackingStrategy::Greedy);
    }

    #[test]
    fn strategy_knobs_round_trip_their_spellings() {
        for r in [ReorderStrategy::NoReorder, ReorderStrategy::Opcode, ReorderStrategy::LookAhead] {
            assert_eq!(r.name().parse::<ReorderStrategy>().unwrap(), r);
            assert_eq!(r.to_string(), r.name());
        }
        for p in [PackingStrategy::Greedy, PackingStrategy::Global] {
            assert_eq!(p.name().parse::<PackingStrategy>().unwrap(), p);
            assert_eq!(p.to_string(), p.name());
        }
        let err = "lookahead".parse::<ReorderStrategy>().unwrap_err();
        assert_eq!(err.knob, "reorder");
        let err = "Global".parse::<PackingStrategy>().unwrap_err();
        assert_eq!(err.knob, "packing");
        assert!(err.to_string().contains("greedy, global"), "{err}");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_reorder_kind_alias_still_compiles() {
        let k: ReorderKind = ReorderStrategy::Opcode;
        assert_eq!(k, ReorderStrategy::Opcode);
    }

    #[test]
    fn preset_lookup_by_name() {
        assert!(VectorizerConfig::preset("O3").is_some_and(|c| !c.enabled));
        assert!(VectorizerConfig::preset("SLP").is_some());
        assert!(VectorizerConfig::preset("SLP-NR").is_some());
        assert_eq!(VectorizerConfig::preset("LSLP-LA2").unwrap().la_depth, 2);
        assert_eq!(VectorizerConfig::preset("LSLP-Multi3").unwrap().max_multinode_insts, 3);
        assert!(VectorizerConfig::preset("GCC").is_none());
        assert!(VectorizerConfig::preset("LSLP-LAx").is_none());
    }

    #[test]
    fn default_is_lslp() {
        let d = VectorizerConfig::default();
        assert_eq!(d.reorder, ReorderStrategy::LookAhead);
        assert_eq!(d.packing, PackingStrategy::Greedy);
    }
}
