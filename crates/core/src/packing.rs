//! Statement-packing strategies behind the [`Strategy`] seam.
//!
//! Pack selection is three phases, shared by every strategy:
//!
//! 1. **Enumeration** ([`cost_bundle`]): cost a candidate store bundle at
//!    one VF under the guard, recording an [`Attempt`] row and the gather
//!    reasons exactly once per bundle.
//! 2. **Selection**: order or choose among profitable candidates —
//!    [`GreedyStrategy`] sorts per position by per-lane cost (the paper's
//!    algorithm), [`GlobalStrategy`] picks a whole pack *set* per seed
//!    chain by dynamic programming with a bounded branch-and-bound
//!    refinement over inter-pack permutation penalties
//!    (`TargetSpec::cross_pack_shuffle_cost`).
//! 3. **Commit** ([`commit_pack`]): regenerate the chosen graph and emit
//!    vector code inside a guard transaction, then restart seeding.
//!
//! [`GlobalStrategy`] additionally holds itself to a **greedy floor**: it
//! trials both its plan and a plain greedy run on the real function (inside
//! rollback transactions), compares the artifacts with [`function_cost`],
//! and keeps the global plan only when it is *strictly* cheaper. Ties and
//! losses re-run greedy deterministically, so `--packing global` is never
//! costlier than `--packing greedy` — the invariant the fuzz
//! packing-quality oracle enforces. Compile fuel is shared with the rest
//! of the pass: when the time budget runs out mid-search, planning stops
//! and the function degrades to (partially vectorized or scalar) greedy
//! output rather than stalling.

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use lslp_analysis::{AddrInfo, AnalysisManager, PositionMap};
use lslp_ir::{Function, Opcode, Type, UseMap, ValueId};
use lslp_target::CostModel;

use crate::codegen::{self, CodegenStats};
use crate::config::{PackingStrategy, Sabotage, VectorizerConfig};
use crate::cost::graph_cost;
use crate::dce;
use crate::graph::{GraphBuilder, NodeKind};
use crate::guard::{self, GuardError, Incident, IncidentKind, RollbackStrategy};
use crate::pass::{Attempt, VectorizeReport};
use crate::seeds::{collect_store_chains, StoreChain};

/// Everything a packing strategy needs to run: the function under
/// transformation, configuration, cost tables, the analysis cache, the
/// report being built, and the shared compile-fuel state. Constructed by
/// the pass driver; the fields are crate-internal.
pub struct PackCx<'a> {
    pub(crate) f: &'a mut Function,
    pub(crate) cfg: &'a VectorizerConfig,
    pub(crate) tm: &'a CostModel,
    pub(crate) am: &'a mut AnalysisManager,
    pub(crate) report: &'a mut VectorizeReport,
    pub(crate) deadline: Option<Instant>,
    pub(crate) fuel_spent: &'a mut bool,
}

/// A pack-selection strategy: how costed candidates become committed
/// vector code. Implemented by [`GreedyStrategy`] and [`GlobalStrategy`];
/// the pass driver dispatches on [`VectorizerConfig::packing`] via
/// [`strategy_for`].
pub trait Strategy {
    /// The knob value this strategy implements.
    fn kind(&self) -> PackingStrategy;

    /// Run pack selection to fixpoint over `cx.f`.
    ///
    /// # Errors
    ///
    /// Propagates the first guard incident under the strict guard mode.
    fn run(&self, cx: &mut PackCx<'_>) -> Result<(), GuardError>;
}

/// Resolve the knob value to its implementation.
pub fn strategy_for(kind: PackingStrategy) -> &'static dyn Strategy {
    match kind {
        PackingStrategy::Greedy => &GreedyStrategy,
        PackingStrategy::Global => &GlobalStrategy,
    }
}

// ---------------------------------------------------------------------------
// Shared phase helpers
// ---------------------------------------------------------------------------

/// Render a seed bundle as `BASE[+lo..+hi)` for reports and incidents.
pub(crate) fn seed_desc(f: &Function, addr: &AddrInfo, bundle: &[ValueId]) -> String {
    let Some(loc) = addr.loc(bundle[0]) else {
        return format!("{} stores", bundle.len());
    };
    let base = f
        .value_name(loc.addr.base)
        .map(str::to_owned)
        .unwrap_or_else(|| format!("%{}", loc.addr.base.raw()));
    let lo = loc.addr.offset.konst;
    let hi = lo + (bundle.len() as i64) * loc.bytes as i64;
    format!("{base}[+{lo}..+{hi})")
}

/// Largest power of two ≤ `n`.
pub(crate) fn pow2_floor(n: usize) -> usize {
    if n == 0 {
        0
    } else {
        1 << (usize::BITS - 1 - n.leading_zeros())
    }
}

/// Check the wall-clock compile budget; flips `fuel_spent` and records one
/// [`IncidentKind::FuelExhausted`] incident the first time it trips.
pub(crate) fn fuel_check(cx: &mut PackCx<'_>) -> Result<(), GuardError> {
    if *cx.fuel_spent || cx.deadline.is_none_or(|d| Instant::now() <= d) {
        return Ok(());
    }
    *cx.fuel_spent = true;
    guard::record(
        cx.cfg.guard,
        &mut cx.report.incidents,
        Incident {
            pass: "vectorize".into(),
            seed: None,
            kind: IncidentKind::FuelExhausted,
            detail: format!(
                "time budget of {}ms exhausted; remaining seeds skipped",
                cx.cfg.time_budget_ms.unwrap_or(0)
            ),
        },
    )
}

/// Phase 1 (enumeration): cost `bundle` at `vf` inside a guard
/// transaction, recording the [`Attempt`] row, gather-reason histogram,
/// and any truncation incident. Returns the attempt's cost and its row
/// index, or `None` when the evaluation itself rolled back.
fn cost_bundle(
    cx: &mut PackCx<'_>,
    bundle: &[ValueId],
    vf: usize,
    addr: &AddrInfo,
    positions: &PositionMap,
    use_map: &UseMap,
    strategy: PackingStrategy,
) -> Result<Option<(i64, usize)>, GuardError> {
    // Rendered lazily: on evaluation inside the attempt (for the report),
    // on rollback by the guard (for the incident) — never both, never for
    // free.
    let desc = |f: &Function| seed_desc(f, addr, bundle);
    let cfg = cx.cfg;
    let tm = cx.tm;
    let eval = guard::run_guarded(
        cx.f,
        cfg.guard_policy(),
        "vectorize",
        Some(&desc as guard::SeedDesc),
        &mut cx.report.incidents,
        |f| {
            let mut graph = GraphBuilder::new(f, cfg, tm, addr, positions, use_map).build(bundle);
            if cfg.throttle {
                crate::throttle::throttle(f, &mut graph, tm, use_map);
            }
            let cost = graph_cost(f, &graph, tm, use_map);
            let gathers = graph.nodes().iter().filter(|n| !n.is_vectorizable()).count();
            let reasons: Vec<String> = graph
                .nodes()
                .iter()
                .filter_map(|n| match &n.kind {
                    NodeKind::Gather { reason } => Some(reason.to_string()),
                    _ => None,
                })
                .collect();
            let attempt = Attempt {
                seed: seed_desc(f, addr, bundle),
                vf,
                cost: cost.total,
                nodes: graph.nodes().len(),
                gathers,
                vectorized: false,
                strategy,
            };
            let truncated = graph.budget_exhausted();
            // Costing only: nothing is mutated here.
            ((attempt, truncated, reasons), false)
        },
    )?;
    let Some((attempt, truncated, reasons)) = eval else {
        return Ok(None);
    };
    for r in reasons {
        *cx.report.gather_reasons.entry(r).or_insert(0) += 1;
    }
    if truncated {
        guard::record(
            cx.cfg.guard,
            &mut cx.report.incidents,
            Incident {
                pass: "vectorize".into(),
                seed: Some(attempt.seed.clone()),
                kind: IncidentKind::FuelExhausted,
                detail: format!("graph truncated at {} nodes", cx.cfg.max_graph_nodes),
            },
        )?;
    }
    let cost = attempt.cost;
    let idx = cx.report.attempts.len();
    cx.report.attempts.push(attempt);
    Ok(Some((cost, idx)))
}

/// Phase 3 (commit): rebuild the winning graph on the unchanged function
/// state (builds are deterministic) and generate vector code inside a
/// guard transaction. `Some(stats)` on commit, `None` on rollback.
fn commit_pack(
    cx: &mut PackCx<'_>,
    bundle: &[ValueId],
    addr: &AddrInfo,
    positions: &PositionMap,
    use_map: &UseMap,
) -> Result<Option<CodegenStats>, GuardError> {
    let desc = |f: &Function| seed_desc(f, addr, bundle);
    let cfg = cx.cfg;
    let tm = cx.tm;
    let am = &mut *cx.am;
    guard::run_guarded(
        cx.f,
        cfg.guard_policy(),
        "vectorize",
        Some(&desc as guard::SeedDesc),
        &mut cx.report.incidents,
        |f| {
            let mut graph = GraphBuilder::new(f, cfg, tm, addr, positions, use_map).build(bundle);
            if cfg.throttle {
                crate::throttle::throttle(f, &mut graph, tm, use_map);
            }
            let stats = codegen::generate_with(f, &graph, tm, am);
            if cfg.sabotage == Sabotage::SwapShuffleMask {
                crate::pass::sabotage_swap_mask(f);
            }
            (stats, true)
        },
    )
}

/// Record a committed pack in the report.
fn mark_committed(
    report: &mut VectorizeReport,
    attempt_idx: usize,
    cost: i64,
    stats: &CodegenStats,
) {
    report.attempts[attempt_idx].vectorized = true;
    report.absorb(stats);
    report.applied_cost += cost;
    report.trees_vectorized += 1;
}

/// Record the unsupported-seed incident for a chain whose stored value has
/// no element type; `tried` keeps it once per bundle.
fn record_unsupported(
    cx: &mut PackCx<'_>,
    addr: &AddrInfo,
    chain: &StoreChain,
    tried: &mut HashSet<Vec<ValueId>>,
) -> Result<(), GuardError> {
    let bundle = chain.stores.clone();
    if tried.insert(bundle.clone()) {
        guard::record(
            cx.cfg.guard,
            &mut cx.report.incidents,
            Incident {
                pass: "vectorize".into(),
                seed: Some(seed_desc(cx.f, addr, &bundle)),
                kind: IncidentKind::UnsupportedSeed,
                detail: "stored value has no element type".into(),
            },
        )?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Whole-function static cost
// ---------------------------------------------------------------------------

/// Deterministic static cost of the whole function body under `tm` — the
/// common currency of every packing-quality comparison (the global
/// strategy's greedy floor, the fuzz packing-quality oracle, and the
/// `ext_packing` experiment). Mirrors the per-node accounting of
/// [`crate::cost`] over *emitted* instructions instead of a candidate
/// graph: each instruction is charged its scalar or vector execution cost,
/// with inserts/extracts/shuffles at the target's permutation prices.
/// Lower is better.
pub fn function_cost(f: &Function, tm: &CostModel) -> i64 {
    let mut total = 0i64;
    for (_pos, _v, inst) in f.iter_body() {
        total += match inst.op {
            Opcode::InsertElement => tm.insert_cost,
            Opcode::ExtractElement => tm.extract_cost,
            Opcode::ShuffleVector => tm.shuffle_cost,
            op => {
                // A store is typed void; it moves the width of its operand.
                let ty = if op == Opcode::Store { f.ty(inst.args[0]) } else { inst.ty };
                match ty {
                    Type::Vector(elem, lanes) => tm.vector_cost(op, elem, lanes),
                    _ => tm.scalar_cost(op),
                }
            }
        };
    }
    total
}

// ---------------------------------------------------------------------------
// Greedy: the paper's per-lane-cheapest commit
// ---------------------------------------------------------------------------

/// The paper's greedy bottom-up packer: per chain position, cost every
/// legal VF, commit the cheapest per-lane profitable candidate, restart.
/// This is the default and the byte-identical re-expression of the
/// original pass loop.
pub struct GreedyStrategy;

impl Strategy for GreedyStrategy {
    fn kind(&self) -> PackingStrategy {
        PackingStrategy::Greedy
    }

    fn run(&self, cx: &mut PackCx<'_>) -> Result<(), GuardError> {
        run_greedy(cx)
    }
}

fn run_greedy(cx: &mut PackCx<'_>) -> Result<(), GuardError> {
    let mut tried: HashSet<Vec<ValueId>> = HashSet::new();
    'restart: loop {
        let addr = cx.am.addr_info(cx.f);
        let chains = collect_store_chains(cx.f, &addr);
        let positions = cx.am.positions(cx.f);
        let use_map = cx.am.use_map(cx.f);
        for chain in &chains {
            let Some(elem) = cx.f.ty(cx.f.args_of(chain.stores[0])[0]).elem() else {
                // A store whose stored value has no element type (void):
                // nothing we could widen. Skip the chain and record it.
                record_unsupported(cx, &addr, chain, &mut tried)?;
                continue;
            };
            let max_vf = (cx.tm.max_vf(elem) as usize).min(cx.cfg.max_vf as usize);
            let mut i = 0;
            while i < chain.len() {
                fuel_check(cx)?;
                if *cx.fuel_spent {
                    break 'restart;
                }
                let remaining = chain.len() - i;
                // VF exploration: instead of committing to the widest
                // legal factor, cost a candidate graph at *every* legal
                // power-of-two VF (widest first, so the report reads
                // top-down) and commit the cheapest per-lane profitable
                // one — ties go to the wider factor, which keeps the
                // default target's widest-first decisions intact.
                let mut candidates: Vec<(usize, Vec<ValueId>, i64, usize)> = Vec::new();
                let mut vf = pow2_floor(remaining.min(max_vf));
                while vf >= 2 {
                    // The deadline must also bound the exploration: a wide
                    // chain costed at every factor would otherwise overrun
                    // the budget inside this loop.
                    fuel_check(cx)?;
                    if *cx.fuel_spent {
                        break 'restart;
                    }
                    let bundle = chain.stores[i..i + vf].to_vec();
                    if tried.insert(bundle.clone()) {
                        if let Some((cost, idx)) = cost_bundle(
                            cx,
                            &bundle,
                            vf,
                            &addr,
                            &positions,
                            &use_map,
                            PackingStrategy::Greedy,
                        )? {
                            if cost < cx.cfg.cost_threshold {
                                candidates.push((vf, bundle, cost, idx));
                            }
                        }
                        // A rolled-back evaluation: the seed stays in
                        // `tried`, so the pass moves on to narrower VFs.
                    }
                    vf /= 2;
                }
                // Cheapest per-lane cost first (cross-multiplied to stay
                // in integers); ties prefer the wider factor.
                candidates.sort_by(|a, b| {
                    (a.2 * b.0 as i64).cmp(&(b.2 * a.0 as i64)).then(b.0.cmp(&a.0))
                });
                if cx.cfg.sabotage == Sabotage::CommitWorstVf {
                    // Fault injection: prefer the most expensive per-lane
                    // candidate, which the cross-VF oracle must flag.
                    candidates.reverse();
                }
                for (_, bundle, cost, attempt_idx) in &candidates {
                    if let Some(stats) = commit_pack(cx, bundle, &addr, &positions, &use_map)? {
                        mark_committed(cx.report, *attempt_idx, *cost, &stats);
                        continue 'restart;
                    }
                    // Rolled back: fall through to the next-best VF.
                }
                i += 1;
            }
        }
        break;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Global: DP + bounded branch-and-bound over candidate pack sets
// ---------------------------------------------------------------------------

/// goSLP-style global packer: enumerate candidate packs across every seed
/// chain position and legal VF, select a pack set per chain by dynamic
/// programming (refined by bounded branch-and-bound over inter-pack
/// permutation penalties), commit the plan, and keep the result only when
/// it beats a trial greedy run on the same function ([`function_cost`]).
pub struct GlobalStrategy;

impl Strategy for GlobalStrategy {
    fn kind(&self) -> PackingStrategy {
        PackingStrategy::Global
    }

    fn run(&self, cx: &mut PackCx<'_>) -> Result<(), GuardError> {
        if cx.cfg.sabotage == Sabotage::CommitWorstPackSet {
            // Fault injection: commit the empty pack set and skip the
            // greedy floor — the costliest legal selection, which the
            // packing-quality oracle must flag.
            return Ok(());
        }
        // Trial both plans on the real function inside rollback
        // checkpoints, measuring post-DCE artifacts with `function_cost`.
        let global_cost = trial_cost(cx, PackingStrategy::Global)?;
        let greedy_cost = trial_cost(cx, PackingStrategy::Greedy)?;
        // Strictly-cheaper keeps global; ties and fuel exhaustion re-run
        // greedy deterministically (the greedy floor).
        match (global_cost, greedy_cost) {
            (Some(gl), Some(gr)) if gl < gr && !*cx.fuel_spent => run_global_plan(cx),
            _ => run_greedy(cx),
        }
    }
}

/// A rollback point for a strategy trial, matching the configured rollback
/// strategy: a nested IR transaction under delta undo, a full clone
/// otherwise (the clone carries the delta log, so restoring it keeps any
/// open outer transaction marks valid).
enum Checkpoint {
    Txn(lslp_ir::TxnMark),
    Snapshot(Box<Function>),
}

fn checkpoint(cx: &mut PackCx<'_>) -> Checkpoint {
    if cx.cfg.rollback == RollbackStrategy::Delta {
        Checkpoint::Txn(cx.f.begin_txn())
    } else {
        Checkpoint::Snapshot(Box::new(cx.f.clone()))
    }
}

fn restore(cx: &mut PackCx<'_>, cp: Checkpoint) {
    match cp {
        Checkpoint::Txn(mark) => cx.f.rollback_txn(mark),
        Checkpoint::Snapshot(snapshot) => *cx.f = *snapshot,
    }
}

/// Run one strategy inside a rollback checkpoint against a scratch report,
/// sweep dead scalars, and measure the artifact with [`function_cost`];
/// the function is restored before returning. `None` when the trial was
/// cut short by fuel exhaustion (the caller then falls back to greedy).
fn trial_cost(cx: &mut PackCx<'_>, which: PackingStrategy) -> Result<Option<i64>, GuardError> {
    if *cx.fuel_spent {
        return Ok(None);
    }
    let cp = checkpoint(cx);
    let mut scratch = VectorizeReport::default();
    let result = {
        let mut tcx = PackCx {
            f: &mut *cx.f,
            cfg: cx.cfg,
            tm: cx.tm,
            am: &mut *cx.am,
            report: &mut scratch,
            deadline: cx.deadline,
            fuel_spent: &mut *cx.fuel_spent,
        };
        match which {
            PackingStrategy::Greedy => run_greedy(&mut tcx),
            PackingStrategy::Global => run_global_plan(&mut tcx),
        }
    };
    if let Err(e) = result {
        // Strict-guard abort: the guard already rolled the failing attempt
        // back; unwind our checkpoint too so the caller sees clean state.
        restore(cx, cp);
        return Err(e);
    }
    // Dead scalars distort the comparison (greedy and global leave
    // different residue), so measure what would actually be emitted.
    dce::run(cx.f);
    let cost = function_cost(cx.f, cx.tm);
    restore(cx, cp);
    if *cx.fuel_spent {
        return Ok(None);
    }
    Ok(Some(cost))
}

/// One plannable candidate: a pack of `vf` stores starting at chain
/// position `start`, with its costed attempt row.
#[derive(Clone, Debug)]
struct PlanCand {
    start: usize,
    vf: usize,
    cost: i64,
    attempt_idx: usize,
    bundle: Vec<ValueId>,
}

/// Branch-and-bound node budget per chain per restart round. Bounds the
/// exponential part of the search independently of the wall-clock fuel;
/// exhausting it keeps the DP plan (an incident records the degradation).
const BNB_STEP_BUDGET: usize = 1 << 14;

fn run_global_plan(cx: &mut PackCx<'_>) -> Result<(), GuardError> {
    // Costing survives restarts: bundles are keyed by their store
    // ValueIds, which are stable until the pack containing them commits.
    // `tried` gates Attempt rows (once per bundle), `costed` feeds the
    // planner, `failed` excludes packs whose commit rolled back — without
    // it a failing planned pack would be re-planned forever; without
    // `costed` a pack costed in round 1 but planned in round 2 would
    // starve behind the `tried` gate.
    let mut tried: HashSet<Vec<ValueId>> = HashSet::new();
    let mut costed: HashMap<Vec<ValueId>, (i64, usize)> = HashMap::new();
    let mut failed: HashSet<Vec<ValueId>> = HashSet::new();
    'restart: loop {
        fuel_check(cx)?;
        if *cx.fuel_spent {
            break;
        }
        let addr = cx.am.addr_info(cx.f);
        let chains = collect_store_chains(cx.f, &addr);
        let positions = cx.am.positions(cx.f);
        let use_map = cx.am.use_map(cx.f);
        for chain in &chains {
            let Some(elem) = cx.f.ty(cx.f.args_of(chain.stores[0])[0]).elem() else {
                record_unsupported(cx, &addr, chain, &mut tried)?;
                continue;
            };
            let max_vf = (cx.tm.max_vf(elem) as usize).min(cx.cfg.max_vf as usize);
            // Phase 1: enumerate every position × legal VF of this chain
            // (greedy only explores positions its commits leave behind —
            // missing exactly the plans this strategy exists to find).
            let mut cands: Vec<PlanCand> = Vec::new();
            for start in 0..chain.len() {
                let mut vf = pow2_floor((chain.len() - start).min(max_vf));
                while vf >= 2 {
                    fuel_check(cx)?;
                    if *cx.fuel_spent {
                        break 'restart;
                    }
                    let bundle = chain.stores[start..start + vf].to_vec();
                    if tried.insert(bundle.clone()) {
                        if let Some((cost, idx)) = cost_bundle(
                            cx,
                            &bundle,
                            vf,
                            &addr,
                            &positions,
                            &use_map,
                            PackingStrategy::Global,
                        )? {
                            if cost < cx.cfg.cost_threshold {
                                costed.insert(bundle.clone(), (cost, idx));
                            }
                        }
                    }
                    if !failed.contains(&bundle) {
                        if let Some(&(cost, attempt_idx)) = costed.get(&bundle) {
                            cands.push(PlanCand { start, vf, cost, attempt_idx, bundle });
                        }
                    }
                    vf /= 2;
                }
            }
            if cands.is_empty() {
                continue;
            }
            // Phase 2: select the pack set for this chain.
            let plan = select_pack_set(cx, elem, chain.len(), &cands)?;
            // Phase 3: commit the first planned pack, then restart so the
            // next round plans against fresh analyses (positions and uses
            // shift under the committed rewrite).
            for pick in plan {
                if let Some(stats) = commit_pack(cx, &pick.bundle, &addr, &positions, &use_map)? {
                    mark_committed(cx.report, pick.attempt_idx, pick.cost, &stats);
                    continue 'restart;
                }
                failed.insert(pick.bundle.clone());
            }
        }
        break;
    }
    Ok(())
}

/// Phase 2 for one chain: choose a set of non-overlapping packs minimizing
/// total cost. DP (weighted interval scheduling over the chain line) is
/// exact when packs are independent; branch-and-bound then re-scores plans
/// *with* the inter-pack permutation penalty for abutting packs of
/// different shapes, pruned by the DP bound and capped by
/// [`BNB_STEP_BUDGET`] — on budget exhaustion the DP plan stands.
fn select_pack_set(
    cx: &mut PackCx<'_>,
    elem: lslp_ir::ScalarType,
    chain_len: usize,
    cands: &[PlanCand],
) -> Result<Vec<PlanCand>, GuardError> {
    // Candidates starting at each position, for O(1) DP transitions.
    let mut at: Vec<Vec<&PlanCand>> = vec![Vec::new(); chain_len];
    for c in cands {
        at[c.start].push(c);
    }
    // dp[j] = cheapest achievable total cost over positions j.. ignoring
    // inter-pack penalties (a valid lower bound: penalties are >= 0).
    let mut dp = vec![0i64; chain_len + 1];
    for j in (0..chain_len).rev() {
        dp[j] = dp[j + 1];
        for c in &at[j] {
            dp[j] = dp[j].min(c.cost + dp[j + c.vf]);
        }
    }
    if dp[0] == 0 {
        return Ok(Vec::new()); // nothing profitable anywhere on this chain
    }
    // Reconstruct the DP plan (ties to the wider pack, mirroring greedy's
    // wider-first tiebreak).
    let mut dp_plan: Vec<PlanCand> = Vec::new();
    let mut j = 0;
    while j < chain_len {
        let mut picked: Option<&PlanCand> = None;
        for c in &at[j] {
            if c.cost + dp[j + c.vf] == dp[j] {
                picked = match picked {
                    Some(p) if p.vf >= c.vf => Some(p),
                    _ => Some(c),
                };
            }
        }
        match picked {
            Some(c)
                if dp[j] != dp[j + 1]
                    || picked.is_some_and(|p| p.cost + dp[j + p.vf] < dp[j + 1]) =>
            {
                dp_plan.push(c.clone());
                j += c.vf;
            }
            _ => j += 1,
        }
    }
    // Branch-and-bound refinement under the full score (pack costs plus
    // `cross_pack_shuffle_cost` for abutting packs of different VFs).
    let mut best_plan = dp_plan;
    let mut best_score = plan_score(cx.tm, elem, &best_plan);
    let mut steps = 0usize;
    let mut stack: Vec<(usize, i64, Vec<PlanCand>)> = vec![(0, 0, Vec::new())];
    while let Some((j, score, partial)) = stack.pop() {
        steps += 1;
        if steps > BNB_STEP_BUDGET {
            guard::record(
                cx.cfg.guard,
                &mut cx.report.incidents,
                Incident {
                    pass: "vectorize".into(),
                    seed: None,
                    kind: IncidentKind::FuelExhausted,
                    detail: format!(
                        "branch-and-bound budget of {BNB_STEP_BUDGET} nodes exhausted; \
                         DP pack plan kept"
                    ),
                },
            )?;
            break;
        }
        if j >= chain_len {
            if score < best_score {
                best_score = score;
                best_plan = partial;
            }
            continue;
        }
        // Prune: even the penalty-free optimum of the remainder cannot
        // beat the incumbent.
        if score + dp[j] >= best_score {
            // The empty-tail completion may still win at exactly score.
            if score < best_score && partial.iter().map(|c| c.cost).sum::<i64>() == score {
                // handled when j reaches chain_len via the skip branch
            }
            if score + dp[j] > best_score {
                continue;
            }
        }
        // Skip this position.
        stack.push((j + 1, score, partial.clone()));
        // Or take a candidate starting here.
        for c in &at[j] {
            let penalty = match partial.last() {
                Some(prev) if prev.start + prev.vf == c.start => {
                    cx.tm.cross_pack_shuffle_cost(elem, prev.vf as u32, c.vf as u32)
                }
                _ => 0,
            };
            let mut next = partial.clone();
            next.push((*c).clone());
            stack.push((j + c.vf, score + c.cost + penalty, next));
        }
    }
    Ok(best_plan)
}

/// Full score of a plan: pack costs plus inter-pack permutation penalties
/// for abutting packs of different shapes.
fn plan_score(tm: &CostModel, elem: lslp_ir::ScalarType, plan: &[PlanCand]) -> i64 {
    let mut score: i64 = plan.iter().map(|c| c.cost).sum();
    for w in plan.windows(2) {
        if w[0].start + w[0].vf == w[1].start {
            score += tm.cross_pack_shuffle_cost(elem, w[0].vf as u32, w[1].vf as u32);
        }
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::vectorize_function;
    use lslp_ir::{FunctionBuilder, Type};

    #[test]
    fn pow2_floor_values() {
        assert_eq!(pow2_floor(0), 0);
        assert_eq!(pow2_floor(1), 1);
        assert_eq!(pow2_floor(2), 2);
        assert_eq!(pow2_floor(3), 2);
        assert_eq!(pow2_floor(4), 4);
        assert_eq!(pow2_floor(7), 4);
        assert_eq!(pow2_floor(8), 8);
    }

    fn axpy_kernel(lanes: i64) -> Function {
        let mut f = Function::new("axpy");
        let pa = f.add_param("A", Type::PTR);
        let pb = f.add_param("B", Type::PTR);
        let pc = f.add_param("C", Type::PTR);
        let i = f.add_param("i", Type::I64);
        for o in 0..lanes {
            let mut b = FunctionBuilder::new(&mut f);
            let off = b.func().const_i64(o);
            let idx = b.add(i, off);
            let gb = b.gep(pb, idx, 8);
            let lb = b.load(Type::I64, gb);
            let gc = b.gep(pc, idx, 8);
            let lc = b.load(Type::I64, gc);
            let s = b.add(lb, lc);
            let ga = b.gep(pa, idx, 8);
            b.store(s, ga);
        }
        f
    }

    /// The motivating shape for global packing: greedy commits the weak
    /// pack `[0,2)` at position 0 and thereby locks out the strong pack
    /// `[1,3)`; the global planner takes `[1,3)`.
    ///
    /// Lanes: `A[0]=B[0]+x; A[1]=B[1]+C[1]; A[2]=B[2]+C[2]; A[3]=y`.
    fn greedy_trap_kernel() -> Function {
        let mut f = Function::new("trap");
        let pa = f.add_param("A", Type::PTR);
        let pb = f.add_param("B", Type::PTR);
        let pc = f.add_param("C", Type::PTR);
        let x = f.add_param("x", Type::I64);
        let y = f.add_param("y", Type::I64);
        let i = f.add_param("i", Type::I64);
        for o in 0..3i64 {
            let mut b = FunctionBuilder::new(&mut f);
            let off = b.func().const_i64(o);
            let idx = b.add(i, off);
            let gb = b.gep(pb, idx, 8);
            let lb = b.load(Type::I64, gb);
            let rhs = if o == 0 {
                x
            } else {
                let gc = b.gep(pc, idx, 8);
                b.load(Type::I64, gc)
            };
            let s = b.add(lb, rhs);
            let ga = b.gep(pa, idx, 8);
            b.store(s, ga);
        }
        {
            let mut b = FunctionBuilder::new(&mut f);
            let off = b.func().const_i64(3);
            let idx = b.add(i, off);
            let ga = b.gep(pa, idx, 8);
            b.store(y, ga);
        }
        f
    }

    fn cfg_with(packing: PackingStrategy) -> VectorizerConfig {
        VectorizerConfig { packing, ..VectorizerConfig::lslp() }
    }

    #[test]
    fn global_matches_greedy_on_a_clean_kernel() {
        let tm = CostModel::default();
        let mut fg = axpy_kernel(4);
        let mut fo = axpy_kernel(4);
        let rg = vectorize_function(&mut fg, &cfg_with(PackingStrategy::Greedy), &tm);
        let ro = vectorize_function(&mut fo, &cfg_with(PackingStrategy::Global), &tm);
        assert_eq!(rg.trees_vectorized, 1);
        assert_eq!(ro.trees_vectorized, 1);
        assert_eq!(function_cost(&fg, &tm), function_cost(&fo, &tm));
        lslp_ir::verify_function(&fo).unwrap();
    }

    #[test]
    fn global_escapes_the_greedy_trap() {
        let tm = CostModel::default();
        let mut fg = greedy_trap_kernel();
        let mut fo = greedy_trap_kernel();
        let rg = vectorize_function(&mut fg, &cfg_with(PackingStrategy::Greedy), &tm);
        let ro = vectorize_function(&mut fo, &cfg_with(PackingStrategy::Global), &tm);
        // Greedy commits the weak [0,2) pack; global must do strictly
        // better by selecting [1,3) instead.
        assert!(rg.trees_vectorized >= 1);
        assert!(ro.trees_vectorized >= 1);
        assert!(
            function_cost(&fo, &tm) < function_cost(&fg, &tm),
            "global {} !< greedy {}",
            function_cost(&fo, &tm),
            function_cost(&fg, &tm)
        );
        assert!(ro.applied_cost < rg.applied_cost, "{} !< {}", ro.applied_cost, rg.applied_cost);
        lslp_ir::verify_function(&fo).unwrap();
    }

    #[test]
    fn committed_attempts_record_their_strategy() {
        let tm = CostModel::default();
        let mut f = greedy_trap_kernel();
        let report = vectorize_function(&mut f, &cfg_with(PackingStrategy::Global), &tm);
        let committed: Vec<_> = report.attempts.iter().filter(|a| a.vectorized).collect();
        assert!(!committed.is_empty());
        assert!(committed.iter().all(|a| a.strategy == PackingStrategy::Global), "{committed:?}");

        let mut f = axpy_kernel(4);
        let report = vectorize_function(&mut f, &cfg_with(PackingStrategy::Greedy), &tm);
        assert!(report
            .attempts
            .iter()
            .filter(|a| a.vectorized)
            .all(|a| a.strategy == PackingStrategy::Greedy));
    }

    #[test]
    fn worst_pack_set_sabotage_commits_nothing_under_global() {
        let tm = CostModel::default();
        let cfg = VectorizerConfig {
            sabotage: Sabotage::CommitWorstPackSet,
            ..cfg_with(PackingStrategy::Global)
        };
        let mut f = axpy_kernel(4);
        let before = function_cost(&f, &tm);
        let report = vectorize_function(&mut f, &cfg, &tm);
        assert_eq!(report.trees_vectorized, 0);
        assert_eq!(function_cost(&f, &tm), before);
        // Greedy ignores this sabotage entirely.
        let mut f = axpy_kernel(4);
        let cfg = VectorizerConfig { packing: PackingStrategy::Greedy, ..cfg.clone() };
        assert_eq!(vectorize_function(&mut f, &cfg, &tm).trees_vectorized, 1);
    }

    #[test]
    fn function_cost_orders_scalar_above_vector() {
        let tm = CostModel::default();
        let scalar = axpy_kernel(4);
        let mut vectored = axpy_kernel(4);
        vectorize_function(&mut vectored, &VectorizerConfig::lslp(), &tm);
        assert!(function_cost(&vectored, &tm) < function_cost(&scalar, &tm));
    }

    #[test]
    fn global_degrades_to_greedy_when_fuel_is_spent() {
        // A 1ms budget on a wide kernel: the pass must terminate, verify,
        // and never be costlier than the scalar original.
        let tm = CostModel::default();
        let cfg = VectorizerConfig { time_budget_ms: Some(1), ..cfg_with(PackingStrategy::Global) };
        let mut f = axpy_kernel(64);
        let scalar_cost = function_cost(&f, &tm);
        let _ = vectorize_function(&mut f, &cfg, &tm);
        lslp_ir::verify_function(&f).unwrap();
        assert!(function_cost(&f, &tm) <= scalar_cost);
    }
}
