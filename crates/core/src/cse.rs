//! Local common-subexpression elimination (value numbering).
//!
//! Pure instructions (arithmetic, `gep`, shuffles, compares) with identical
//! opcode, type, operands, and attributes are merged into the first
//! occurrence. Loads are merged only when no possibly-aliasing store
//! intervenes; stores are barriers and never merged.

use std::collections::HashMap;

use lslp_analysis::AnalysisManager;
use lslp_ir::{Function, InstAttr, Module, Opcode, Type, ValueId};

#[derive(PartialEq, Eq, Hash)]
struct Key {
    op: Opcode,
    ty: Type,
    args: Vec<ValueId>,
    attr: InstAttr,
    /// For loads: the index of the last store that may alias this address
    /// (loads merge only within the same "memory epoch").
    mem_epoch: usize,
}

/// Run one CSE pass; returns the number of instructions merged away.
/// (Standalone entry point: computes its analyses into a throwaway
/// manager. The pipeline uses [`run_with`] to share the cache.)
pub fn run(f: &mut Function) -> usize {
    run_with(f, &mut AnalysisManager::new())
}

/// [`run`], pulling the memory-dependence summary from `am`'s cache.
pub fn run_with(f: &mut Function, am: &mut AnalysisManager) -> usize {
    let memdep = am.memdep(f);
    let mut table: HashMap<Key, ValueId> = HashMap::new();
    let mut replace: Vec<(ValueId, ValueId)> = Vec::new();
    // Map from merged-away values to their representative, applied eagerly
    // while scanning so chains of duplicates (dup gep feeding dup load)
    // merge in a single pass.
    let mut resolved: HashMap<ValueId, ValueId> = HashMap::new();
    let resolve = |resolved: &HashMap<ValueId, ValueId>, v: ValueId| -> ValueId {
        resolved.get(&v).copied().unwrap_or(v)
    };
    for (_, id, inst) in f.iter_body() {
        match inst.op {
            Opcode::Store => {
                continue;
            }
            Opcode::Load => {
                // The load's memory epoch is precomputed by the MemDep
                // analysis; a conservative fallback is "any store".
                let epoch = memdep.load_epoch(id).unwrap_or(memdep.num_stores());
                let key = Key {
                    op: inst.op,
                    ty: inst.ty,
                    args: inst.args.iter().map(|&a| resolve(&resolved, a)).collect(),
                    attr: inst.attr.clone(),
                    mem_epoch: epoch,
                };
                match table.get(&key) {
                    Some(&first) => {
                        resolved.insert(id, first);
                        replace.push((id, first));
                    }
                    None => {
                        table.insert(key, id);
                    }
                }
            }
            _ => {
                let key = Key {
                    op: inst.op,
                    ty: inst.ty,
                    args: inst.args.iter().map(|&a| resolve(&resolved, a)).collect(),
                    attr: inst.attr.clone(),
                    mem_epoch: 0,
                };
                match table.get(&key) {
                    Some(&first) => {
                        resolved.insert(id, first);
                        replace.push((id, first));
                    }
                    None => {
                        table.insert(key, id);
                    }
                }
            }
        }
    }

    let merged = replace.len();
    let mut dead = std::collections::HashSet::new();
    for (dup, first) in replace {
        f.replace_uses(dup, first);
        dead.insert(dup);
    }
    f.remove_from_body(&dead);
    merged
}

/// CSE every function of a module; returns total merges.
pub fn run_module(m: &mut Module) -> usize {
    m.functions.iter_mut().map(run).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lslp_ir::{FunctionBuilder, Type};

    #[test]
    fn merges_pure_duplicates() {
        let mut f = Function::new("t");
        let x = f.add_param("x", Type::I64);
        let y = f.add_param("y", Type::I64);
        let p = f.add_param("P", Type::PTR);
        let mut b = FunctionBuilder::new(&mut f);
        let a1 = b.add(x, y);
        let a2 = b.add(x, y);
        let s = b.mul(a1, a2);
        b.store(s, p);
        assert_eq!(run(&mut f), 1);
        let text = lslp_ir::print_function(&f);
        assert_eq!(text.matches("add i64").count(), 1, "{text}");
        // The surviving mul squares the shared value.
        assert!(text.contains("mul i64 %0, %0"), "{text}");
    }

    #[test]
    fn does_not_merge_commuted_operands() {
        // CSE is syntactic: add(x, y) != add(y, x). (Canonicalization in
        // `simplify` handles the constant case.)
        let mut f = Function::new("t");
        let x = f.add_param("x", Type::I64);
        let y = f.add_param("y", Type::I64);
        let p = f.add_param("P", Type::PTR);
        let mut b = FunctionBuilder::new(&mut f);
        let a1 = b.add(x, y);
        let a2 = b.add(y, x);
        let s = b.mul(a1, a2);
        b.store(s, p);
        assert_eq!(run(&mut f), 0);
    }

    #[test]
    fn merges_loads_without_intervening_alias() {
        let mut f = Function::new("t");
        let a = f.add_param("A", Type::PTR);
        let bp = f.add_param("B", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let g1 = b.gep(a, i, 8);
        let l1 = b.load(Type::I64, g1);
        // Store to a *different* array: loads of A may still merge.
        let gb = b.gep(bp, i, 8);
        b.store(l1, gb);
        let g2 = b.gep(a, i, 8);
        let l2 = b.load(Type::I64, g2);
        let one = b.func().const_i64(1);
        let i1 = b.add(i, one);
        let gb2 = b.gep(bp, i1, 8);
        b.store(l2, gb2);
        let merged = run(&mut f);
        // gep dup + load dup merge.
        assert_eq!(merged, 2);
        let text = lslp_ir::print_function(&f);
        assert_eq!(text.matches("load i64").count(), 1, "{text}");
    }

    #[test]
    fn aliasing_store_blocks_load_merge() {
        let mut f = Function::new("t");
        let a = f.add_param("A", Type::PTR);
        let x = f.add_param("x", Type::I64);
        let i = f.add_param("i", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let g = b.gep(a, i, 8);
        let l1 = b.load(Type::I64, g);
        b.store(x, g); // overwrites A[i]
        let l2 = b.load(Type::I64, g);
        let s = b.add(l1, l2);
        b.store(s, g);
        let merged = run(&mut f);
        assert_eq!(merged, 0, "the store must block the merge");
        let text = lslp_ir::print_function(&f);
        assert_eq!(text.matches("load i64").count(), 2, "{text}");
    }

    #[test]
    fn attrs_distinguish_instructions() {
        let mut f = Function::new("t");
        let a = f.add_param("A", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let g4 = b.gep(a, i, 4);
        let g8 = b.gep(a, i, 8);
        let l4 = b.load(Type::Scalar(lslp_ir::ScalarType::I32), g4);
        let l8 = b.load(Type::I64, g8);
        let _ = (l4, l8);
        assert_eq!(run(&mut f), 0, "different gep strides must not merge");
    }
}
