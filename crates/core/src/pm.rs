//! The pass manager: a `Pass` trait, guarded execution, cached analyses.
//!
//! LLVM-new-PM in miniature. Every transform — the scalar clean-up passes
//! and the vectorizer — implements [`Pass`] and runs under a
//! [`PassManager`] that supplies three cross-cutting services so the
//! passes themselves stay pure transforms:
//!
//! * **transactions** — each pass runs inside the
//!   [`crate::guard::GuardInstrumentation`] before/after-pass hooks
//!   (snapshot, panic isolation, post-verify, rollback) instead of every
//!   call site wrapping itself;
//! * **cached analyses** — passes pull [`AddrInfo`](lslp_analysis::AddrInfo),
//!   position/use maps, and memory-dependence summaries from the
//!   [`AnalysisManager`] and declare what they preserve via
//!   [`PreservedAnalyses`]; the manager invalidates the rest, keyed by the
//!   function's mutation epoch;
//! * **observability** — per-pass wall-clock timers ([`PassTiming`]) and
//!   named counters ([`Statistics`]) accumulate per run and surface
//!   through [`crate::PipelineReport`] and `lslpc --print-pass-times
//!   --stats`.

use std::time::{Duration, Instant};

use lslp_analysis::{AnalysisManager, PreservedAnalyses};
use lslp_ir::Function;
use lslp_target::CostModel;

use crate::config::VectorizerConfig;
use crate::guard::{GuardError, GuardInstrumentation, GuardMode, GuardPolicy, Incident};
use crate::pass::VectorizeReport;
use crate::stats::Statistics;

/// Everything a pass may read but not own: configuration, the target cost
/// model, and the shared statistics registry.
pub struct PassContext<'a> {
    /// The vectorizer/pipeline configuration.
    pub cfg: &'a VectorizerConfig,
    /// The target cost model.
    pub tm: &'a CostModel,
    /// Shared counter registry; passes report through [`Statistics::add`].
    pub stats: &'a Statistics,
}

/// What a pass run reports back: how much it rewrote and which analyses
/// survived it.
#[derive(Clone, Debug)]
pub struct PassResult {
    /// Number of rewrites (pass-specific unit: instructions simplified,
    /// merged, removed, trees vectorized, …).
    pub rewrites: usize,
    /// Which cached analyses are still valid for the transformed function.
    /// Consulted only when the function's epoch actually moved.
    pub preserved: PreservedAnalyses,
}

impl PassResult {
    /// The pass changed nothing: every analysis survives.
    pub fn unchanged() -> PassResult {
        PassResult { rewrites: 0, preserved: PreservedAnalyses::all() }
    }

    /// The pass rewrote `rewrites` things and preserves nothing.
    pub fn mutated(rewrites: usize) -> PassResult {
        PassResult { rewrites, preserved: PreservedAnalyses::none() }
    }

    /// Convention used by the counting passes: a zero count means the
    /// function was untouched.
    pub fn from_count(rewrites: usize) -> PassResult {
        if rewrites == 0 {
            PassResult::unchanged()
        } else {
            PassResult::mutated(rewrites)
        }
    }
}

/// A function transform that runs under the [`PassManager`].
pub trait Pass {
    /// Stable pass name used in timings, statistics, and incidents.
    fn name(&self) -> &'static str;

    /// Transform `f`, pulling analyses from `am` and reporting counters
    /// through `cx.stats`.
    fn run(&mut self, f: &mut Function, am: &mut AnalysisManager, cx: &PassContext) -> PassResult;

    /// Whether the pass runs its own internal transactions (the vectorizer
    /// guards per seed). Self-guarded passes are not wrapped in an outer
    /// snapshot/verify transaction — that would double the snapshot cost
    /// and re-verify what each inner commit already verified.
    fn self_guarded(&self) -> bool {
        false
    }
}

/// Wall-clock record of one pass execution.
#[derive(Clone, Debug)]
pub struct PassTiming {
    /// The pass name.
    pub pass: &'static str,
    /// Wall-clock time of the run (including guard overhead).
    pub time: Duration,
    /// Rewrites the run reported (0 when rolled back).
    pub rewrites: usize,
}

/// Runs passes as guarded transactions and records per-pass timings and
/// incidents.
pub struct PassManager {
    guard: GuardInstrumentation,
    timings: Vec<PassTiming>,
    incidents: Vec<Incident>,
}

impl PassManager {
    /// A pass manager with the given guard policy.
    pub fn new(policy: GuardPolicy) -> PassManager {
        PassManager {
            guard: GuardInstrumentation::new(policy),
            timings: Vec::new(),
            incidents: Vec::new(),
        }
    }

    /// Timings of every pass run so far, in execution order.
    pub fn timings(&self) -> &[PassTiming] {
        &self.timings
    }

    /// Drain the recorded timings.
    pub fn take_timings(&mut self) -> Vec<PassTiming> {
        std::mem::take(&mut self.timings)
    }

    /// Drain the incidents recorded for rolled-back passes.
    pub fn take_incidents(&mut self) -> Vec<Incident> {
        std::mem::take(&mut self.incidents)
    }

    /// Run one pass over `f` as a guarded transaction and keep `am`
    /// consistent with the outcome:
    ///
    /// * commit, function changed — the analyses the pass preserved are
    ///   re-keyed to the new epoch, the rest are dropped;
    /// * commit, function untouched — the cache is left warm;
    /// * rollback — the function's epoch is restored with it (snapshots
    ///   carry their epoch), but analyses computed against the abandoned
    ///   intermediate states must go: the cache is cleared.
    ///
    /// Returns the rewrite count (0 when rolled back).
    ///
    /// # Errors
    ///
    /// Under [`GuardMode::Strict`] the first incident aborts with a
    /// [`GuardError`]; in rollback mode incidents are recorded internally
    /// (see [`PassManager::take_incidents`]).
    pub fn run_pass(
        &mut self,
        pass: &mut dyn Pass,
        f: &mut Function,
        am: &mut AnalysisManager,
        cx: &PassContext,
    ) -> Result<usize, GuardError> {
        let name = pass.name();
        let started = Instant::now();
        let pre_epoch = f.epoch();
        let outcome = if pass.self_guarded() {
            Ok(pass.run(f, am, cx))
        } else {
            self.guard.transact(name, None, f, |f| {
                let r = pass.run(f, am, cx);
                let mutated = f.epoch() != pre_epoch;
                (r, mutated)
            })
        };
        let result = match outcome {
            Ok(r) => Some(r),
            Err(incident) => {
                am.invalidate_all();
                if self.guard.mode() == GuardMode::Strict {
                    self.timings.push(PassTiming {
                        pass: name,
                        time: started.elapsed(),
                        rewrites: 0,
                    });
                    return Err(GuardError(incident));
                }
                self.incidents.push(incident);
                None
            }
        };
        let rewrites = result.as_ref().map_or(0, |r| r.rewrites);
        if let Some(r) = &result {
            if f.epoch() != pre_epoch {
                am.mark_preserved(f, &r.preserved);
            }
        }
        self.timings.push(PassTiming { pass: name, time: started.elapsed(), rewrites });
        Ok(rewrites)
    }
}

// ---------------------------------------------------------------------------
// Pass implementations for the pipeline's transforms
// ---------------------------------------------------------------------------

/// If-conversion ([`crate::ifconv`]) as a pass: branch diamonds become
/// `select`s so the straight-line vectorizer can see through them.
#[derive(Default)]
pub struct IfConvertPass;

impl Pass for IfConvertPass {
    fn name(&self) -> &'static str {
        "if-convert"
    }

    fn run(&mut self, f: &mut Function, _am: &mut AnalysisManager, cx: &PassContext) -> PassResult {
        // Flattening the CFG can rewrite the function even when no diamond
        // converts, so mutation is judged by the epoch, not the count.
        let pre = f.epoch();
        let swap = cx.cfg.sabotage == crate::config::Sabotage::SwapIfArms;
        let n = crate::ifconv::run_with(f, swap);
        cx.stats.add(self.name(), "diamonds-converted", n as u64);
        if f.epoch() == pre {
            PassResult::unchanged()
        } else {
            PassResult::mutated(n.max(1))
        }
    }
}

/// Unroll-and-SLP ([`crate::unroll`]) as a pass: small counted loops are
/// fully unrolled so adjacent-store seeding finds packs across iterations.
#[derive(Default)]
pub struct UnrollLoopsPass;

impl Pass for UnrollLoopsPass {
    fn name(&self) -> &'static str {
        "unroll"
    }

    fn run(&mut self, f: &mut Function, _am: &mut AnalysisManager, cx: &PassContext) -> PassResult {
        let pre = f.epoch();
        let n = crate::unroll::run(f);
        cx.stats.add(self.name(), "loops-unrolled", n as u64);
        if f.epoch() == pre {
            PassResult::unchanged()
        } else {
            PassResult::mutated(n.max(1))
        }
    }
}

/// Algebraic simplification ([`crate::simplify`]) as a pass.
#[derive(Default)]
pub struct SimplifyPass;

impl Pass for SimplifyPass {
    fn name(&self) -> &'static str {
        "simplify"
    }

    fn run(&mut self, f: &mut Function, _am: &mut AnalysisManager, cx: &PassContext) -> PassResult {
        let n = crate::simplify::run(f, cx.cfg.fast_math);
        cx.stats.add(self.name(), "rewrites", n as u64);
        PassResult::from_count(n)
    }
}

/// Constant folding ([`crate::fold`]) as a pass.
#[derive(Default)]
pub struct FoldPass;

impl Pass for FoldPass {
    fn name(&self) -> &'static str {
        "fold"
    }

    fn run(&mut self, f: &mut Function, _am: &mut AnalysisManager, cx: &PassContext) -> PassResult {
        let n = crate::fold::run(f);
        cx.stats.add(self.name(), "constants-folded", n as u64);
        PassResult::from_count(n)
    }
}

/// Common-subexpression elimination ([`crate::cse`]) as a pass. Pulls the
/// address and memory-dependence analyses from the cache.
#[derive(Default)]
pub struct CsePass;

impl Pass for CsePass {
    fn name(&self) -> &'static str {
        "cse"
    }

    fn run(&mut self, f: &mut Function, am: &mut AnalysisManager, cx: &PassContext) -> PassResult {
        let n = crate::cse::run_with(f, am);
        cx.stats.add(self.name(), "insts-merged", n as u64);
        PassResult::from_count(n)
    }
}

/// Dead-code elimination ([`crate::dce`]) as a pass.
#[derive(Default)]
pub struct DcePass;

impl Pass for DcePass {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run(&mut self, f: &mut Function, _am: &mut AnalysisManager, cx: &PassContext) -> PassResult {
        let n = crate::dce::run(f);
        cx.stats.add(self.name(), "insts-removed", n as u64);
        PassResult::from_count(n)
    }
}

/// The (L)SLP vectorizer as a pass. Self-guarded: it transacts per seed
/// internally (see [`crate::pass::try_vectorize_function_with`]), so the
/// manager only times it and maintains the analysis cache. The detailed
/// [`VectorizeReport`] (and a strict-mode abort, if any) is retrieved with
/// [`VectorizePass::take_report`] after the run.
#[derive(Default)]
pub struct VectorizePass {
    outcome: Option<Result<VectorizeReport, GuardError>>,
}

impl VectorizePass {
    /// The report of the last run (or the strict-mode error that aborted
    /// it). An empty report if the pass never ran.
    ///
    /// # Errors
    ///
    /// Propagates the [`GuardError`] a strict-mode run aborted with.
    pub fn take_report(&mut self) -> Result<VectorizeReport, GuardError> {
        self.outcome.take().unwrap_or_else(|| Ok(VectorizeReport::default()))
    }
}

impl Pass for VectorizePass {
    fn name(&self) -> &'static str {
        "vectorize"
    }

    fn self_guarded(&self) -> bool {
        true
    }

    fn run(&mut self, f: &mut Function, am: &mut AnalysisManager, cx: &PassContext) -> PassResult {
        let r = crate::pass::try_vectorize_function_with(f, cx.cfg, cx.tm, am);
        let result = match &r {
            Ok(rep) => {
                cx.stats.add(self.name(), "seeds-attempted", rep.attempts.len() as u64);
                cx.stats.add(self.name(), "trees-vectorized", rep.trees_vectorized as u64);
                cx.stats.add(self.name(), "vector-insts", rep.stats.vector_insts as u64);
                cx.stats.add(self.name(), "extracts", rep.stats.extracts as u64);
                cx.stats.add(self.name(), "stores-deleted", rep.stats.stores_deleted as u64);
                cx.stats.add(self.name(), "insts-dce-removed", rep.dce_removed as u64);
                PassResult { rewrites: rep.trees_vectorized, preserved: PreservedAnalyses::none() }
            }
            Err(_) => PassResult { rewrites: 0, preserved: PreservedAnalyses::none() },
        };
        self.outcome = Some(r);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lslp_analysis::AnalysisKind;
    use lslp_ir::{FunctionBuilder, Type};

    fn redundant_kernel() -> Function {
        let mut f = Function::new("k");
        let pa = f.add_param("A", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let zero = b.func().const_i64(0);
        let g = b.gep(pa, i, 8);
        let l = b.load(Type::I64, g);
        let x = b.add(l, zero); // simplifies away
        b.store(x, g);
        f
    }

    #[test]
    fn manager_times_and_counts_passes() {
        let mut f = redundant_kernel();
        let mut am = AnalysisManager::new();
        let cfg = VectorizerConfig::o3();
        let tm = CostModel::default();
        let stats = Statistics::new();
        let cx = PassContext { cfg: &cfg, tm: &tm, stats: &stats };
        let mut pm = PassManager::new(GuardPolicy::new(GuardMode::Rollback));
        let n = pm.run_pass(&mut SimplifyPass, &mut f, &mut am, &cx).unwrap();
        assert!(n > 0, "simplify must fire on x + 0");
        assert_eq!(stats.get("simplify", "rewrites"), n as u64);
        assert_eq!(pm.timings().len(), 1);
        assert_eq!(pm.timings()[0].pass, "simplify");
        assert_eq!(pm.timings()[0].rewrites, n);
        assert!(pm.take_incidents().is_empty());
    }

    #[test]
    fn clean_pass_run_keeps_cache_warm() {
        let mut f = redundant_kernel();
        let mut am = AnalysisManager::new();
        let cfg = VectorizerConfig::o3();
        let tm = CostModel::default();
        let stats = Statistics::new();
        let cx = PassContext { cfg: &cfg, tm: &tm, stats: &stats };
        let mut pm = PassManager::new(GuardPolicy::new(GuardMode::Rollback));
        // Warm the cache, then run a pass that won't change anything
        // (simplify already ran), and make sure the entries survive.
        pm.run_pass(&mut SimplifyPass, &mut f, &mut am, &cx).unwrap();
        let _ = am.addr_info(&f);
        let misses = am.cache_stats().misses;
        let n = pm.run_pass(&mut SimplifyPass, &mut f, &mut am, &cx).unwrap();
        assert_eq!(n, 0, "second simplify must be a no-op");
        let _ = am.addr_info(&f);
        assert_eq!(am.cache_stats().misses, misses, "no-op pass must not cold the cache");
        assert!(am.cache_stats().hits > 0);
    }

    #[test]
    fn rolled_back_pass_clears_cache_and_records() {
        struct PanicPass;
        impl Pass for PanicPass {
            fn name(&self) -> &'static str {
                "panicky"
            }
            fn run(
                &mut self,
                f: &mut Function,
                am: &mut AnalysisManager,
                _cx: &PassContext,
            ) -> PassResult {
                f.add_param("junk", Type::I64);
                let _ = am.addr_info(f); // cache an intermediate-state analysis
                panic!("injected");
            }
        }
        let mut f = redundant_kernel();
        let before = lslp_ir::print_function(&f);
        let mut am = AnalysisManager::new();
        let cfg = VectorizerConfig::o3();
        let tm = CostModel::default();
        let stats = Statistics::new();
        let cx = PassContext { cfg: &cfg, tm: &tm, stats: &stats };
        let mut pm = PassManager::new(GuardPolicy::new(GuardMode::Rollback));
        let n = pm.run_pass(&mut PanicPass, &mut f, &mut am, &cx).unwrap();
        assert_eq!(n, 0);
        assert_eq!(lslp_ir::print_function(&f), before, "rollback must restore");
        let incidents = pm.take_incidents();
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].pass, "panicky");
        // The intermediate-state analysis must not leak into the restored
        // function's cache: the next query recomputes.
        let misses = am.cache_stats().misses;
        let _ = am.addr_info(&f);
        assert_eq!(am.cache_stats().misses, misses + 1, "stale entry must be dropped");
    }

    #[test]
    fn strict_mode_aborts_run_pass() {
        struct PanicPass;
        impl Pass for PanicPass {
            fn name(&self) -> &'static str {
                "panicky"
            }
            fn run(
                &mut self,
                _f: &mut Function,
                _am: &mut AnalysisManager,
                _cx: &PassContext,
            ) -> PassResult {
                panic!("injected");
            }
        }
        let mut f = redundant_kernel();
        let mut am = AnalysisManager::new();
        let cfg = VectorizerConfig::o3();
        let tm = CostModel::default();
        let stats = Statistics::new();
        let cx = PassContext { cfg: &cfg, tm: &tm, stats: &stats };
        let mut pm = PassManager::new(GuardPolicy::new(GuardMode::Strict));
        let err = pm.run_pass(&mut PanicPass, &mut f, &mut am, &cx).unwrap_err();
        assert_eq!(err.0.pass, "panicky");
        assert_eq!(pm.timings().len(), 1, "aborted runs are still timed");
    }

    #[test]
    fn preserving_pass_keeps_declared_analyses() {
        /// Renames a value: mutates the function but structurally preserves
        /// positions/uses/addresses.
        struct RenamePass;
        impl Pass for RenamePass {
            fn name(&self) -> &'static str {
                "rename"
            }
            fn run(
                &mut self,
                f: &mut Function,
                _am: &mut AnalysisManager,
                _cx: &PassContext,
            ) -> PassResult {
                let v = f.params()[0];
                f.set_value_name(v, "renamed");
                PassResult {
                    rewrites: 1,
                    preserved: PreservedAnalyses::none()
                        .preserve(AnalysisKind::Addr)
                        .preserve(AnalysisKind::Positions),
                }
            }
        }
        let mut f = redundant_kernel();
        let mut am = AnalysisManager::new();
        let _ = am.addr_info(&f);
        let _ = am.positions(&f);
        let _ = am.use_map(&f);
        let cfg = VectorizerConfig::o3();
        let tm = CostModel::default();
        let stats = Statistics::new();
        let cx = PassContext { cfg: &cfg, tm: &tm, stats: &stats };
        let mut pm = PassManager::new(GuardPolicy::new(GuardMode::Rollback));
        pm.run_pass(&mut RenamePass, &mut f, &mut am, &cx).unwrap();
        let misses = am.cache_stats().misses;
        let _ = am.addr_info(&f);
        let _ = am.positions(&f);
        assert_eq!(am.cache_stats().misses, misses, "preserved analyses stay cached");
        let _ = am.use_map(&f);
        assert_eq!(am.cache_stats().misses, misses + 1, "dropped analysis recomputes");
    }
}
