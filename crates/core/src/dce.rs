//! Trivial dead-code elimination.
//!
//! After vector code generation the scalar instructions whose results were
//! fully superseded by vector values have no remaining users; this pass
//! sweeps them (and the address computations that die with them). Stores
//! are side-effecting and never removed here — the vectorizer deletes the
//! scalar stores it replaces explicitly.

use std::collections::{HashMap, HashSet};

use lslp_ir::{Function, Module, ValueId};

/// Remove side-effect-free instructions with no users, iterating to a fixed
/// point. Returns the number of instructions removed.
pub fn run(f: &mut Function) -> usize {
    let mut removed = 0;
    loop {
        let mut used: HashMap<ValueId, usize> = HashMap::new();
        for (_, _, inst) in f.iter_body() {
            for &a in &inst.args {
                *used.entry(a).or_default() += 1;
            }
        }
        let dead: HashSet<ValueId> = f
            .iter_body()
            .filter(|(_, id, inst)| {
                !inst.op.has_side_effect() && used.get(id).copied().unwrap_or(0) == 0
            })
            .map(|(_, id, _)| id)
            .collect();
        if dead.is_empty() {
            return removed;
        }
        removed += dead.len();
        f.remove_from_body(&dead);
    }
}

/// Run DCE over every function of a module; returns total removals.
pub fn run_module(m: &mut Module) -> usize {
    m.functions.iter_mut().map(run).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lslp_ir::{FunctionBuilder, Type};

    #[test]
    fn removes_transitively_dead_chains() {
        let mut f = Function::new("d");
        let a = f.add_param("a", Type::I64);
        let p = f.add_param("P", Type::PTR);
        let mut b = FunctionBuilder::new(&mut f);
        let x = b.add(a, a); // dead via y
        let _y = b.mul(x, a); // dead
        let z = b.sub(a, a); // live (stored)
        b.store(z, p);
        assert_eq!(run(&mut f), 2);
        assert_eq!(f.body_len(), 2);
        lslp_ir::verify_function(&f).unwrap();
    }

    #[test]
    fn keeps_stores_and_their_inputs() {
        let mut f = Function::new("d");
        let a = f.add_param("a", Type::I64);
        let p = f.add_param("P", Type::PTR);
        let mut b = FunctionBuilder::new(&mut f);
        let g = b.gep(p, a, 8);
        let x = b.add(a, a);
        b.store(x, g);
        assert_eq!(run(&mut f), 0);
        assert_eq!(f.body_len(), 3);
    }

    #[test]
    fn dead_loads_are_removed() {
        let mut f = Function::new("d");
        let p = f.add_param("P", Type::PTR);
        let mut b = FunctionBuilder::new(&mut f);
        let _l = b.load(Type::I64, p);
        assert_eq!(run(&mut f), 1);
        assert_eq!(f.body_len(), 0);
    }
}
