//! The vectorization pass driver (paper Figure 1).
//!
//! Finds seed store chains and hands pack selection to the configured
//! [`crate::packing::Strategy`] (greedy per-lane-cheapest by default, or
//! the global DP/branch-and-bound planner), then runs reduction
//! vectorization, sweeps dead scalars, and verifies against the scalar
//! fallback anchor.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use lslp_analysis::AnalysisManager;
use lslp_ir::{Function, InstAttr, Module, Opcode, Type, ValueId};
use lslp_target::CostModel;

use crate::codegen::CodegenStats;
use crate::config::{PackingStrategy, Sabotage, VectorizerConfig};
use crate::dce;
use crate::guard::{self, GuardError, GuardMode, Incident, IncidentKind};
use crate::packing::{strategy_for, PackCx};

/// One attempted seed group.
#[derive(Clone, Debug)]
pub struct Attempt {
    /// Human-readable seed description, e.g. `A[+0..+2)`.
    pub seed: String,
    /// Vector factor (lanes).
    pub vf: usize,
    /// Total tree cost (`VectorCost − ScalarCost`; negative is profitable).
    pub cost: i64,
    /// Number of nodes in the graph.
    pub nodes: usize,
    /// Number of gather (non-vectorizable) nodes.
    pub gathers: usize,
    /// Whether vector code was generated.
    pub vectorized: bool,
    /// Which packing strategy costed (and, when `vectorized`, committed)
    /// this candidate.
    pub strategy: PackingStrategy,
}

/// The result of running the pass over one function.
#[derive(Clone, Debug, Default)]
pub struct VectorizeReport {
    /// Every seed group attempted, in order.
    pub attempts: Vec<Attempt>,
    /// Sum of the costs of all *applied* graphs — the "static cost" the
    /// paper plots in Figures 10–11 (lower/more negative is better).
    pub applied_cost: i64,
    /// Number of seed groups vectorized.
    pub trees_vectorized: usize,
    /// Aggregated code generation statistics.
    pub stats: CodegenStats,
    /// Instructions removed by the final DCE sweep.
    pub dce_removed: usize,
    /// Histogram of gather reasons over every costed attempt (keyed by the
    /// [`crate::GatherReason`] display name) — a cheap behavioral
    /// fingerprint of *why* bundles failed to vectorize, used by the
    /// coverage-guided fuzzer as a feedback signal.
    pub gather_reasons: BTreeMap<String, u64>,
    /// Reduction-seed attempts (only when
    /// [`VectorizerConfig::enable_reductions`] is set).
    pub reductions: Vec<crate::reduce::ReductionAttempt>,
    /// Guard incidents recorded while the pass ran: rolled-back seed
    /// attempts, skipped unsupported seeds, exhausted fuel budgets (empty
    /// under [`GuardMode::Off`], and in strict mode the first incident
    /// aborts the pass instead).
    pub incidents: Vec<Incident>,
    /// Wall-clock time spent in the pass (compilation-time metric of
    /// Figure 14).
    pub elapsed: Duration,
}

impl VectorizeReport {
    pub(crate) fn absorb(&mut self, s: &CodegenStats) {
        self.stats.vector_insts += s.vector_insts;
        self.stats.extracts += s.extracts;
        self.stats.stores_deleted += s.stores_deleted;
    }
}

/// Run the (L)SLP pass over one straight-line function.
///
/// ```
/// use lslp::{vectorize_function, VectorizerConfig};
/// use lslp_ir::{Function, FunctionBuilder, Type};
/// use lslp_target::CostModel;
///
/// // A[i+o] = B[i+o] + C[i+o] for o in 0..2
/// let mut f = Function::new("axpy");
/// let pa = f.add_param("A", Type::PTR);
/// let pb = f.add_param("B", Type::PTR);
/// let pc = f.add_param("C", Type::PTR);
/// let i = f.add_param("i", Type::I64);
/// for o in 0..2 {
///     let mut b = FunctionBuilder::new(&mut f);
///     let off = b.func().const_i64(o);
///     let idx = b.add(i, off);
///     let gb = b.gep(pb, idx, 8);
///     let lb = b.load(Type::I64, gb);
///     let gc = b.gep(pc, idx, 8);
///     let lc = b.load(Type::I64, gc);
///     let s = b.add(lb, lc);
///     let ga = b.gep(pa, idx, 8);
///     b.store(s, ga);
/// }
/// let report = vectorize_function(&mut f, &VectorizerConfig::lslp(), &CostModel::default());
/// assert_eq!(report.trees_vectorized, 1);
/// assert!(report.applied_cost < 0);
/// ```
pub fn vectorize_function(
    f: &mut Function,
    cfg: &VectorizerConfig,
    tm: &CostModel,
) -> VectorizeReport {
    try_vectorize_function(f, cfg, tm)
        .unwrap_or_else(|e| panic!("vectorizer aborted under the strict guard: {e}"))
}

/// [`vectorize_function`], surfacing [`GuardMode::Strict`] aborts as an
/// error instead of a panic. Under the other guard modes this never fails.
///
/// # Errors
///
/// In strict mode, returns the first guard incident (panic, verification
/// failure, or oracle mismatch) as a [`GuardError`]; the function is left
/// rolled back to its state before the failing transaction.
pub fn try_vectorize_function(
    f: &mut Function,
    cfg: &VectorizerConfig,
    tm: &CostModel,
) -> Result<VectorizeReport, GuardError> {
    try_vectorize_function_with(f, cfg, tm, &mut AnalysisManager::new())
}

/// [`try_vectorize_function`], pulling analyses from `am`'s epoch-keyed
/// cache: each restart of the seed loop re-queries the manager, which
/// recomputes only what a committed transformation invalidated (a
/// rolled-back attempt restores the function's epoch with it, so the cache
/// stays warm across failed attempts).
///
/// # Errors
///
/// See [`try_vectorize_function`].
pub fn try_vectorize_function_with(
    f: &mut Function,
    cfg: &VectorizerConfig,
    tm: &CostModel,
    am: &mut AnalysisManager,
) -> Result<VectorizeReport, GuardError> {
    let start = Instant::now();
    let deadline = cfg.time_budget_ms.map(|ms| start + Duration::from_millis(ms));
    let mut report = VectorizeReport::default();
    if !cfg.enabled {
        report.elapsed = start.elapsed();
        return Ok(report);
    }
    // Scalar fallback anchor: if the function is somehow left broken at
    // the end despite the per-attempt checks, restore the scalar original.
    // Under the delta strategy this is a whole-pass transaction (the
    // per-seed transactions nest inside it); under the snapshot and
    // differential strategies it stays a full clone.
    enum Anchor {
        None,
        Snapshot(Box<Function>),
        Txn(lslp_ir::TxnMark),
    }
    let anchor = if cfg.guard == GuardMode::Off {
        Anchor::None
    } else if cfg.rollback == crate::guard::RollbackStrategy::Delta {
        Anchor::Txn(f.begin_txn())
    } else {
        Anchor::Snapshot(Box::new(f.clone()))
    };

    // Pack selection: everything between seeding and the reduction pass
    // lives behind the `PackingStrategy` seam (see `crate::packing`).
    let mut fuel_spent = false;
    {
        let mut cx = PackCx {
            f: &mut *f,
            cfg,
            tm,
            am,
            report: &mut report,
            deadline,
            fuel_spent: &mut fuel_spent,
        };
        strategy_for(cfg.packing).run(&mut cx)?;
    }
    if cfg.enable_reductions {
        let reds = guard::run_guarded(
            f,
            cfg.guard_policy(),
            "reductions",
            None,
            &mut report.incidents,
            |f| {
                let reds = crate::reduce::run_with(f, cfg, tm, am);
                let mutated = reds.iter().any(|r| r.applied);
                (reds, mutated)
            },
        )?;
        report.reductions = reds.unwrap_or_default();
        for r in &report.reductions {
            if r.applied {
                report.applied_cost += r.cost;
                report.trees_vectorized += 1;
            }
        }
    }
    report.dce_removed = if cfg.sabotage == Sabotage::SkipFinalDce {
        // Fault injection: leave the dead scalar remainder in place, which
        // the pipeline-idempotence oracle must flag (a clean recompile
        // removes what this compile left behind).
        0
    } else {
        guard::run_guarded(f, cfg.guard_policy(), "dce", None, &mut report.incidents, |f| {
            let n = dce::run(f);
            (n, n > 0)
        })?
        .unwrap_or(0)
    };
    // Final checkpoint: every committed transaction was verified above, so
    // this should never fire — but if it does, fall back to the scalar
    // original rather than emit a broken function.
    match anchor {
        Anchor::None => {
            debug_assert!(
                lslp_ir::verify_function(f).is_ok(),
                "vectorized function failed verification: {:?}",
                lslp_ir::verify_function(f)
            );
        }
        anchor @ (Anchor::Snapshot(_) | Anchor::Txn(_)) => {
            if let Err(e) = lslp_ir::verify_function(f) {
                match anchor {
                    Anchor::Snapshot(snapshot) => *f = *snapshot,
                    Anchor::Txn(mark) => f.rollback_txn(mark),
                    Anchor::None => unreachable!(),
                }
                let incident = Incident {
                    pass: "vectorize".into(),
                    seed: None,
                    kind: IncidentKind::VerifyError,
                    detail: format!("final checkpoint failed, scalar fallback taken: {e}"),
                };
                if cfg.guard == GuardMode::Strict {
                    return Err(GuardError(incident));
                }
                report = VectorizeReport {
                    incidents: {
                        let mut v = report.incidents;
                        v.push(incident);
                        v
                    },
                    elapsed: start.elapsed(),
                    ..VectorizeReport::default()
                };
                return Ok(report);
            }
            if let Anchor::Txn(mark) = anchor {
                f.commit_txn(mark);
            }
        }
    }
    report.elapsed = start.elapsed();
    Ok(report)
}

/// [`Sabotage::SwapShuffleMask`]: plant a lane-swapping shuffle
/// (`mask = [1, 0, 2, 3, ...]`) in front of the first vector store not
/// already sabotaged. The result still verifies (the shuffle is
/// type-correct) but silently permutes the first two stored lanes —
/// exactly the class of wrong-code bug the execution oracles exist to
/// catch. Test-only.
pub(crate) fn sabotage_swap_mask(f: &mut Function) {
    let already_swapped = |f: &Function, val: ValueId| {
        f.inst(val).is_some_and(|i| {
            i.op == Opcode::ShuffleVector
                && matches!(&i.attr, InstAttr::Mask(m) if m.len() >= 2 && m[0] == 1 && m[1] == 0)
        })
    };
    let target = f.iter_body().find_map(|(pos, v, inst)| {
        if inst.op != Opcode::Store {
            return None;
        }
        let val = inst.args[0];
        match f.ty(val) {
            Type::Vector(elem, lanes) if lanes >= 2 && !already_swapped(f, val) => {
                Some((pos, v, val, elem, lanes))
            }
            _ => None,
        }
    });
    if let Some((pos, store, val, elem, lanes)) = target {
        let mut mask: Vec<u32> = (0..lanes).collect();
        mask.swap(0, 1);
        let ty = Type::Vector(elem, lanes);
        let shuf = f.insert(pos, Opcode::ShuffleVector, ty, vec![val, val], InstAttr::Mask(mask));
        if let Some(inst) = f.inst_mut(store) {
            inst.args[0] = shuf;
        }
    }
}

/// Run the pass over every function of a module; returns per-function
/// reports in definition order.
pub fn vectorize_module(
    m: &mut Module,
    cfg: &VectorizerConfig,
    tm: &CostModel,
) -> Vec<VectorizeReport> {
    m.functions.iter_mut().map(|f| vectorize_function(f, cfg, tm)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lslp_ir::{FunctionBuilder, Type};

    fn axpy_kernel(lanes: i64) -> Function {
        let mut f = Function::new("axpy");
        let pa = f.add_param("A", Type::PTR);
        let pb = f.add_param("B", Type::PTR);
        let pc = f.add_param("C", Type::PTR);
        let i = f.add_param("i", Type::I64);
        for o in 0..lanes {
            let mut b = FunctionBuilder::new(&mut f);
            let off = b.func().const_i64(o);
            let idx = b.add(i, off);
            let gb = b.gep(pb, idx, 8);
            let lb = b.load(Type::I64, gb);
            let gc = b.gep(pc, idx, 8);
            let lc = b.load(Type::I64, gc);
            let s = b.add(lb, lc);
            let ga = b.gep(pa, idx, 8);
            b.store(s, ga);
        }
        f
    }

    #[test]
    fn o3_does_nothing() {
        let mut f = axpy_kernel(2);
        let before = lslp_ir::print_function(&f);
        let report = vectorize_function(&mut f, &VectorizerConfig::o3(), &CostModel::default());
        assert_eq!(report.trees_vectorized, 0);
        assert!(report.attempts.is_empty());
        assert_eq!(lslp_ir::print_function(&f), before);
    }

    #[test]
    fn two_lane_kernel_vectorizes() {
        let mut f = axpy_kernel(2);
        let report = vectorize_function(&mut f, &VectorizerConfig::slp(), &CostModel::default());
        assert_eq!(report.trees_vectorized, 1);
        assert_eq!(report.applied_cost, -4);
        assert!(report.dce_removed > 0);
        lslp_ir::verify_function(&f).unwrap();
    }

    #[test]
    fn four_lane_kernel_uses_vf4() {
        let mut f = axpy_kernel(4);
        let report = vectorize_function(&mut f, &VectorizerConfig::lslp(), &CostModel::default());
        assert_eq!(report.trees_vectorized, 1);
        let applied: Vec<_> = report.attempts.iter().filter(|a| a.vectorized).collect();
        assert_eq!(applied[0].vf, 4);
        let text = lslp_ir::print_function(&f);
        assert!(text.contains("<4 x i64>"), "{text}");
    }

    #[test]
    fn six_lanes_vectorize_as_four_plus_two() {
        let mut f = axpy_kernel(6);
        let report = vectorize_function(&mut f, &VectorizerConfig::lslp(), &CostModel::default());
        assert_eq!(report.trees_vectorized, 2);
        let vfs: Vec<usize> =
            report.attempts.iter().filter(|a| a.vectorized).map(|a| a.vf).collect();
        assert_eq!(vfs, vec![4, 2]);
    }

    #[test]
    fn max_vf_config_caps_lanes() {
        let mut f = axpy_kernel(4);
        let cfg = VectorizerConfig { max_vf: 2, ..VectorizerConfig::lslp() };
        let report = vectorize_function(&mut f, &cfg, &CostModel::default());
        assert_eq!(report.trees_vectorized, 2);
        assert!(report.attempts.iter().all(|a| a.vf <= 2));
    }

    #[test]
    fn seed_descriptions_are_readable() {
        let mut f = axpy_kernel(2);
        let report = vectorize_function(&mut f, &VectorizerConfig::lslp(), &CostModel::default());
        assert_eq!(report.attempts[0].seed, "A[+0..+16)");
    }

    #[test]
    fn unprofitable_seed_is_reported_not_applied() {
        // Stores of two unrelated argument values: gathering costs as much
        // as the store saves, so the tree is not profitable.
        let mut f = Function::new("u");
        let pa = f.add_param("A", Type::PTR);
        let x = f.add_param("x", Type::I64);
        let y = f.add_param("y", Type::I64);
        let i = f.add_param("i", Type::I64);
        {
            let mut b = FunctionBuilder::new(&mut f);
            let g = b.gep(pa, i, 8);
            b.store(x, g);
        }
        {
            let mut b = FunctionBuilder::new(&mut f);
            let one = b.func().const_i64(1);
            let idx = b.add(i, one);
            let g = b.gep(pa, idx, 8);
            b.store(y, g);
        }
        let report = vectorize_function(&mut f, &VectorizerConfig::lslp(), &CostModel::default());
        assert_eq!(report.trees_vectorized, 0);
        assert_eq!(report.attempts.len(), 1);
        assert_eq!(report.attempts[0].cost, 1); // store −1 + gather +2
        let text = lslp_ir::print_function(&f);
        assert!(!text.contains('<'), "must stay scalar:\n{text}");
    }
}
