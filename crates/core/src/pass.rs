//! The vectorization pass driver (paper Figure 1).
//!
//! Finds seed store chains, builds the (L)SLP graph per seed group,
//! evaluates the cost, generates vector code when profitable, removes the
//! group and repeats until no seed vectorizes, then sweeps dead scalars.

use std::collections::{BTreeMap, HashSet};
use std::time::{Duration, Instant};

use lslp_analysis::{AddrInfo, AnalysisManager};
use lslp_ir::{Function, InstAttr, Module, Opcode, Type, ValueId};
use lslp_target::CostModel;

use crate::codegen::{self, CodegenStats};
use crate::config::{Sabotage, VectorizerConfig};
use crate::cost::graph_cost;
use crate::dce;
use crate::graph::{GraphBuilder, NodeKind};
use crate::guard::{self, GuardError, GuardMode, Incident, IncidentKind};
use crate::seeds::collect_store_chains;

/// One attempted seed group.
#[derive(Clone, Debug)]
pub struct Attempt {
    /// Human-readable seed description, e.g. `A[+0..+2)`.
    pub seed: String,
    /// Vector factor (lanes).
    pub vf: usize,
    /// Total tree cost (`VectorCost − ScalarCost`; negative is profitable).
    pub cost: i64,
    /// Number of nodes in the graph.
    pub nodes: usize,
    /// Number of gather (non-vectorizable) nodes.
    pub gathers: usize,
    /// Whether vector code was generated.
    pub vectorized: bool,
}

/// The result of running the pass over one function.
#[derive(Clone, Debug, Default)]
pub struct VectorizeReport {
    /// Every seed group attempted, in order.
    pub attempts: Vec<Attempt>,
    /// Sum of the costs of all *applied* graphs — the "static cost" the
    /// paper plots in Figures 10–11 (lower/more negative is better).
    pub applied_cost: i64,
    /// Number of seed groups vectorized.
    pub trees_vectorized: usize,
    /// Aggregated code generation statistics.
    pub stats: CodegenStats,
    /// Instructions removed by the final DCE sweep.
    pub dce_removed: usize,
    /// Histogram of gather reasons over every costed attempt (keyed by the
    /// [`crate::GatherReason`] display name) — a cheap behavioral
    /// fingerprint of *why* bundles failed to vectorize, used by the
    /// coverage-guided fuzzer as a feedback signal.
    pub gather_reasons: BTreeMap<String, u64>,
    /// Reduction-seed attempts (only when
    /// [`VectorizerConfig::enable_reductions`] is set).
    pub reductions: Vec<crate::reduce::ReductionAttempt>,
    /// Guard incidents recorded while the pass ran: rolled-back seed
    /// attempts, skipped unsupported seeds, exhausted fuel budgets (empty
    /// under [`GuardMode::Off`], and in strict mode the first incident
    /// aborts the pass instead).
    pub incidents: Vec<Incident>,
    /// Wall-clock time spent in the pass (compilation-time metric of
    /// Figure 14).
    pub elapsed: Duration,
}

impl VectorizeReport {
    fn absorb(&mut self, s: &CodegenStats) {
        self.stats.vector_insts += s.vector_insts;
        self.stats.extracts += s.extracts;
        self.stats.stores_deleted += s.stores_deleted;
    }
}

fn seed_desc(f: &Function, addr: &AddrInfo, bundle: &[ValueId]) -> String {
    let Some(loc) = addr.loc(bundle[0]) else {
        return format!("{} stores", bundle.len());
    };
    let base = f
        .value_name(loc.addr.base)
        .map(str::to_owned)
        .unwrap_or_else(|| format!("%{}", loc.addr.base.raw()));
    let lo = loc.addr.offset.konst;
    let hi = lo + (bundle.len() as i64) * loc.bytes as i64;
    format!("{base}[+{lo}..+{hi})")
}

/// Largest power of two ≤ `n`.
fn pow2_floor(n: usize) -> usize {
    if n == 0 {
        0
    } else {
        1 << (usize::BITS - 1 - n.leading_zeros())
    }
}

/// Run the (L)SLP pass over one straight-line function.
///
/// ```
/// use lslp::{vectorize_function, VectorizerConfig};
/// use lslp_ir::{Function, FunctionBuilder, Type};
/// use lslp_target::CostModel;
///
/// // A[i+o] = B[i+o] + C[i+o] for o in 0..2
/// let mut f = Function::new("axpy");
/// let pa = f.add_param("A", Type::PTR);
/// let pb = f.add_param("B", Type::PTR);
/// let pc = f.add_param("C", Type::PTR);
/// let i = f.add_param("i", Type::I64);
/// for o in 0..2 {
///     let mut b = FunctionBuilder::new(&mut f);
///     let off = b.func().const_i64(o);
///     let idx = b.add(i, off);
///     let gb = b.gep(pb, idx, 8);
///     let lb = b.load(Type::I64, gb);
///     let gc = b.gep(pc, idx, 8);
///     let lc = b.load(Type::I64, gc);
///     let s = b.add(lb, lc);
///     let ga = b.gep(pa, idx, 8);
///     b.store(s, ga);
/// }
/// let report = vectorize_function(&mut f, &VectorizerConfig::lslp(), &CostModel::default());
/// assert_eq!(report.trees_vectorized, 1);
/// assert!(report.applied_cost < 0);
/// ```
pub fn vectorize_function(
    f: &mut Function,
    cfg: &VectorizerConfig,
    tm: &CostModel,
) -> VectorizeReport {
    try_vectorize_function(f, cfg, tm)
        .unwrap_or_else(|e| panic!("vectorizer aborted under the strict guard: {e}"))
}

/// [`vectorize_function`], surfacing [`GuardMode::Strict`] aborts as an
/// error instead of a panic. Under the other guard modes this never fails.
///
/// # Errors
///
/// In strict mode, returns the first guard incident (panic, verification
/// failure, or oracle mismatch) as a [`GuardError`]; the function is left
/// rolled back to its state before the failing transaction.
pub fn try_vectorize_function(
    f: &mut Function,
    cfg: &VectorizerConfig,
    tm: &CostModel,
) -> Result<VectorizeReport, GuardError> {
    try_vectorize_function_with(f, cfg, tm, &mut AnalysisManager::new())
}

/// Check the wall-clock compile budget; flips `fuel_spent` and records one
/// [`IncidentKind::FuelExhausted`] incident the first time it trips.
fn fuel_check(
    deadline: Option<Instant>,
    cfg: &VectorizerConfig,
    fuel_spent: &mut bool,
    incidents: &mut Vec<Incident>,
) -> Result<(), GuardError> {
    if *fuel_spent || deadline.is_none_or(|d| Instant::now() <= d) {
        return Ok(());
    }
    *fuel_spent = true;
    guard::record(
        cfg.guard,
        incidents,
        Incident {
            pass: "vectorize".into(),
            seed: None,
            kind: IncidentKind::FuelExhausted,
            detail: format!(
                "time budget of {}ms exhausted; remaining seeds skipped",
                cfg.time_budget_ms.unwrap_or(0)
            ),
        },
    )
}

/// [`try_vectorize_function`], pulling analyses from `am`'s epoch-keyed
/// cache: each restart of the seed loop re-queries the manager, which
/// recomputes only what a committed transformation invalidated (a
/// rolled-back attempt restores the function's epoch with it, so the cache
/// stays warm across failed attempts).
///
/// # Errors
///
/// See [`try_vectorize_function`].
pub fn try_vectorize_function_with(
    f: &mut Function,
    cfg: &VectorizerConfig,
    tm: &CostModel,
    am: &mut AnalysisManager,
) -> Result<VectorizeReport, GuardError> {
    let start = Instant::now();
    let deadline = cfg.time_budget_ms.map(|ms| start + Duration::from_millis(ms));
    let mut report = VectorizeReport::default();
    if !cfg.enabled {
        report.elapsed = start.elapsed();
        return Ok(report);
    }
    // Scalar fallback anchor: if the function is somehow left broken at
    // the end despite the per-attempt checks, restore the scalar original.
    // Under the delta strategy this is a whole-pass transaction (the
    // per-seed transactions nest inside it); under the snapshot and
    // differential strategies it stays a full clone.
    enum Anchor {
        None,
        Snapshot(Box<Function>),
        Txn(lslp_ir::TxnMark),
    }
    let anchor = if cfg.guard == GuardMode::Off {
        Anchor::None
    } else if cfg.rollback == crate::guard::RollbackStrategy::Delta {
        Anchor::Txn(f.begin_txn())
    } else {
        Anchor::Snapshot(Box::new(f.clone()))
    };

    let mut tried: HashSet<Vec<ValueId>> = HashSet::new();
    let mut fuel_spent = false;
    'restart: loop {
        let addr = am.addr_info(f);
        let chains = collect_store_chains(f, &addr);
        let positions = am.positions(f);
        let use_map = am.use_map(f);
        for chain in &chains {
            let Some(elem) = f.ty(f.args_of(chain.stores[0])[0]).elem() else {
                // A store whose stored value has no element type (void):
                // nothing we could widen. Skip the chain and record it.
                let bundle = chain.stores.clone();
                if tried.insert(bundle.clone()) {
                    guard::record(
                        cfg.guard,
                        &mut report.incidents,
                        Incident {
                            pass: "vectorize".into(),
                            seed: Some(seed_desc(f, &addr, &bundle)),
                            kind: IncidentKind::UnsupportedSeed,
                            detail: "stored value has no element type".into(),
                        },
                    )?;
                }
                continue;
            };
            let max_vf = (tm.max_vf(elem) as usize).min(cfg.max_vf as usize);
            let mut i = 0;
            while i < chain.len() {
                fuel_check(deadline, cfg, &mut fuel_spent, &mut report.incidents)?;
                if fuel_spent {
                    break 'restart;
                }
                let remaining = chain.len() - i;
                // VF exploration: instead of committing to the widest
                // legal factor, cost a candidate graph at *every* legal
                // power-of-two VF (widest first, so the report reads
                // top-down) and commit the cheapest per-lane profitable
                // one — ties go to the wider factor, which keeps the
                // default target's widest-first decisions intact.
                let mut candidates: Vec<(usize, Vec<ValueId>, i64, usize)> = Vec::new();
                let mut vf = pow2_floor(remaining.min(max_vf));
                while vf >= 2 {
                    // The deadline must also bound the exploration: a wide
                    // chain costed at every factor would otherwise overrun
                    // the budget inside this loop.
                    fuel_check(deadline, cfg, &mut fuel_spent, &mut report.incidents)?;
                    if fuel_spent {
                        break 'restart;
                    }
                    let bundle = chain.stores[i..i + vf].to_vec();
                    if tried.insert(bundle.clone()) {
                        // Rendered lazily: on evaluation inside the attempt
                        // (for the report), on rollback by the guard (for
                        // the incident) — never both, never for free.
                        let desc = |f: &Function| seed_desc(f, &addr, &bundle);
                        let eval = guard::run_guarded(
                            f,
                            cfg.guard_policy(),
                            "vectorize",
                            Some(&desc as guard::SeedDesc),
                            &mut report.incidents,
                            |f| {
                                let mut graph =
                                    GraphBuilder::new(f, cfg, tm, &addr, &positions, &use_map)
                                        .build(&bundle);
                                if cfg.throttle {
                                    crate::throttle::throttle(f, &mut graph, tm, &use_map);
                                }
                                let cost = graph_cost(f, &graph, tm, &use_map);
                                let gathers =
                                    graph.nodes().iter().filter(|n| !n.is_vectorizable()).count();
                                let reasons: Vec<String> = graph
                                    .nodes()
                                    .iter()
                                    .filter_map(|n| match &n.kind {
                                        NodeKind::Gather { reason } => Some(reason.to_string()),
                                        _ => None,
                                    })
                                    .collect();
                                let attempt = Attempt {
                                    seed: seed_desc(f, &addr, &bundle),
                                    vf,
                                    cost: cost.total,
                                    nodes: graph.nodes().len(),
                                    gathers,
                                    vectorized: false,
                                };
                                let truncated = graph.budget_exhausted();
                                // Costing only: nothing is mutated here.
                                ((attempt, truncated, reasons), false)
                            },
                        )?;
                        if let Some((attempt, truncated, reasons)) = eval {
                            for r in reasons {
                                *report.gather_reasons.entry(r).or_insert(0) += 1;
                            }
                            if truncated {
                                guard::record(
                                    cfg.guard,
                                    &mut report.incidents,
                                    Incident {
                                        pass: "vectorize".into(),
                                        seed: Some(attempt.seed.clone()),
                                        kind: IncidentKind::FuelExhausted,
                                        detail: format!(
                                            "graph truncated at {} nodes",
                                            cfg.max_graph_nodes
                                        ),
                                    },
                                )?;
                            }
                            let cost = attempt.cost;
                            let idx = report.attempts.len();
                            report.attempts.push(attempt);
                            if cost < cfg.cost_threshold {
                                candidates.push((vf, bundle, cost, idx));
                            }
                        }
                        // A rolled-back evaluation: the seed stays in
                        // `tried`, so the pass moves on to narrower VFs.
                    }
                    vf /= 2;
                }
                // Cheapest per-lane cost first (cross-multiplied to stay
                // in integers); ties prefer the wider factor.
                candidates.sort_by(|a, b| {
                    (a.2 * b.0 as i64).cmp(&(b.2 * a.0 as i64)).then(b.0.cmp(&a.0))
                });
                if cfg.sabotage == Sabotage::CommitWorstVf {
                    // Fault injection: prefer the most expensive per-lane
                    // candidate, which the cross-VF oracle must flag.
                    candidates.reverse();
                }
                for (_, bundle, cost, attempt_idx) in &candidates {
                    let desc = |f: &Function| seed_desc(f, &addr, bundle);
                    let committed = guard::run_guarded(
                        f,
                        cfg.guard_policy(),
                        "vectorize",
                        Some(&desc as guard::SeedDesc),
                        &mut report.incidents,
                        |f| {
                            // Rebuild the winning graph on the unchanged
                            // function state (builds are deterministic).
                            let mut graph =
                                GraphBuilder::new(f, cfg, tm, &addr, &positions, &use_map)
                                    .build(bundle);
                            if cfg.throttle {
                                crate::throttle::throttle(f, &mut graph, tm, &use_map);
                            }
                            let stats = codegen::generate_with(f, &graph, tm, am);
                            if cfg.sabotage == Sabotage::SwapShuffleMask {
                                sabotage_swap_mask(f);
                            }
                            (stats, true)
                        },
                    )?;
                    if let Some(stats) = committed {
                        report.attempts[*attempt_idx].vectorized = true;
                        report.absorb(&stats);
                        report.applied_cost += cost;
                        report.trees_vectorized += 1;
                        continue 'restart;
                    }
                    // Rolled back: fall through to the next-best VF.
                }
                i += 1;
            }
        }
        break;
    }
    if cfg.enable_reductions {
        let reds = guard::run_guarded(
            f,
            cfg.guard_policy(),
            "reductions",
            None,
            &mut report.incidents,
            |f| {
                let reds = crate::reduce::run_with(f, cfg, tm, am);
                let mutated = reds.iter().any(|r| r.applied);
                (reds, mutated)
            },
        )?;
        report.reductions = reds.unwrap_or_default();
        for r in &report.reductions {
            if r.applied {
                report.applied_cost += r.cost;
                report.trees_vectorized += 1;
            }
        }
    }
    report.dce_removed = if cfg.sabotage == Sabotage::SkipFinalDce {
        // Fault injection: leave the dead scalar remainder in place, which
        // the pipeline-idempotence oracle must flag (a clean recompile
        // removes what this compile left behind).
        0
    } else {
        guard::run_guarded(f, cfg.guard_policy(), "dce", None, &mut report.incidents, |f| {
            let n = dce::run(f);
            (n, n > 0)
        })?
        .unwrap_or(0)
    };
    // Final checkpoint: every committed transaction was verified above, so
    // this should never fire — but if it does, fall back to the scalar
    // original rather than emit a broken function.
    match anchor {
        Anchor::None => {
            debug_assert!(
                lslp_ir::verify_function(f).is_ok(),
                "vectorized function failed verification: {:?}",
                lslp_ir::verify_function(f)
            );
        }
        anchor @ (Anchor::Snapshot(_) | Anchor::Txn(_)) => {
            if let Err(e) = lslp_ir::verify_function(f) {
                match anchor {
                    Anchor::Snapshot(snapshot) => *f = *snapshot,
                    Anchor::Txn(mark) => f.rollback_txn(mark),
                    Anchor::None => unreachable!(),
                }
                let incident = Incident {
                    pass: "vectorize".into(),
                    seed: None,
                    kind: IncidentKind::VerifyError,
                    detail: format!("final checkpoint failed, scalar fallback taken: {e}"),
                };
                if cfg.guard == GuardMode::Strict {
                    return Err(GuardError(incident));
                }
                report = VectorizeReport {
                    incidents: {
                        let mut v = report.incidents;
                        v.push(incident);
                        v
                    },
                    elapsed: start.elapsed(),
                    ..VectorizeReport::default()
                };
                return Ok(report);
            }
            if let Anchor::Txn(mark) = anchor {
                f.commit_txn(mark);
            }
        }
    }
    report.elapsed = start.elapsed();
    Ok(report)
}

/// [`Sabotage::SwapShuffleMask`]: plant a lane-swapping shuffle
/// (`mask = [1, 0, 2, 3, ...]`) in front of the first vector store not
/// already sabotaged. The result still verifies (the shuffle is
/// type-correct) but silently permutes the first two stored lanes —
/// exactly the class of wrong-code bug the execution oracles exist to
/// catch. Test-only.
fn sabotage_swap_mask(f: &mut Function) {
    let already_swapped = |f: &Function, val: ValueId| {
        f.inst(val).is_some_and(|i| {
            i.op == Opcode::ShuffleVector
                && matches!(&i.attr, InstAttr::Mask(m) if m.len() >= 2 && m[0] == 1 && m[1] == 0)
        })
    };
    let target = f.iter_body().find_map(|(pos, v, inst)| {
        if inst.op != Opcode::Store {
            return None;
        }
        let val = inst.args[0];
        match f.ty(val) {
            Type::Vector(elem, lanes) if lanes >= 2 && !already_swapped(f, val) => {
                Some((pos, v, val, elem, lanes))
            }
            _ => None,
        }
    });
    if let Some((pos, store, val, elem, lanes)) = target {
        let mut mask: Vec<u32> = (0..lanes).collect();
        mask.swap(0, 1);
        let ty = Type::Vector(elem, lanes);
        let shuf = f.insert(pos, Opcode::ShuffleVector, ty, vec![val, val], InstAttr::Mask(mask));
        if let Some(inst) = f.inst_mut(store) {
            inst.args[0] = shuf;
        }
    }
}

/// Run the pass over every function of a module; returns per-function
/// reports in definition order.
pub fn vectorize_module(
    m: &mut Module,
    cfg: &VectorizerConfig,
    tm: &CostModel,
) -> Vec<VectorizeReport> {
    m.functions.iter_mut().map(|f| vectorize_function(f, cfg, tm)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lslp_ir::{FunctionBuilder, Type};

    fn axpy_kernel(lanes: i64) -> Function {
        let mut f = Function::new("axpy");
        let pa = f.add_param("A", Type::PTR);
        let pb = f.add_param("B", Type::PTR);
        let pc = f.add_param("C", Type::PTR);
        let i = f.add_param("i", Type::I64);
        for o in 0..lanes {
            let mut b = FunctionBuilder::new(&mut f);
            let off = b.func().const_i64(o);
            let idx = b.add(i, off);
            let gb = b.gep(pb, idx, 8);
            let lb = b.load(Type::I64, gb);
            let gc = b.gep(pc, idx, 8);
            let lc = b.load(Type::I64, gc);
            let s = b.add(lb, lc);
            let ga = b.gep(pa, idx, 8);
            b.store(s, ga);
        }
        f
    }

    #[test]
    fn o3_does_nothing() {
        let mut f = axpy_kernel(2);
        let before = lslp_ir::print_function(&f);
        let report = vectorize_function(&mut f, &VectorizerConfig::o3(), &CostModel::default());
        assert_eq!(report.trees_vectorized, 0);
        assert!(report.attempts.is_empty());
        assert_eq!(lslp_ir::print_function(&f), before);
    }

    #[test]
    fn two_lane_kernel_vectorizes() {
        let mut f = axpy_kernel(2);
        let report = vectorize_function(&mut f, &VectorizerConfig::slp(), &CostModel::default());
        assert_eq!(report.trees_vectorized, 1);
        assert_eq!(report.applied_cost, -4);
        assert!(report.dce_removed > 0);
        lslp_ir::verify_function(&f).unwrap();
    }

    #[test]
    fn four_lane_kernel_uses_vf4() {
        let mut f = axpy_kernel(4);
        let report = vectorize_function(&mut f, &VectorizerConfig::lslp(), &CostModel::default());
        assert_eq!(report.trees_vectorized, 1);
        let applied: Vec<_> = report.attempts.iter().filter(|a| a.vectorized).collect();
        assert_eq!(applied[0].vf, 4);
        let text = lslp_ir::print_function(&f);
        assert!(text.contains("<4 x i64>"), "{text}");
    }

    #[test]
    fn six_lanes_vectorize_as_four_plus_two() {
        let mut f = axpy_kernel(6);
        let report = vectorize_function(&mut f, &VectorizerConfig::lslp(), &CostModel::default());
        assert_eq!(report.trees_vectorized, 2);
        let vfs: Vec<usize> =
            report.attempts.iter().filter(|a| a.vectorized).map(|a| a.vf).collect();
        assert_eq!(vfs, vec![4, 2]);
    }

    #[test]
    fn max_vf_config_caps_lanes() {
        let mut f = axpy_kernel(4);
        let cfg = VectorizerConfig { max_vf: 2, ..VectorizerConfig::lslp() };
        let report = vectorize_function(&mut f, &cfg, &CostModel::default());
        assert_eq!(report.trees_vectorized, 2);
        assert!(report.attempts.iter().all(|a| a.vf <= 2));
    }

    #[test]
    fn seed_descriptions_are_readable() {
        let mut f = axpy_kernel(2);
        let report = vectorize_function(&mut f, &VectorizerConfig::lslp(), &CostModel::default());
        assert_eq!(report.attempts[0].seed, "A[+0..+16)");
    }

    #[test]
    fn pow2_floor_values() {
        assert_eq!(pow2_floor(0), 0);
        assert_eq!(pow2_floor(1), 1);
        assert_eq!(pow2_floor(2), 2);
        assert_eq!(pow2_floor(3), 2);
        assert_eq!(pow2_floor(4), 4);
        assert_eq!(pow2_floor(7), 4);
        assert_eq!(pow2_floor(8), 8);
    }

    #[test]
    fn unprofitable_seed_is_reported_not_applied() {
        // Stores of two unrelated argument values: gathering costs as much
        // as the store saves, so the tree is not profitable.
        let mut f = Function::new("u");
        let pa = f.add_param("A", Type::PTR);
        let x = f.add_param("x", Type::I64);
        let y = f.add_param("y", Type::I64);
        let i = f.add_param("i", Type::I64);
        {
            let mut b = FunctionBuilder::new(&mut f);
            let g = b.gep(pa, i, 8);
            b.store(x, g);
        }
        {
            let mut b = FunctionBuilder::new(&mut f);
            let one = b.func().const_i64(1);
            let idx = b.add(i, one);
            let g = b.gep(pa, idx, 8);
            b.store(y, g);
        }
        let report = vectorize_function(&mut f, &VectorizerConfig::lslp(), &CostModel::default());
        assert_eq!(report.trees_vectorized, 0);
        assert_eq!(report.attempts.len(), 1);
        assert_eq!(report.attempts[0].cost, 1); // store −1 + gather +2
        let text = lslp_ir::print_function(&f);
        assert!(!text.contains('<'), "must stay scalar:\n{text}");
    }
}
