//! Quickstart: compile a small SLC kernel, vectorize it with SLP and LSLP,
//! and compare what each algorithm achieves.
//!
//! Run with: `cargo run -p lslp --example quickstart`

use lslp::{vectorize_function, VectorizerConfig};
use lslp_interp::{measure_cycles, Memory, Value};
use lslp_target::CostModel;

fn main() {
    // Figure 2 of the paper: the load-address-mismatch example. The two
    // lanes shift B and C in opposite orders, so vanilla SLP cannot pair
    // the loads — LSLP's look-ahead can.
    let src = "kernel fig2(i64* A, i64* B, i64* C, i64 i) {
                   A[i+0] = (B[i+0] << 1) & (C[i+0] << 2);
                   A[i+1] = (C[i+1] << 3) & (B[i+1] << 4);
               }";
    let module = lslp_frontend::compile(src).expect("SLC compiles");
    let scalar = module.functions.into_iter().next().unwrap();
    let tm = CostModel::skylake_like();

    println!("=== scalar IR ===\n{}", lslp_ir::print_function(&scalar));

    for name in ["SLP-NR", "SLP", "LSLP"] {
        let cfg = VectorizerConfig::preset(name).unwrap();
        let mut f = scalar.clone();
        let report = vectorize_function(&mut f, &cfg, &tm);
        println!("=== {name} ===");
        for a in &report.attempts {
            println!(
                "  seed {} (VF={}): cost {} -> {}",
                a.seed,
                a.vf,
                a.cost,
                if a.vectorized { "vectorized" } else { "kept scalar" }
            );
        }
        // Execute both versions and compare simulated cycles.
        let mut mem = Memory::new();
        mem.alloc_i64("A", &[0; 16]);
        mem.alloc_i64("B", &[3, 5, 7, 11, 13, 17, 19, 23]);
        mem.alloc_i64("C", &[2, 4, 6, 8, 10, 12, 14, 16]);
        let args = vec![
            mem.ptr("A").unwrap(),
            mem.ptr("B").unwrap(),
            mem.ptr("C").unwrap(),
            Value::Int(0),
        ];
        let base = {
            let mut m2 = Memory::new();
            m2.alloc_i64("A", &[0; 16]);
            m2.alloc_i64("B", &[3, 5, 7, 11, 13, 17, 19, 23]);
            m2.alloc_i64("C", &[2, 4, 6, 8, 10, 12, 14, 16]);
            let args2 = vec![
                m2.ptr("A").unwrap(),
                m2.ptr("B").unwrap(),
                m2.ptr("C").unwrap(),
                Value::Int(0),
            ];
            measure_cycles(&scalar, &args2, &mut m2, &tm).unwrap().cycles
        };
        let perf = measure_cycles(&f, &args, &mut mem, &tm).unwrap();
        println!(
            "  simulated cycles: {} (scalar {}), speedup {:.2}x",
            perf.cycles,
            base,
            base as f64 / perf.cycles as f64
        );
        println!("  A = [{}, {}]", mem.read_i64("A", 0).unwrap(), mem.read_i64("A", 1).unwrap());
        if name == "LSLP" {
            println!("\n=== LSLP output IR ===\n{}", lslp_ir::print_function(&f));
        }
    }
}
