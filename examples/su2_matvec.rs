//! Domain example: the 433.milc-shaped SU(2) matrix × vector kernel.
//!
//! Demonstrates the full workflow on a real workload: compile, vectorize
//! under every paper configuration, validate results against the scalar
//! run, and report simulated speedups.
//!
//! Run with: `cargo run -p lslp --example su2_matvec`

use lslp::{vectorize_function, VectorizerConfig};
use lslp_target::CostModel;

fn main() {
    for kernel in [
        lslp_kernels::spec_kernels()
            .into_iter()
            .find(|k| k.name == "mult_su2")
            .expect("suite contains mult_su2"),
        lslp_kernels::extended_kernels()
            .into_iter()
            .find(|k| k.name == "su3_row")
            .expect("extended suite contains su3_row"),
    ] {
        demo(&kernel);
        println!();
    }
    println!(
        "Note: mult_su2 staying scalar is faithful — the paper singles this \n\
         kernel out as a cost-model trouble spot; the SU(3) row kernel shows \n\
         the profitable case."
    );
}

fn demo(kernel: &lslp_kernels::Kernel) {
    println!(
        "kernel {} (from {} {}):\n{}\n",
        kernel.name, kernel.benchmark, kernel.file_line, kernel.src
    );

    let tm = CostModel::skylake_like();
    let iters = kernel.default_iters;

    // Scalar baseline.
    let scalar = kernel.compile();
    let mut base_mem = kernel.setup_memory(&scalar, iters);
    let base_cycles = kernel.run(&scalar, &mut base_mem, iters, &tm).expect("scalar run");
    println!("O3 (scalar): {base_cycles} simulated cycles over {iters} sites");

    for name in ["SLP-NR", "SLP", "LSLP"] {
        let cfg = VectorizerConfig::preset(name).unwrap();
        let mut f = kernel.compile();
        let report = vectorize_function(&mut f, &cfg, &tm);
        let mut mem = kernel.setup_memory(&f, iters);
        let cycles = kernel.run(&f, &mut mem, iters, &tm).expect("vectorized run");

        // Validate: the D array must match the scalar result exactly up to
        // fast-math reassociation.
        let mut max_rel = 0.0f64;
        let out_arr = base_mem.buffer_names()[0].to_string();
        let d_len = kernel.array_len(iters);
        for idx in 0..d_len {
            let x = base_mem.read_f64(&out_arr, idx).unwrap();
            let y = mem.read_f64(&out_arr, idx).unwrap();
            let rel = (x - y).abs() / x.abs().max(1.0);
            max_rel = max_rel.max(rel);
        }
        assert!(max_rel < 1e-9, "{name}: results diverged by {max_rel}");

        println!(
            "{name:7}: static cost {:4}, {} tree(s), {cycles} cycles, speedup {:.3}x, max rel err {max_rel:.2e}",
            report.applied_cost,
            report.trees_vectorized,
            base_cycles as f64 / cycles as f64,
        );
    }
}
