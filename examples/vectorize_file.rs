//! A tiny `opt`-style driver: read an SLC file (or `-` for stdin), run the
//! configured vectorizer over every kernel, and print the resulting IR.
//!
//! Usage: `cargo run -p lslp --example vectorize_file -- <file.slc> [CONFIG]`
//! where CONFIG is one of O3, SLP-NR, SLP, LSLP, LSLP-LA{n}, LSLP-Multi{n}
//! (default LSLP).

use std::io::Read as _;
use std::process::ExitCode;

use lslp::{vectorize_module, VectorizerConfig};
use lslp_target::CostModel;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first() else {
        eprintln!(
            "usage: vectorize_file <file.slc|-> [O3|SLP-NR|SLP|LSLP|LSLP-LA<n>|LSLP-Multi<n>]"
        );
        return ExitCode::from(2);
    };
    let cfg_name = args.get(1).map(String::as_str).unwrap_or("LSLP");
    let Some(cfg) = VectorizerConfig::preset(cfg_name) else {
        eprintln!("unknown configuration `{cfg_name}`");
        return ExitCode::from(2);
    };

    let src = if path == "-" {
        let mut s = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut s) {
            eprintln!("cannot read stdin: {e}");
            return ExitCode::FAILURE;
        }
        s
    } else {
        match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let mut module = match lslp_frontend::compile(&src) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let reports = vectorize_module(&mut module, &cfg, &CostModel::skylake_like());
    for (f, report) in module.functions.iter().zip(&reports) {
        eprintln!(
            "; @{}: {} seed group(s) tried, {} vectorized, applied cost {}, pass time {:?}",
            f.name(),
            report.attempts.len(),
            report.trees_vectorized,
            report.applied_cost,
            report.elapsed
        );
    }
    print!("{}", lslp_ir::print_module(&module));
    ExitCode::SUCCESS
}
