//! Inspect the SLP graphs that SLP and LSLP build for the motivating
//! examples — the node-by-node view of Figures 2(c/d), 3(c/d) and 4(c/d).
//!
//! Run with: `cargo run -p lslp --example explore_graph [kernel-name]`

use std::collections::HashMap;

use lslp::{graph_cost, GraphBuilder, VectorizerConfig};
use lslp_analysis::AddrInfo;
use lslp_ir::{Opcode, ValueId};
use lslp_target::CostModel;

fn main() {
    let filter = std::env::args().nth(1);
    let tm = CostModel::skylake_like();
    for k in lslp_kernels::motivation_kernels() {
        if filter.as_deref().is_some_and(|f| f != k.name) {
            continue;
        }
        println!("################ {} ({} / {})", k.name, k.benchmark, k.file_line);
        let f = k.compile();
        println!("--- scalar IR ---\n{}", lslp_ir::print_function(&f));
        for cfg_name in ["SLP", "LSLP"] {
            let cfg = VectorizerConfig::preset(cfg_name).unwrap();
            let addr = AddrInfo::analyze(&f);
            let positions: HashMap<ValueId, usize> = f.position_map();
            let use_map = f.use_map();
            // Seed with the function's store chain, as the pass would.
            let seeds: Vec<ValueId> = f
                .iter_body()
                .filter(|(_, _, i)| i.op == Opcode::Store)
                .map(|(_, id, _)| id)
                .collect();
            let graph = GraphBuilder::new(&f, &cfg, &tm, &addr, &positions, &use_map).build(&seeds);
            let cost = graph_cost(&f, &graph, &tm, &use_map);
            println!("--- {cfg_name} graph ---");
            print!("{}", graph.dump(&f));
            for (id, c) in cost.per_node.iter().enumerate() {
                println!("  n{id}: cost {c:+}");
            }
            println!(
                "  extract cost {:+}, TOTAL {} -> {}",
                cost.extract_cost,
                cost.total,
                if cost.total < 0 { "VECTORIZE" } else { "keep scalar" }
            );
        }
        println!();
    }
}
