//! Offline stand-in for the subset of `criterion` used by this workspace.
//!
//! The container build has no access to crates.io, so the workspace
//! vendors a minimal benchmark harness with the same surface the benches
//! use: `criterion_group!`/`criterion_main!`, `Criterion` with the
//! builder knobs the benches set, `benchmark_group`,
//! `bench_function`/`bench_with_input` with `BenchmarkId`, and
//! `Bencher::{iter, iter_batched}`. It runs each routine a fixed small
//! number of timed iterations and prints a median per-iteration time —
//! enough to keep `cargo bench` compiling and producing signal, without
//! criterion's statistics machinery.

use std::time::{Duration, Instant};

/// Top-level benchmark driver (subset of criterion's type).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Accepted for API compatibility; the stand-in has no warm-up phase.
    pub fn warm_up_time(self, _d: Duration) -> Criterion {
        self
    }

    /// Accepted for API compatibility; the stand-in times a fixed number
    /// of samples rather than a wall-clock window.
    pub fn measurement_time(self, _d: Duration) -> Criterion {
        self
    }

    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }

    /// Run one benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, f);
        self
    }
}

/// A named group of benchmarks (subset of criterion's type).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility (see [`Criterion::sample_size`]).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.0), self.criterion.sample_size, f);
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.0), self.criterion.sample_size, |b| f(b, input));
        self
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark's display id.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` id, like criterion's.
    pub fn new(function: impl Into<String>, parameter: impl core::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    /// Id from a bare parameter.
    pub fn from_parameter(parameter: impl core::fmt::Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

/// How `iter_batched` sizes its batches; the stand-in runs one routine
/// call per setup regardless.
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Passed to each benchmark closure; runs and times the routine.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            self.total += start.elapsed();
            self.iters += 1;
            core::hint::black_box(&out);
        }
    }

    /// Time `routine` on fresh inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.total += start.elapsed();
            self.iters += 1;
            core::hint::black_box(&out);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let mut b = Bencher { samples, total: Duration::ZERO, iters: 0 };
    f(&mut b);
    let per_iter = if b.iters > 0 { b.total / b.iters as u32 } else { Duration::ZERO };
    println!("bench {id:<48} {per_iter:>12?}/iter ({} iters)", b.iters);
}

/// Re-export point used by generated `criterion_group!` code.
pub fn __run_group(name: &str, config: Criterion, benches: &mut [&mut dyn FnMut(&mut Criterion)]) {
    println!("group {name}");
    let mut c = config;
    for bench in benches {
        bench(&mut c);
    }
}

/// Defines a benchmark group (both the `name/config/targets` struct form
/// and the positional form).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $crate::__run_group(
                stringify!($name),
                $config,
                &mut [$(&mut |c: &mut $crate::Criterion| $target(c)),+],
            );
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines `main` for a bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Opaque value barrier (re-exported like criterion's).
pub fn black_box<T>(x: T) -> T {
    core::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_counts_iters() {
        let mut c = Criterion::default().sample_size(5);
        let mut group = c.benchmark_group("g");
        let mut count = 0u64;
        group.bench_with_input(BenchmarkId::new("f", 2), &3u64, |b, &x| {
            b.iter(|| {
                count += x;
            })
        });
        group.finish();
        assert_eq!(count, 15);
    }

    #[test]
    fn iter_batched_uses_fresh_inputs() {
        let mut c = Criterion::default().sample_size(4);
        let mut made = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    made += 1;
                    vec![1u64; 8]
                },
                |v| v.into_iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(made, 4);
    }
}
