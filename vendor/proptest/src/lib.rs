//! Offline stand-in for the subset of `proptest` used by this workspace.
//!
//! The container build cannot reach crates.io, so the workspace vendors a
//! small, dependency-free property-testing harness with the same surface
//! the test-suite uses: the [`proptest!`] macro, `ProptestConfig { cases }`,
//! range/`any`/`select`/string-pattern strategies, and the
//! `prop_assert*`/`prop_assume!` macros. Sampling is plain seeded random
//! draws; there is no shrinking (failures report the sampled inputs
//! instead, which the deterministic generators make reproducible).

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

/// Runner configuration (subset of proptest's type of the same name).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
    /// Accepted for API compatibility; this stand-in does not shrink.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64, max_shrink_iters: 1024 }
    }
}

/// Why a sampled case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// A `prop_assert*!` failed.
    Fail(String),
}

/// Drives the sampled cases of one property (used by the [`proptest!`]
/// expansion; not part of the public proptest API surface).
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// A deterministic runner: the property name seeds the RNG, so every
    /// run samples the same cases.
    pub fn new(name: &str) -> TestRunner {
        let mut seed = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            seed = (seed ^ b as u64).wrapping_mul(0x100000001b3);
        }
        TestRunner { rng: StdRng::seed_from_u64(seed) }
    }

    /// The RNG strategies sample from.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// Strategy namespace (mirrors `proptest::prelude::prop`).
pub mod prop {
    /// Sampling helpers.
    pub mod sample {
        use crate::strategy::Select;

        /// Uniformly select one of the given options per case.
        pub fn select<T: Clone + core::fmt::Debug>(options: Vec<T>) -> Select<T> {
            Select { options }
        }
    }
}

/// The common imports (mirrors `proptest::prelude::*`).
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        TestCaseError,
    };
}

/// Defines sampled property tests; see the module docs for the supported
/// subset of proptest's grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::new(stringify!($name));
            let mut ran = 0u32;
            let mut attempts = 0u32;
            while ran < config.cases && attempts < config.cases.saturating_mul(10) {
                attempts += 1;
                $(let $arg = $crate::strategy::Strategy::sample(&$strat, runner.rng());)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) => ran += 1,
                    Err($crate::TestCaseError::Reject) => {}
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property {} failed: {}\n  inputs: {}",
                            stringify!($name),
                            msg,
                            [$(format!(concat!(stringify!($arg), " = {:?}"), $arg)),*].join(", "),
                        );
                    }
                }
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// Fallible assertion: fails the current case with the sampled inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fallible equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{:?} != {:?}: {}", a, b, format!($($fmt)*));
    }};
}

/// Fallible inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "{:?} == {:?}", a, b);
    }};
}

/// Skip the current case when its sampled inputs are unusable.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_sample_in_bounds(x in 1usize..4, y in 0u64..10, f in 0.0f64..1.0) {
            prop_assert!((1..4).contains(&x));
            prop_assert!(y < 10);
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn select_picks_an_option(lanes in prop::sample::select(vec![2usize, 3, 4])) {
            prop_assert!([2, 3, 4].contains(&lanes));
        }

        #[test]
        fn any_bool_and_assume(b in any::<bool>(), n in 0u32..8) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
            let _ = b;
        }

        #[test]
        fn string_patterns_honor_charclass(s in "[ -~\n]{0,200}") {
            prop_assert!(s.len() <= 200);
            prop_assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }
}
