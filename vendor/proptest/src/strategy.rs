//! Strategies: how each `arg in strategy` in [`proptest!`](crate::proptest)
//! samples a value.
//!
//! Supported strategy expressions (the subset this workspace uses):
//! integer and float `Range`s, [`any`]`::<bool>()`,
//! `prop::sample::select(vec![..])`, and string literals holding a
//! single-character-class regex like `"[ -~\n]{0,200}"`.

use rand::rngs::StdRng;
use rand::Rng;

/// A source of sampled values (subset of proptest's trait of the same name).
pub trait Strategy {
    /// The sampled type.
    type Value: Clone + core::fmt::Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// Uniform choice between fixed options; built by
/// [`prop::sample::select`](crate::prop::sample::select).
#[derive(Clone, Debug)]
pub struct Select<T> {
    /// The options to choose between.
    pub options: Vec<T>,
}

impl<T: Clone + core::fmt::Debug> Strategy for Select<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        assert!(!self.options.is_empty(), "select over no options");
        self.options[rng.gen_range(0..self.options.len())].clone()
    }
}

/// Arbitrary values of `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// The strategy returned by [`any`].
#[derive(Clone, Debug)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// Types with a canonical `any()` strategy.
pub trait Arbitrary: Clone + core::fmt::Debug {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut StdRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// String literals are regex strategies. Only the shape this workspace
/// uses is supported: one character class (`[...]` with literal chars,
/// `a-z` ranges, and `\n`/`\t`/`\\` escapes) followed by a `{min,max}`
/// repetition; a bare class means exactly one char.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        let (chars, min, max) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
        let len = rng.gen_range(min..=max);
        (0..len).map(|_| chars[rng.gen_range(0..chars.len())]).collect()
    }
}

fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let mut it = pat.chars().peekable();
    if it.next()? != '[' {
        return None;
    }
    let mut chars = Vec::new();
    loop {
        let c = match it.next()? {
            ']' => break,
            '\\' => match it.next()? {
                'n' => '\n',
                't' => '\t',
                other => other,
            },
            c => c,
        };
        if it.peek() == Some(&'-') {
            it.next();
            let hi = match it.next()? {
                '\\' => match it.next()? {
                    'n' => '\n',
                    't' => '\t',
                    other => other,
                },
                ']' => {
                    // Trailing `-` is a literal; put both back conceptually.
                    chars.push(c);
                    chars.push('-');
                    break;
                }
                hi => hi,
            };
            chars.extend((c..=hi).collect::<Vec<char>>());
        } else {
            chars.push(c);
        }
    }
    if chars.is_empty() {
        return None;
    }
    let rest: String = it.collect();
    if rest.is_empty() {
        return Some((chars, 1, 1));
    }
    let inner = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match inner.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n = inner.trim().parse().ok()?;
            (n, n)
        }
    };
    Some((chars, lo, hi))
}

#[cfg(test)]
mod tests {
    use super::parse_class_pattern;

    #[test]
    fn parses_printable_class_with_bounds() {
        let (chars, lo, hi) = parse_class_pattern("[ -~\n]{0,200}").unwrap();
        assert_eq!((lo, hi), (0, 200));
        assert!(chars.contains(&' ') && chars.contains(&'~') && chars.contains(&'\n'));
        assert_eq!(chars.len(), 96); // 95 printable ASCII + newline
    }

    #[test]
    fn bare_class_is_one_char() {
        let (chars, lo, hi) = parse_class_pattern("[abc]").unwrap();
        assert_eq!((lo, hi), (1, 1));
        assert_eq!(chars, vec!['a', 'b', 'c']);
    }

    #[test]
    fn rejects_unsupported_shapes() {
        assert!(parse_class_pattern("abc").is_none());
        assert!(parse_class_pattern("[]{1,2}").is_none());
    }
}
