//! Offline stand-in for the subset of `rand` 0.8 used by this workspace.
//!
//! The container build has no access to crates.io, so the workspace vendors
//! a deterministic, dependency-free implementation of exactly the API the
//! kernel generator consumes: `StdRng`/`SmallRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_bool`, and `Rng::gen_range` over integer ranges. The stream is
//! a fixed xoshiro256** generator, so same-seed determinism holds (which is
//! all the generator and property tests rely on); it does NOT reproduce the
//! exact stream of upstream `rand`.

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The core sampling interface (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Bernoulli sample: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 uniform mantissa bits, exactly like rand's float conversion.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Uniform sample from a range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

/// Ranges that can be sampled uniformly (subset of `rand`'s trait of the
/// same name).
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// RNG implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for `rand::rngs::StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Same engine as [`StdRng`] (stands in for `rand::rngs::SmallRng`).
    pub type SmallRng = StdRng;

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(1..4);
            assert!((1..4).contains(&v));
            let w: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&w));
            let x: usize = rng.gen_range(0..=3);
            assert!(x <= 3);
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&heads), "{heads}");
    }
}
